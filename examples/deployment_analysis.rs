//! What pruning buys you *at deployment time*: parameter compression vs
//! theoretical speedup vs realized sparse-kernel speedup vs storage
//! bytes — the full gap analysis behind the paper's Section 2.1 and 5.2
//! caveats about metrics.
//!
//! ```text
//! cargo run --release --example deployment_analysis
//! ```

use sb_data::{DatasetSpec, SyntheticVision};
use sb_metrics::{storage_report, ModelProfile};
use sb_nn::{models, Adam, Network, ParamKind, TrainConfig, Trainer};
use sb_tensor::{Rng, SparseMatrix, Tensor};
use shrinkbench::{prune_and_finetune, FinetuneConfig, GlobalMagnitude};
use std::time::Instant;

fn main() {
    // Train + prune a LeNet-300-100 at 8× with the framework.
    let data = SyntheticVision::new(DatasetSpec::mnist_like(4).scaled_down(4));
    let mut rng = Rng::seed_from(0);
    let spec = data.spec();
    let mut net = models::lenet_300_100(
        spec.channels * spec.side * spec.side,
        spec.classes,
        &mut rng,
    );
    // Train to convergence first (Algorithm 1 starts from a trained net).
    {
        use sb_data::{batches_of, Split};
        let mut opt = Adam::new(1e-3);
        let trainer = Trainer::new(TrainConfig { epochs: 6, ..TrainConfig::default() });
        let mut erng = Rng::seed_from(1);
        trainer
            .fit(
                &mut net,
                &mut opt,
                |_| {
                    let mut fork = erng.fork(0);
                    batches_of(&data, Split::Train, 64, Some(&mut fork), true)
                },
                &[],
            )
            .expect("training converges");
    }
    let result = prune_and_finetune(
        &mut net,
        &GlobalMagnitude,
        8.0,
        &data,
        &FinetuneConfig {
            epochs: 4,
            flatten_input: true,
            ..FinetuneConfig::default()
        },
        &mut rng,
    )
    .expect("pruning succeeds");
    println!(
        "pruned LeNet-300-100: top1 {:.3}, parameter compression {:.2}×, theoretical speedup {:.2}×\n",
        result.after_finetune.top1, result.compression, result.speedup
    );

    // 1. Storage: bytes under each on-disk encoding.
    let profile = ModelProfile::measure(&net);
    let storage = storage_report(&profile);
    println!("storage footprint ({}× parameter compression):", storage.parameter_compression.round());
    for (format, bytes, ratio) in &storage.rows {
        println!("  {format:<14} {:>9.1} KiB  ({ratio:.2}× byte compression)", bytes / 1024.0);
    }
    println!("  → index overhead makes byte compression lag parameter compression (Deep-Compression-style delta coding recovers most of it)\n");

    // 2. Compute: realized speedup of the actual CSR kernel on the
    //    largest pruned layer, vs the theoretical multiply-add ratio.
    let mut weight: Option<Tensor> = None;
    net.visit_params(&mut |p| {
        if p.kind() == ParamKind::LinearWeight && p.name() == "fc1.weight" {
            weight = Some(p.value().clone());
        }
    });
    let weight = weight.expect("fc1.weight exists");
    let sparse = SparseMatrix::from_dense(&weight);
    let x = Tensor::rand_normal(&[weight.dim(1), 32], 0.0, 1.0, &mut rng);
    let time = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let dense_t = time(&mut || {
        std::hint::black_box(weight.matmul(&x));
    });
    let sparse_t = time(&mut || {
        std::hint::black_box(sparse.matmul_dense(&x));
    });
    println!(
        "fc1 ({}×{}, density {:.3}): theoretical speedup {:.2}×, realized CSR speedup {:.2}×",
        weight.dim(0),
        weight.dim(1),
        sparse.density(),
        1.0 / sparse.density(),
        dense_t / sparse_t
    );
    println!("  → unstructured sparsity rarely delivers its full theoretical speedup (paper §2.1);");
    println!("    compare `cargo run --release -p sb-bench --bin expfig -- ablation-structured`.");
}
