//! Implementing a *new* pruning method against the framework — the
//! paper's core proposal is that new methods should be evaluated inside a
//! standardized harness rather than bespoke scripts.
//!
//! The custom method here is an Optimal-Brain-Damage-flavoured saliency:
//! `score = |w| · |∂L/∂w|½` — a compromise between pure magnitude and
//! pure gradient sensitivity. Everything else (mask construction,
//! compression targeting, fine-tuning, metrics) comes from the framework.
//!
//! ```text
//! cargo run --release --example custom_method
//! ```

use sb_data::{DatasetSpec, SyntheticVision};
use sb_nn::{models, NetworkExt};
use sb_tensor::{Rng, Tensor};
use shrinkbench::{
    prune_and_finetune, FinetuneConfig, GlobalMagnitude, RandomPruning, Scope, ScoreEntry,
    Strategy,
};

/// The custom saliency heuristic.
struct DampedSaliency;

impl Strategy for DampedSaliency {
    fn label(&self) -> String {
        "Damped Saliency (custom)".to_string()
    }

    fn scope(&self) -> Scope {
        Scope::Global
    }

    fn needs_gradients(&self) -> bool {
        true
    }

    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        let grad = entry.grad.expect("runner supplies gradients");
        entry
            .value
            .zip_map(grad, |w, g| w.abs() * g.abs().sqrt())
    }
}

fn pretrained(data: &SyntheticVision) -> models::Model {
    use sb_data::{batches_of, Split};
    use sb_nn::{Adam, TrainConfig, Trainer};
    let mut rng = Rng::seed_from(7);
    let spec = data.spec();
    let mut net = models::cifar_vgg(spec.channels, spec.side, spec.classes, 4, &mut rng);
    let mut optimizer = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    });
    let val = batches_of(data, Split::Val, 64, None, false);
    let mut epoch_rng = Rng::seed_from(8);
    trainer
        .fit(
            &mut net,
            &mut optimizer,
            |_| {
                let mut fork = epoch_rng.fork(0);
                batches_of(data, Split::Train, 64, Some(&mut fork), false)
            },
            &val,
        )
        .expect("training should not diverge");
    net
}

fn main() {
    let data = SyntheticVision::new(DatasetSpec::cifar_like(3).scaled_down(2));
    let base = pretrained(&data);
    let snapshot = base.snapshot();
    let config = FinetuneConfig {
        epochs: 2,
        ..FinetuneConfig::default()
    };

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(DampedSaliency),
        Box::new(GlobalMagnitude),
        Box::new(RandomPruning::global()),
    ];

    println!("{:<28} {:>6} {:>8} {:>8} {:>8}", "method", "ratio", "top1", "top5", "speedup");
    for strategy in &strategies {
        for ratio in [2.0, 8.0, 32.0] {
            let mut net = pretrained(&data); // same topology
            net.restore(&snapshot); // identical initial weights
            let mut rng = Rng::seed_from(100);
            let result =
                prune_and_finetune(&mut net, strategy.as_ref(), ratio, &data, &config, &mut rng)
                    .expect("pruning should succeed");
            println!(
                "{:<28} {:>6} {:>8.3} {:>8.3} {:>7.2}×",
                strategy.label(),
                ratio,
                result.after_finetune.top1,
                result.after_finetune.top5,
                result.speedup
            );
        }
    }
    println!("\nAll three methods ran under identical data, initial weights, fine-tuning,");
    println!("and metrics — the controlled comparison the paper finds missing in the literature.");
}
