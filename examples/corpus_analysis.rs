//! Exploring the literature corpus behind the paper's meta-analysis:
//! Table 1, the comparison graph, and the headline fragmentation numbers
//! from Sections 3–5.
//!
//! ```text
//! cargo run --release --example corpus_analysis
//! ```

use sb_corpus::data::build_corpus;
use sb_corpus::{fragmentation, graph, tradeoff};
use sb_report::Table;

fn main() {
    let corpus = build_corpus();

    println!(
        "corpus: {} papers, {} datasets, {} architectures, {} (dataset, architecture) combinations\n",
        corpus.papers.len(),
        corpus.datasets().len(),
        corpus.architectures().len(),
        corpus.combinations().len()
    );

    // Table 1.
    let mut table = Table::new(vec!["Dataset", "Architecture", "Papers"]);
    for row in fragmentation::pair_counts(&corpus, 4) {
        table.row(vec![row.dataset, row.arch, row.papers.to_string()]);
    }
    println!("{}", table.to_markdown());

    // The comparison graph.
    let h = graph::comparison_histograms(&corpus);
    let total = corpus.papers.len();
    let zero = h.compares_to[0].total();
    let one = h.compares_to[1].total();
    println!("comparison graph: {} directed comparison edges", corpus.comparisons.len());
    println!(
        "  {zero}/{total} papers compare to no previously proposed method ({}%)",
        zero * 100 / total
    );
    println!("  {one}/{total} papers compare to exactly one ({}%)", one * 100 / total);
    let orphans = graph::never_compared_to(&corpus);
    println!("  {} papers have never been compared to by later work", orphans.len());
    println!(
        "  most-compared-to papers: {:?}",
        {
            let mut indeg: Vec<(&str, usize)> = corpus
                .papers
                .iter()
                .map(|p| {
                    (
                        p.key.as_str(),
                        corpus.comparisons.iter().filter(|e| e.to == p.key).count(),
                    )
                })
                .collect();
            indeg.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            indeg.truncate(3);
            indeg
        }
    );

    // Fragmentation headlines.
    let small = fragmentation::small_delta_fraction(&corpus.results, 1.0);
    println!(
        "\nself-reported results: {} points; {:.0}% change accuracy by < 1 percentage point",
        corpus.results.len(),
        small * 100.0
    );

    // Figure 5's spread comparison.
    let f5 = tradeoff::figure5(&corpus);
    println!(
        "ResNet-50/ImageNet: accuracy spread across magnitude-pruning *variants*: {:.1} pts; across distinct methods: {:.1} pts",
        tradeoff::vertical_spread(&f5.magnitude_methods),
        tradeoff::vertical_spread(&f5.other_methods)
    );
    println!("→ fine-tuning / implementation choices rival method choice (paper §4.5).");
}
