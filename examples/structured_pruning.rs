//! Structured (filter-level) pruning vs unstructured pruning — the
//! "structure" axis of the paper's Section 2.3.
//!
//! Unstructured pruning wins on accuracy at a given *compression ratio*,
//! but structured pruning removes whole filters, so its sparsity maps
//! onto dense hardware. This example quantifies both sides with the
//! framework's metrics.
//!
//! ```text
//! cargo run --release --example structured_pruning
//! ```

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_metrics::ModelProfile;
use sb_nn::{evaluate, models, Adam, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::structured::{prune_filters, FilterNorm};
use shrinkbench::{prune_and_finetune, FinetuneConfig, GlobalMagnitude};

fn pretrained(data: &SyntheticVision) -> models::Model {
    let mut rng = Rng::seed_from(3);
    let mut net = models::lenet5(3, 16, 10, &mut rng);
    let mut optimizer = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    });
    let val = batches_of(data, Split::Val, 64, None, false);
    let mut epoch_rng = Rng::seed_from(4);
    trainer
        .fit(
            &mut net,
            &mut optimizer,
            |_| {
                let mut fork = epoch_rng.fork(0);
                batches_of(data, Split::Train, 64, Some(&mut fork), false)
            },
            &val,
        )
        .expect("training should not diverge");
    net
}

fn main() {
    let data = SyntheticVision::new(DatasetSpec::cifar_like(5).scaled_down(2));
    let val = batches_of(&data, Split::Val, 64, None, false);
    let config = FinetuneConfig {
        epochs: 3,
        ..FinetuneConfig::default()
    };

    // --- Direct filter removal (Li et al. 2016 heuristic). ---
    let mut net = pretrained(&data);
    let removed = prune_filters(&mut net, 0.5);
    let profile = ModelProfile::measure(&net);
    let metrics = evaluate(&mut net, &val);
    println!("prune_filters(50%): removed {removed} filters");
    println!(
        "  compression {:.2}×, speedup {:.2}×, top1 {:.3} (no fine-tuning yet)",
        profile.compression_ratio(),
        profile.theoretical_speedup(),
        metrics.top1
    );

    // --- Structured vs unstructured through the full Algorithm 1. ---
    println!("\n{:<26} {:>6} {:>12} {:>9} {:>8}", "method", "ratio", "compression", "speedup", "top1");
    for ratio in [2.0, 4.0] {
        let mut rng = Rng::seed_from(11);
        let mut structured = pretrained(&data);
        let s = prune_and_finetune(&mut structured, &FilterNorm, ratio, &data, &config, &mut rng)
            .expect("structured pruning should succeed");
        let mut rng = Rng::seed_from(11);
        let mut unstructured = pretrained(&data);
        let u = prune_and_finetune(
            &mut unstructured,
            &GlobalMagnitude,
            ratio,
            &data,
            &config,
            &mut rng,
        )
        .expect("unstructured pruning should succeed");
        println!(
            "{:<26} {:>6} {:>11.2}× {:>8.2}× {:>8.3}",
            "Filter Norm (structured)", ratio, s.compression, s.speedup, s.after_finetune.top1
        );
        println!(
            "{:<26} {:>6} {:>11.2}× {:>8.2}× {:>8.3}",
            "Global Weight", ratio, u.compression, u.speedup, u.after_finetune.top1
        );
    }
    println!("\nReading: at equal compression, structured pruning trades accuracy for");
    println!("hardware-realizable sparsity — exactly the tension Section 2.3 describes.");
}
