//! Quickstart: train a small CNN on synthetic data, prune it with global
//! magnitude pruning at 4× compression, fine-tune, and report the metrics
//! the paper says every pruning evaluation must include.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_metrics::ModelProfile;
use sb_nn::{evaluate, models, Adam, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::{prune_and_finetune, FinetuneConfig, GlobalMagnitude};

fn main() {
    // 1. A standardized dataset: deterministic, class-conditional images.
    let data = SyntheticVision::new(DatasetSpec::mnist_like(0).scaled_down(2));
    let val = batches_of(&data, Split::Val, 64, None, false);

    // 2. A standardized model, trained to convergence.
    let mut rng = Rng::seed_from(42);
    let mut net = models::lenet5(1, 16, 10, &mut rng);
    let mut optimizer = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    });
    let mut epoch_rng = Rng::seed_from(1);
    trainer
        .fit(
            &mut net,
            &mut optimizer,
            |_| {
                let mut fork = epoch_rng.fork(0);
                batches_of(&data, Split::Train, 64, Some(&mut fork), false)
            },
            &val,
        )
        .expect("training should not diverge");
    let dense = evaluate(&mut net, &val);
    let dense_profile = ModelProfile::measure(&net);
    println!(
        "dense model:  top1 {:.3}  top5 {:.3}  params {}  MACs {}",
        dense.top1,
        dense.top5,
        dense_profile.total_params(),
        dense_profile.dense_macs()
    );

    // 3. Algorithm 1: prune to 4× compression and fine-tune.
    let result = prune_and_finetune(
        &mut net,
        &GlobalMagnitude,
        4.0,
        &data,
        &FinetuneConfig {
            epochs: 3,
            ..FinetuneConfig::default()
        },
        &mut rng,
    )
    .expect("pruning should succeed");

    // 4. Report everything the paper's checklist asks for: compression
    //    ratio AND theoretical speedup, top-1 AND top-5, plus the dense
    //    control above.
    println!(
        "pruned model: top1 {:.3}  top5 {:.3}  compression {:.2}×  speedup {:.2}×",
        result.after_finetune.top1,
        result.after_finetune.top5,
        result.compression,
        result.speedup
    );
    println!(
        "accuracy right after pruning (before fine-tuning): {:.3}",
        result.before_finetune.top1
    );
}
