//! Reproduces (in miniature) the paper's Section 7.3 pitfall: evaluating
//! two pruning methods on *different initial models* can reverse their
//! apparent ranking, and reporting Δ-accuracy does not fix it.
//!
//! Two ResNet-20 models are trained with different optimizer settings
//! ("Weights A": Adam 1e-3, "Weights B": Adam 1e-4, as in the paper).
//! Global magnitude pruning on Weights B is then compared against
//! layerwise magnitude pruning on Weights A — the cross-model comparison
//! a careless reading of two different papers would make.
//!
//! ```text
//! cargo run --release --example pitfalls
//! ```

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_nn::{models, Adam, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::{
    prune_and_finetune, FinetuneConfig, GlobalMagnitude, LayerMagnitude, Strategy,
};

fn pretrain(data: &SyntheticVision, lr: f32) -> models::Model {
    let mut rng = Rng::seed_from(21);
    let spec = data.spec();
    let mut net = models::resnet_cifar(20, spec.channels, spec.side, spec.classes, 4, &mut rng);
    let mut optimizer = Adam::new(lr);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    });
    let val = batches_of(data, Split::Val, 64, None, false);
    let mut epoch_rng = Rng::seed_from(22);
    trainer
        .fit(
            &mut net,
            &mut optimizer,
            |_| {
                let mut fork = epoch_rng.fork(0);
                batches_of(data, Split::Train, 64, Some(&mut fork), false)
            },
            &val,
        )
        .expect("training should not diverge");
    net
}

fn sweep(
    data: &SyntheticVision,
    weights: &models::Model,
    strategy: &dyn Strategy,
    label: &str,
) -> Vec<(f64, f32, f32)> {
    use sb_nn::NetworkExt;
    let snapshot = weights.snapshot();
    let config = FinetuneConfig {
        epochs: 2,
        ..FinetuneConfig::default()
    };
    let mut rows = Vec::new();
    for ratio in [1.0, 4.0, 16.0, 64.0] {
        let spec = data.spec();
        let mut rng_model = Rng::seed_from(21);
        let mut net =
            models::resnet_cifar(20, spec.channels, spec.side, spec.classes, 4, &mut rng_model);
        net.restore(&snapshot);
        let mut rng = Rng::seed_from(5);
        let result = prune_and_finetune(&mut net, strategy, ratio, data, &config, &mut rng)
            .expect("pruning should succeed");
        rows.push((
            result.compression,
            result.after_finetune.top1,
            result.before_finetune.top1,
        ));
    }
    println!("\n{label}:");
    println!("{:>12} {:>10} {:>10}", "compression", "top1", "Δ top1");
    let base = rows[0].1; // ratio 1.0 ≈ the dense model
    for (c, top1, _) in &rows {
        println!("{c:>11.1}× {top1:>10.3} {:>+10.3}", top1 - base);
    }
    rows
}

fn main() {
    let data = SyntheticVision::new(DatasetSpec::cifar_like(9).scaled_down(2));
    let weights_a = pretrain(&data, 1e-3);
    let weights_b = pretrain(&data, 1e-4);

    let global_b = sweep(&data, &weights_b, &GlobalMagnitude, "Global Magnitude on Weights B");
    let layer_a = sweep(&data, &weights_a, &LayerMagnitude, "Layerwise Magnitude on Weights A");
    let global_a = sweep(&data, &weights_a, &GlobalMagnitude, "Global Magnitude on Weights A");

    println!("\n--- The pitfall ---");
    println!(
        "At high compression, comparing Global-on-B (top1 {:.3}) against Layer-on-A (top1 {:.3})",
        global_b.last().unwrap().1,
        layer_a.last().unwrap().1
    );
    println!(
        "conflates the method with the initial model; held on the SAME weights A, Global gives {:.3}.",
        global_a.last().unwrap().1
    );
    println!("Conclusion (paper §7.3): comparisons are only meaningful from identical initial models,");
    println!("and reporting accuracy *changes* instead of absolute accuracy does not deconfound them.");
}
