//! Integration tests for the reporting/meta-analysis side: corpus →
//! figures → tables/charts, plus the experiment-config registry.

use sb_bench::configs::{experiment_config, Scale};
use sb_bench::figures::{fig1, fig2, fig3, fig4, fig5, table1, OutputPaths};
use sb_corpus::data::{build_corpus, published, TABLE1_PAIRS};
use sb_report::Table;

fn temp_paths(tag: &str) -> (OutputPaths, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("shrinkbench-harness-{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    (
        OutputPaths {
            results: root.join("results"),
            figures: root.join("figures"),
        },
        root,
    )
}

#[test]
fn meta_analysis_artifacts_render_and_persist() {
    let (paths, root) = temp_paths("meta");
    let t1 = table1(&paths);
    for &(dataset, arch, count) in TABLE1_PAIRS {
        assert!(t1.contains(dataset) && t1.contains(arch), "{dataset}/{arch} missing");
        assert!(t1.contains(&count.to_string()));
    }
    assert!(t1.contains("81 papers, 49 datasets, 132 architectures, 195 combinations"));

    let f1 = fig1(&paths);
    assert!(f1.contains("EfficientNet"));
    assert!(f1.contains("VGG Pruned"));

    let f2 = fig2(&paths);
    assert!(f2.contains("in-degree"));
    assert!(f2.contains("never compared to"));

    let f3 = fig3(&paths);
    assert!(f3.contains("VGG-16") && f3.contains("ResNet-56"));
    assert!(f3.contains(&format!(
        "{} of the 81 papers",
        published::FIGURE3_PAPERS
    )));

    let f4 = fig4(&paths);
    assert!(f4.contains("pairs"));

    let f5 = fig5(&paths);
    assert!(f5.contains("magnitude"));

    // Artifacts persisted as .txt and .csv.
    for name in ["table1", "fig1", "fig2", "fig3", "fig4", "fig5"] {
        assert!(paths.figures.join(format!("{name}.txt")).exists(), "{name}.txt");
        assert!(paths.figures.join(format!("{name}.csv")).exists(), "{name}.csv");
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn csv_artifacts_are_parseable_tables() {
    let (paths, root) = temp_paths("csv");
    table1(&paths);
    let csv = std::fs::read_to_string(paths.figures.join("table1.csv")).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let cols = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn every_experimental_artifact_has_a_config() {
    for id in [
        "cifar-vgg",
        "resnet20",
        "resnet56",
        "resnet110",
        "imagenet-resnet18",
        "weights-a",
        "weights-b",
        "ablation-schedule-oneshot",
        "ablation-schedule-iterative",
        "ablation-classifier-excluded",
        "ablation-classifier-included",
        "ablation-structured",
        "ablation-random-layerwise",
        "mnist-saturation",
    ] {
        let cfg = experiment_config(id, Scale::Quick).expect(id);
        // Every grid includes the dense control or at least two ratios,
        // satisfying the paper's "at least 5 operating points" guidance
        // at standard scale.
        let std_cfg = experiment_config(id, Scale::Standard).expect(id);
        assert!(std_cfg.compressions.len() >= 2);
        assert!(cfg.compressions.len() >= 2);
    }
}

#[test]
fn figure7_grid_satisfies_paper_recommendations() {
    // Section 6's recommendations, checked against our own config:
    let cfg = experiment_config("cifar-vgg", Scale::Standard).unwrap();
    // "use at least 5 operating points spanning a range of compression
    // ratios. The set {2, 4, 8, 16, 32} is a good choice."
    for c in [2.0, 4.0, 8.0, 16.0, 32.0] {
        assert!(cfg.compressions.contains(&c), "{c} missing");
    }
    // "report means and sample standard deviations" — three seeds.
    assert!(cfg.seeds.len() >= 3);
    // Compare a random baseline and magnitude baselines (Appendix B).
    assert!(cfg.strategies.len() >= 5);
}

#[test]
fn corpus_is_consistent_with_experiment_architectures() {
    // The architectures ShrinkBench ships experiments for are exactly the
    // common ones from Table 1 (plus scaled ImageNet models).
    let corpus = build_corpus();
    for arch in ["ResNet-56", "ResNet-110", "CIFAR-VGG", "ResNet-18"] {
        assert!(
            corpus.architectures().contains(&arch),
            "{arch} missing from corpus"
        );
    }
}

#[test]
fn report_table_round_trips_through_csv() {
    let mut t = Table::new(vec!["strategy", "top1"]);
    t.row(vec!["Global Weight".into(), "0.91".into()]);
    let csv = t.to_csv();
    assert_eq!(csv, "strategy,top1\nGlobal Weight,0.91\n");
}

#[test]
fn extension_artifacts_render_without_training() {
    use sb_bench::figures::{hygiene, metrics_ambiguity, sparsity_profile};
    let (paths, root) = temp_paths("ext");
    let h = hygiene(&paths);
    assert!(h.contains("1 report any measure of central tendency"));
    let m = metrics_ambiguity(&paths);
    assert!(m.contains("RatioOriginalOverCompressed"));
    assert!(m.contains("spread"));
    let s = sparsity_profile(&paths);
    assert!(s.contains("stage1.conv1.weight"));
    assert!(s.contains("Layerwise"));
    for name in ["hygiene", "metrics-ambiguity", "sparsity-profile"] {
        assert!(paths.figures.join(format!("{name}.txt")).exists(), "{name}");
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn corrupted_result_cache_triggers_rerun_not_crash() {
    use shrinkbench::experiment::{
        DatasetKind, ExperimentConfig, ExperimentRunner, ModelKind, PretrainConfig,
    };
    use shrinkbench::{FinetuneConfig, StrategyKind};
    let (paths, root) = temp_paths("corrupt-cache");
    std::fs::create_dir_all(&paths.results).unwrap();
    let config = ExperimentConfig {
        id: "corrupt".to_string(),
        dataset: DatasetKind::MnistLike,
        data_scale: 16,
        data_seed: 0,
        model: ModelKind::Lenet300_100,
        strategies: vec![StrategyKind::GlobalMagnitude],
        compressions: vec![2.0],
        seeds: vec![1],
        pretrain: PretrainConfig {
            epochs: 1,
            patience: None,
            ..PretrainConfig::default()
        },
        finetune: FinetuneConfig {
            epochs: 1,
            patience: None,
            ..FinetuneConfig::default()
        },
    };
    // Poison the cache file; the runner must fall back to recomputing.
    std::fs::write(paths.results.join("corrupt.json"), b"{not json").unwrap();
    let runner = ExperimentRunner::with_cache(&paths.results);
    let records = runner.run(&config);
    assert_eq!(records.len(), 1);
    // And the rewritten cache must now round-trip.
    let again = runner.run(&config);
    assert_eq!(records, again);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn stale_config_cache_is_ignored() {
    use shrinkbench::experiment::{
        DatasetKind, ExperimentConfig, ExperimentRunner, ModelKind, PretrainConfig,
    };
    use shrinkbench::{FinetuneConfig, StrategyKind};
    let (paths, root) = temp_paths("stale-cache");
    let base = ExperimentConfig {
        id: "stale".to_string(),
        dataset: DatasetKind::MnistLike,
        data_scale: 16,
        data_seed: 0,
        model: ModelKind::Lenet300_100,
        strategies: vec![StrategyKind::GlobalMagnitude],
        compressions: vec![2.0],
        seeds: vec![1],
        pretrain: PretrainConfig {
            epochs: 1,
            patience: None,
            ..PretrainConfig::default()
        },
        finetune: FinetuneConfig {
            epochs: 1,
            patience: None,
            ..FinetuneConfig::default()
        },
    };
    let runner = ExperimentRunner::with_cache(&paths.results);
    let first = runner.run(&base);
    // Same id, different grid: cached records must NOT be reused.
    let mut changed = base.clone();
    changed.compressions = vec![2.0, 4.0];
    let second = runner.run(&changed);
    assert_eq!(first.len(), 1);
    assert_eq!(second.len(), 2);
    let _ = std::fs::remove_dir_all(root);
}
