//! Cross-crate integration: dataset → model → pretrain → prune →
//! fine-tune → metrics, exercising the full pipeline the way `expfig`
//! does, at miniature scale.

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_metrics::ModelProfile;
use sb_nn::{evaluate, models, Adam, Network, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::experiment::{
    DatasetKind, ExperimentConfig, ExperimentRunner, ModelKind, PretrainConfig,
};
use shrinkbench::{
    prune_and_finetune, FinetuneConfig, GlobalMagnitude, LayerMagnitude, StrategyKind,
};

fn tiny_dataset() -> SyntheticVision {
    SyntheticVision::new(DatasetSpec::mnist_like(1).scaled_down(8))
}

fn pretrained_lenet(data: &SyntheticVision) -> models::Model {
    let mut rng = Rng::seed_from(0);
    let mut net = models::lenet5(1, 16, 10, &mut rng);
    let mut opt = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    });
    let mut erng = Rng::seed_from(1);
    trainer
        .fit(
            &mut net,
            &mut opt,
            |_| {
                let mut fork = erng.fork(0);
                batches_of(data, Split::Train, 32, Some(&mut fork), false)
            },
            &[],
        )
        .unwrap();
    net
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let data = tiny_dataset();
        let mut net = pretrained_lenet(&data);
        let mut rng = Rng::seed_from(9);
        let result = prune_and_finetune(
            &mut net,
            &GlobalMagnitude,
            8.0,
            &data,
            &FinetuneConfig {
                epochs: 2,
                patience: None,
                ..FinetuneConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        (
            result.compression,
            result.speedup,
            result.after_finetune.top1,
            result.after_finetune.top5,
        )
    };
    assert_eq!(run(), run(), "same seeds must give identical results");
}

#[test]
fn profile_agrees_with_prune_outcome() {
    let data = tiny_dataset();
    let mut net = pretrained_lenet(&data);
    let mut rng = Rng::seed_from(2);
    let result = prune_and_finetune(
        &mut net,
        &LayerMagnitude,
        4.0,
        &data,
        &FinetuneConfig {
            epochs: 1,
            patience: None,
            ..FinetuneConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    // Fine-tuning must not alter the sparsity structure.
    let profile = ModelProfile::measure(&net);
    assert!((profile.compression_ratio() - result.compression).abs() < 1e-9);
    assert!((profile.theoretical_speedup() - result.speedup).abs() < 1e-9);
}

#[test]
fn pruned_weights_are_exactly_zero_after_everything() {
    let data = tiny_dataset();
    let mut net = pretrained_lenet(&data);
    let mut rng = Rng::seed_from(3);
    prune_and_finetune(
        &mut net,
        &GlobalMagnitude,
        16.0,
        &data,
        &FinetuneConfig {
            epochs: 2,
            patience: None,
            ..FinetuneConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let mut violations = 0usize;
    net.visit_params(&mut |p| {
        if let Some(mask) = p.mask() {
            let mask = mask.clone();
            for (v, m) in p.value().data().iter().zip(mask.data()) {
                if *m == 0.0 && *v != 0.0 {
                    violations += 1;
                }
            }
        }
    });
    assert_eq!(violations, 0);
}

#[test]
fn evaluation_is_stable_across_calls() {
    // Eval mode must not mutate state (batch-norm running stats etc.).
    let data = tiny_dataset();
    let mut net = pretrained_lenet(&data);
    let val = batches_of(&data, Split::Val, 32, None, false);
    let a = evaluate(&mut net, &val);
    let b = evaluate(&mut net, &val);
    assert_eq!(a.top1, b.top1);
    assert_eq!(a.loss, b.loss);
}

#[test]
fn experiment_runner_grid_shapes_and_controls() {
    let config = ExperimentConfig {
        id: "integration-tiny".to_string(),
        dataset: DatasetKind::MnistLike,
        data_scale: 16,
        data_seed: 3,
        model: ModelKind::Lenet300_100,
        strategies: vec![StrategyKind::GlobalMagnitude, StrategyKind::LayerMagnitude],
        compressions: vec![1.0, 4.0],
        seeds: vec![1, 2],
        pretrain: PretrainConfig {
            epochs: 3,
            patience: None,
            ..PretrainConfig::default()
        },
        finetune: FinetuneConfig {
            epochs: 1,
            patience: None,
            ..FinetuneConfig::default()
        },
    };
    let records = ExperimentRunner::default().run(&config);
    assert_eq!(records.len(), 2 * 2 * 2);
    for r in &records {
        // The dense control (ratio 1.0) must match the pretrained model.
        if r.target_compression == 1.0 {
            assert!((r.compression - 1.0).abs() < 1e-9);
            assert!((r.speedup - 1.0).abs() < 1e-9);
        }
        assert!(r.top1 >= 0.0 && r.top1 <= 1.0);
        assert!(r.top5 >= r.top1, "top5 {} < top1 {}", r.top5, r.top1);
    }
}

#[test]
fn all_model_kinds_survive_pruning_round() {
    // Every model in the zoo can be pruned by every baseline at 4×.
    let kinds: Vec<(ModelKind, DatasetKind)> = vec![
        (ModelKind::Lenet300_100, DatasetKind::MnistLike),
        (ModelKind::Lenet5, DatasetKind::MnistLike),
        (ModelKind::CifarVgg { base_width: 2 }, DatasetKind::CifarLike),
        (
            ModelKind::ResNetCifar { depth: 8, base_width: 2 },
            DatasetKind::CifarLike,
        ),
    ];
    for (model, dataset) in kinds {
        let spec = dataset.spec(16, 0);
        let data = SyntheticVision::new(spec.clone());
        let mut weights_rng = Rng::seed_from(1);
        let mut net = model.build(&spec, &mut weights_rng);
        let mut rng = Rng::seed_from(2);
        let result = prune_and_finetune(
            &mut net,
            &GlobalMagnitude,
            4.0,
            &data,
            &FinetuneConfig {
                epochs: 1,
                patience: None,
                flatten_input: model.flatten_input(),
                ..FinetuneConfig::default()
            },
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", model.label()));
        assert!(
            (result.compression - 4.0).abs() < 0.4,
            "{}: compression {}",
            model.label(),
            result.compression
        );
    }
}

/// Workspace-level determinism down to the serialized bytes: the same
/// tiny prune → fine-tune run, executed twice from the same seeds, must
/// produce **bit-identical** metrics JSON, and that JSON must survive an
/// `sb-json` round-trip byte-for-byte. This is the contract the
/// experiment cache and every reported figure rely on.
#[test]
fn metrics_json_is_bit_identical_across_reruns() {
    let run = || {
        let data = tiny_dataset();
        let spec = data.spec().clone();
        let mut weights_rng = Rng::seed_from(7);
        let mut net = ModelKind::Lenet300_100.build(&spec, &mut weights_rng);
        let mut rng = Rng::seed_from(8);
        let result = prune_and_finetune(
            &mut net,
            &GlobalMagnitude,
            4.0,
            &data,
            &FinetuneConfig {
                epochs: 1,
                patience: None,
                flatten_input: true,
                ..FinetuneConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        sb_json::to_string_pretty(&result).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seeds must serialize identically");

    // Round-trip: parse back and re-serialize; floats must reproduce
    // exactly (sb-json prints shortest-round-trip decimals).
    let parsed: shrinkbench::PruneFinetuneResult = sb_json::from_str(&first).unwrap();
    assert_eq!(sb_json::to_string_pretty(&parsed).unwrap(), first);
}

/// The runtime's determinism contract, end to end: the same prune +
/// fine-tune grid run on one thread and on four must serialize to
/// byte-identical metrics JSON. Work decomposition and result commit
/// order are fixed by the problem shape, so the worker count can only
/// change scheduling — never a single bit of output.
#[test]
fn metrics_json_is_bit_identical_across_thread_counts() {
    let grid = |threads: usize| {
        sb_runtime::set_thread_override(Some(threads));
        let config = ExperimentConfig {
            id: "threads-determinism".to_string(),
            dataset: DatasetKind::MnistLike,
            data_scale: 16,
            data_seed: 5,
            model: ModelKind::Lenet300_100,
            strategies: vec![StrategyKind::GlobalMagnitude],
            compressions: vec![2.0, 4.0],
            seeds: vec![1, 2],
            pretrain: PretrainConfig {
                epochs: 2,
                patience: None,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                epochs: 1,
                patience: None,
                ..FinetuneConfig::default()
            },
        };
        let records = ExperimentRunner::default().run(&config);
        sb_runtime::set_thread_override(None);
        sb_json::to_string_pretty(&records).unwrap()
    };
    let sequential = grid(1);
    let parallel = grid(4);
    assert_eq!(
        sequential, parallel,
        "worker count must not change serialized grid metrics"
    );
}
