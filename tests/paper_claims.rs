//! Integration tests asserting the *qualitative findings* of the paper
//! hold on this substrate (Section 3.2's consistent results and the
//! Section 7.3 observations). These use a mid-sized configuration: large
//! enough for the effects to be real, small enough for CI.

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_nn::{evaluate, models, Adam, NetworkExt, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::{
    prune_and_finetune, FinetuneConfig, GlobalMagnitude, LayerMagnitude, RandomPruning, Strategy,
};

struct Bench {
    data: SyntheticVision,
    net: models::Model,
    snapshot: Vec<sb_nn::ParamSnapshot>,
    dense_top1: f32,
}

fn bench() -> Bench {
    let data = SyntheticVision::new(DatasetSpec::cifar_like(17).scaled_down(2));
    let mut rng = Rng::seed_from(0);
    let spec = data.spec();
    let mut net = models::cifar_vgg(spec.channels, spec.side, spec.classes, 8, &mut rng);
    let mut opt = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 12,
        ..TrainConfig::default()
    });
    let val = batches_of(&data, Split::Val, 64, None, false);
    let mut erng = Rng::seed_from(1);
    trainer
        .fit(
            &mut net,
            &mut opt,
            |_| {
                let mut fork = erng.fork(0);
                batches_of(&data, Split::Train, 64, Some(&mut fork), false)
            },
            &val,
        )
        .unwrap();
    let dense_top1 = evaluate(&mut net, &val).top1;
    let snapshot = net.snapshot();
    Bench {
        data,
        net,
        snapshot,
        dense_top1,
    }
}

fn run(b: &mut Bench, strategy: &dyn Strategy, ratio: f64, seed: u64) -> (f32, f32, f64) {
    b.net.restore(&b.snapshot);
    let mut rng = Rng::seed_from(seed);
    let result = prune_and_finetune(
        &mut b.net,
        strategy,
        ratio,
        &b.data,
        &FinetuneConfig {
            epochs: 4,
            patience: None,
            ..FinetuneConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    (
        result.after_finetune.top1,
        result.before_finetune.top1,
        result.speedup,
    )
}

#[test]
fn paper_findings_hold_on_this_substrate() {
    let mut b = bench();
    assert!(
        b.dense_top1 > 0.55,
        "pretrained model too weak to test claims (top1 {})",
        b.dense_top1
    );

    // §3.2: "pruning parameters based on their magnitudes substantially
    // compresses networks without reducing accuracy" — 2× magnitude
    // pruning costs almost nothing.
    let (mag2, _, _) = run(&mut b, &GlobalMagnitude, 2.0, 100);
    assert!(
        mag2 >= b.dense_top1 - 0.08,
        "2× magnitude pruning lost too much: {} vs dense {}",
        mag2,
        b.dense_top1
    );

    // §3.2: "many pruning methods outperform random pruning" (at least
    // for large amounts of pruning). Average two seeds to damp noise.
    let ratio = 4.0;
    let mag: f32 = (run(&mut b, &GlobalMagnitude, ratio, 100).0
        + run(&mut b, &GlobalMagnitude, ratio, 200).0)
        / 2.0;
    let rand: f32 = (run(&mut b, &RandomPruning::global(), ratio, 100).0
        + run(&mut b, &RandomPruning::global(), ratio, 200).0)
        / 2.0;
    assert!(
        mag > rand + 0.02,
        "magnitude ({mag}) should beat random ({rand}) at {ratio}×"
    );

    // Before fine-tuning the gap must be dramatic.
    let (_, mag_pre, _) = run(&mut b, &GlobalMagnitude, 8.0, 300);
    let (_, rand_pre, _) = run(&mut b, &RandomPruning::global(), 8.0, 300);
    assert!(
        mag_pre > rand_pre,
        "pre-fine-tune: magnitude {mag_pre} vs random {rand_pre}"
    );

    // Fig. 6's metric non-interchangeability: at the same compression,
    // layerwise pruning yields *more* theoretical speedup than global
    // (global concentrates survivors in cheap, small layers; layerwise
    // thins the expensive convs at the same rate).
    let (_, _, global_speedup) = run(&mut b, &GlobalMagnitude, 8.0, 400);
    let (_, _, layer_speedup) = run(&mut b, &LayerMagnitude, 8.0, 400);
    assert!(
        layer_speedup > global_speedup,
        "layerwise speedup {layer_speedup} should exceed global {global_speedup} at fixed compression"
    );
}

#[test]
fn extreme_compression_degrades_gracefully_toward_chance() {
    let mut b = bench();
    let (acc64, _, _) = run(&mut b, &GlobalMagnitude, 64.0, 500);
    let (acc2, _, _) = run(&mut b, &GlobalMagnitude, 2.0, 500);
    // 64× must be much worse than 2× but no worse than catastrophic.
    assert!(acc2 > acc64, "tradeoff must slope down: {acc2} vs {acc64}");
    assert!(acc64 >= 0.05, "even 64× should beat random guessing somewhat");
}

#[test]
fn different_seeds_vary_near_the_drop_off() {
    // §7.3: "for some settings close to the drop-off point ... different
    // random seeds yielded significantly different results" for random /
    // gradient methods. We verify seeds produce *different* outcomes (the
    // harness does not silently share RNG state across runs).
    let mut b = bench();
    let (a, _, _) = run(&mut b, &RandomPruning::global(), 8.0, 1);
    let (c, _, _) = run(&mut b, &RandomPruning::global(), 8.0, 2);
    let (d, _, _) = run(&mut b, &RandomPruning::global(), 8.0, 3);
    assert!(
        a != c || c != d,
        "three random-pruning seeds gave identical accuracy — RNG plumbing broken?"
    );
}
