//! Exact span-counter accounting for the inference engine's per-format
//! trace paths.
//!
//! The `layer:{name}:{format}` spans must carry *exact* Flops and
//! BytesMoved counters — `effective_macs × batch` and `weight bytes ×
//! batch blocks` respectively — for the new BSR and bitmap kernels, and
//! the counters (like the normalized trace itself) must not depend on
//! the worker count. The `latency-attribution` and `format-crossover`
//! artifacts divide by these numbers, so "roughly right" is not enough.
//!
//! Everything lives in one `#[test]` because it flips process-global
//! state (trace gate, runtime thread override).

use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_nn::{models, Network};
use sb_tensor::{Rng, Tensor};

/// Batch size: two default-sized (8-sample) batch blocks, one partial.
const N: usize = 12;

/// Mask the bottom half of every prunable layer by global magnitude so
/// all five lenet5 layers keep nonzeros (no degenerate Dense fallback).
fn prune_half(model: &mut models::Model) {
    let mut mags: Vec<f32> = Vec::new();
    model.visit_params_ref(&mut |p| {
        if p.kind().prunable_by_default() {
            mags.extend(p.value().data().iter().map(|v| v.abs()));
        }
    });
    mags.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let threshold = mags[mags.len() / 2];
    model.visit_params(&mut |p| {
        if p.kind().prunable_by_default() {
            let mask = p.value().map(|v| if v.abs() >= threshold { 1.0 } else { 0.0 });
            p.set_mask(mask);
        }
    });
}

/// Per-layer `(flops, bytes_moved)` from the `infer` span subtree,
/// keyed by full span label (`"{name}:{format}"`).
fn layer_counters(report: &sb_trace::TraceReport) -> Vec<(String, u64, u64)> {
    let infer = report
        .roots
        .first()
        .expect("infer span recorded");
    assert_eq!(infer.name, "infer");
    infer
        .children
        .iter()
        .filter_map(|c| {
            c.name.strip_prefix("layer:").map(|label| {
                (
                    label.to_string(),
                    c.counter("flops"),
                    c.counter("bytes_moved"),
                )
            })
        })
        .collect()
}

#[test]
fn format_span_counters_are_exact_and_thread_invariant() {
    let mut rng = Rng::seed_from(0x7ACE2);
    let mut model = models::lenet5(1, 16, 10, &mut rng);
    prune_half(&mut model);
    let x = Tensor::rand_normal(&[N, 1, 16, 16], 0.0, 1.0, &mut rng);
    // Bias lengths per lenet5 layer, to separate weight bytes (moved
    // once per batch block) from plan storage (weight + bias).
    let out_features = [("conv1", 6), ("conv2", 16), ("fc1", 120), ("fc2", 84), ("fc3", 10)];

    sb_trace::set_override(Some(true));
    for format in [ExecFormat::Bsr, ExecFormat::Bitmap, ExecFormat::Csr] {
        let opts = CompileOptions {
            force_format: Some(format),
            ..CompileOptions::default()
        };
        let compiled = CompiledModel::compile(&model, &opts);
        let blocks = N.div_ceil(opts.batch_block) as u64;
        let mut reference: Option<Vec<(String, u64, u64)>> = None;
        for threads in [1usize, 4] {
            sb_runtime::set_thread_override(Some(threads));
            let _ = sb_trace::take_report();
            let _ = compiled.forward(&x);
            let report = sb_trace::take_report().subtree("infer");
            let layers = layer_counters(&report);
            assert_eq!(
                layers.len(),
                compiled.plans().len(),
                "one span per weight-bearing layer ({format:?})"
            );
            for plan in compiled.plans() {
                let label = format!("{}:{}", plan.name, format.label());
                let (_, flops, bytes) = layers
                    .iter()
                    .find(|(l, _, _)| *l == label)
                    .unwrap_or_else(|| panic!("span layer:{label} missing"));
                assert_eq!(
                    *flops,
                    plan.effective_macs * N as u64,
                    "layer:{label} Flops must be effective_macs x batch"
                );
                let bias_bytes = out_features
                    .iter()
                    .find(|(n, _)| *n == plan.name)
                    .map(|&(_, o)| o * 4)
                    .expect("known lenet5 layer");
                assert_eq!(
                    *bytes,
                    (plan.storage_bytes - bias_bytes) as u64 * blocks,
                    "layer:{label} BytesMoved must be weight bytes x batch blocks"
                );
            }
            // Counters and the normalized trace are worker-invariant.
            match &reference {
                None => reference = Some(layers),
                Some(r) => assert_eq!(r, &layers, "{format:?} counters depend on threads"),
            }
        }
    }
    sb_runtime::set_thread_override(None);
    sb_trace::set_override(None);
}
