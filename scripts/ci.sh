#!/usr/bin/env bash
# Tier-1 CI entry point for shrinkbench-rs.
#
# The workspace is hermetic: every dependency is an in-repo path crate
# (see the root Cargo.toml [workspace.dependencies]), so the whole build
# and test cycle must succeed with zero network access. `--offline` (and
# CARGO_NET_OFFLINE as a belt-and-suspenders for subprocesses) turns any
# accidental registry dependency into a hard failure instead of a fetch.
#
# This script is the definition of "tests pass" for the repo: run it
# before merging anything.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline

# Compile-check every bench target (realized.rs, kernels.rs, the infer
# end-to-end benches) without running them, so bench code can't rot.
cargo bench --no-run --offline

# The suite runs twice: once pinned to one runtime thread (exact inline
# sequential execution) and once on four workers. sb-runtime's contract
# is that results are bit-identical either way — the determinism tests
# compare serialized bytes, so any scheduling-dependent result fails
# tier-1 here rather than in a figure.
SB_RUNTIME_THREADS=1 cargo test -q --offline
SB_RUNTIME_THREADS=4 cargo test -q --offline
