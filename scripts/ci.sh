#!/usr/bin/env bash
# Tier-1 CI entry point for shrinkbench-rs.
#
# The workspace is hermetic: every dependency is an in-repo path crate
# (see the root Cargo.toml [workspace.dependencies]), so the whole build
# and test cycle must succeed with zero network access. `--offline` (and
# CARGO_NET_OFFLINE as a belt-and-suspenders for subprocesses) turns any
# accidental registry dependency into a hard failure instead of a fetch.
#
# This script is the definition of "tests pass" for the repo: run it
# before merging anything.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline

# Compile-check every bench target (realized.rs, kernels.rs, the infer
# end-to-end benches) without running them, so bench code can't rot.
cargo bench --no-run --offline

# The suite runs twice: once pinned to one runtime thread (exact inline
# sequential execution) and once on four workers. sb-runtime's contract
# is that results are bit-identical either way — the determinism tests
# compare serialized bytes, so any scheduling-dependent result fails
# tier-1 here rather than in a figure. The 4-worker pass also runs with
# SB_TRACE=1, so every test exercises the *enabled* tracing paths (span
# collection, cross-thread re-parenting, counter attribution) — tracing
# must never change a result or panic under the full suite.
SB_RUNTIME_THREADS=1 cargo test -q --offline
SB_RUNTIME_THREADS=4 SB_TRACE=1 cargo test -q --offline

# The wall-clock floors compare *kernels* against each other (BSR vs CSR
# vs dense), and the BSR claim is a vectorization claim — it only holds
# in optimized builds, where the debug-gated test above un-ignores
# itself. Run the speed suite once in release so the format-crossover
# floors actually gate merges.
SB_RUNTIME_THREADS=4 cargo test -q --release --offline -p sb-infer --test speed

# The serving smoke replays a pinned virtual-clock workload through the
# sb-serve micro-batcher and asserts its exact outcome counts — batching
# policy, admission control, deadline checks, and the rng stream all
# feed the signature, and the virtual clock makes it bit-identical at
# any worker count (both CI thread configs are exercised here).
SB_RUNTIME_THREADS=1 ./target/release/serveload --smoke
SB_RUNTIME_THREADS=4 ./target/release/serveload --smoke

# Same discipline for the multi-model scheduler: schedload --smoke
# replays a pinned 3-tenant workload (WFQ weights, priority classes,
# per-tenant batching, deadlines) through sb-sched on the virtual clock
# and asserts the exact outcome signature at both worker counts.
SB_RUNTIME_THREADS=1 ./target/release/schedload --smoke
SB_RUNTIME_THREADS=4 ./target/release/schedload --smoke

# And once more with per-tenant admission quotas enabled: the quota'd
# smoke pins the token-bucket refill arithmetic and the QuotaExceeded
# shed counts alongside the WFQ/EDF outcome signature, again at both
# worker counts.
SB_RUNTIME_THREADS=1 ./target/release/schedload --smoke --quota
SB_RUNTIME_THREADS=4 ./target/release/schedload --smoke --quota

# Fault-tolerance smokes: the same pinned workloads armed with seeded
# fault injection (panic bursts, transient flakes, slowdowns), bounded
# retry, circuit breakers, and pruned-model fallback. Each smoke
# asserts the exact degraded-mode counts — EngineFailure resolutions,
# CircuitOpen sheds, fallback completions, breaker transition counts —
# at the canonical seed, so panic isolation and recovery are gated the
# same way the happy path is, and again at both worker counts (the
# fault schedule is a pure function of the seed, never of scheduling).
SB_RUNTIME_THREADS=1 ./target/release/serveload --smoke --faults 64023
SB_RUNTIME_THREADS=4 ./target/release/serveload --smoke --faults 64023
SB_RUNTIME_THREADS=1 ./target/release/schedload --smoke --faults 64023
SB_RUNTIME_THREADS=4 ./target/release/schedload --smoke --faults 64023

# Tracing must leave experiment output byte-identical: run the same quick
# grid with tracing off and on, and compare the persisted results JSON.
# The traced run must also emit its grid trace artifacts.
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
./target/release/expfig mnist-saturation --scale quick \
    --results "$trace_tmp/plain" --figures "$trace_tmp/figs-plain" >/dev/null
SB_TRACE=1 ./target/release/expfig mnist-saturation --scale quick \
    --results "$trace_tmp/traced" --figures "$trace_tmp/figs-traced" >/dev/null
for f in "$trace_tmp/plain"/*.json; do
    cmp "$f" "$trace_tmp/traced/$(basename "$f")"
done
test -s "$trace_tmp/traced/mnist-saturation-quick.trace.json"
test -s "$trace_tmp/traced/mnist-saturation-quick.flame.txt"
echo "trace determinism: results identical traced vs untraced, artifacts emitted"
