#!/usr/bin/env python3
"""Generates the remaining EXPERIMENTS.md sections from results/*.json.

Run after `expfig all --scale standard` completes:

    python3 scripts/fill_experiments.py >> EXPERIMENTS.md
"""
import json
import collections
import os

R = "results"


def cells(path):
    with open(os.path.join(R, path)) as fh:
        d = json.load(fh)
    m = collections.defaultdict(list)
    for r in d["records"]:
        m[(r["strategy"], r["target_compression"])].append(r)
    dense = d["records"][0]["pretrain_top1"]
    return m, dense


def mean(rs, key):
    return sum(r[key] for r in rs) / len(rs)


def table(path, strategies, ratios, key="top1"):
    m, dense = cells(path)
    lines = ["| strategy | " + " | ".join(f"{int(c)}×" for c in ratios) + " |"]
    lines.append("|" + "---|" * (len(ratios) + 1))
    for s in strategies:
        row = [s]
        for c in ratios:
            rs = m.get((s, c))
            row.append(f"{mean(rs, key):.3f}" if rs else "—")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines), dense


FIG7_STRATS = ["Global Weight", "Layer Weight", "Global Gradient", "Layer Gradient", "Random"]


def main():
    out = []
    w = out.append

    # Appendix figures 11/12 and 15/16.
    for model, path, figs in [
        ("ResNet-20", "resnet20-standard.json", "11/12"),
        ("ResNet-110", "resnet110-standard.json", "15/16"),
    ]:
        if not os.path.exists(os.path.join(R, path)):
            continue
        t, dense = table(path, FIG7_STRATS, [2.0, 4.0, 8.0, 16.0])
        w(f"\n## Figures {figs} — {model} on CIFAR-like (appendix)\n")
        w(f"**Measured** (mean Top-1; dense control {dense:.3f}):\n")
        w(t)
        w(
            "\nSame qualitative shape as Figure 7: magnitude beats gradient "
            "beats random, global beats layerwise at fixed compression, and "
            "the speedup re-plot flips the global/layerwise ordering."
        )

    # Figure 8.
    if os.path.exists(os.path.join(R, "weights-b-standard.json")):
        ma, da = cells("weights-a-standard.json")
        mb, db = cells("weights-b-standard.json")
        w("\n## Figure 8 — the initial-model confounder (Weights A vs Weights B)\n")
        w(
            f"Two ResNet-56 models trained with Adam at lr 1e-3 (Weights A, dense "
            f"Top-1 {da:.3f}) and lr 1e-4 (Weights B, dense Top-1 {db:.3f}); Global and "
            f"Layerwise magnitude pruning on each, all else identical.\n"
        )
        w("| ratio | Global A | Layer A | Global B | Layer B |")
        w("|---|---|---|---|---|")
        for c in [1.0, 2.0, 4.0, 8.0, 16.0]:
            row = [f"{int(c)}×"]
            for m in (ma, mb):
                for s in ("Global Weight", "Layer Weight"):
                    rs = m.get((s, c))
                    row.append(f"{mean(rs, 'top1'):.3f}" if rs else "—")
            # reorder: GA, LA, GB, LB
            w("| " + " | ".join([row[0], row[1], row[2], row[3], row[4]]) + " |")
        w(
            "\n- Within either model, Global beats Layerwise — but the *absolute* "
            "curves differ so much between models that cross-model comparisons "
            "are meaningless (the paper's left panel).\n"
            "- Reporting Δ-accuracy does not deconfound: Weights B loses less "
            "absolute accuracy at 2–4× simply because it starts lower, so "
            "Layer-on-B can 'beat' Global-on-A in Δ terms while losing in "
            "absolute terms when the model is held fixed (right panel)."
        )

    # MNIST saturation.
    if os.path.exists(os.path.join(R, "mnist-saturation-standard.json")):
        t, dense = table(
            "mnist-saturation-standard.json",
            ["Global Weight", "Random"],
            [2.0, 4.0, 8.0, 16.0],
        )
        w("\n## `mnist-saturation` — why MNIST results don't discriminate (§4.2)\n")
        w(f"**Measured** (LeNet-300-100, dense control {dense:.3f}):\n")
        w(t)
        w(
            "\nThe MNIST-like task stays at ceiling through 4–8× for magnitude "
            "pruning — exactly the saturation that makes MNIST comparisons "
            "uninformative in the literature."
        )

    # Ablations.
    abl = [
        (
            "ablation-schedule",
            ["ablation-schedule-oneshot-standard.json", "ablation-schedule-iterative-standard.json"],
            ["Global Weight"],
            [4.0, 16.0],
            "One-shot vs iterative (3-step) pruning on ResNet-20",
        ),
        (
            "ablation-classifier",
            [
                "ablation-classifier-excluded-standard.json",
                "ablation-classifier-included-standard.json",
            ],
            ["Global Weight"],
            [8.0, 32.0],
            "Excluding vs including the classifier layer (App C.1), CIFAR-VGG",
        ),
        (
            "ablation-weight-policy",
            [
                "ablation-policy-finetune-standard.json",
                "ablation-policy-rewind-standard.json",
                "ablation-policy-reinit-standard.json",
            ],
            ["Global Weight"],
            [2.0, 8.0, 16.0],
            "Fine-tune vs lottery-ticket rewind vs reinitialize, CIFAR-VGG",
        ),
        (
            "ablation-architecture",
            ["ablation-arch-base-standard.json", "ablation-arch-variant-standard.json"],
            ["Global Weight", "Global Gradient"],
            [2.0, 4.0, 8.0],
            'Two models both called "CIFAR-VGG" (§5.1)',
        ),
        (
            "ablation-random-layerwise",
            ["ablation-random-layerwise-standard.json"],
            ["Random", "Random (layerwise)"],
            [2.0, 8.0, 16.0],
            "Global vs layerwise-proportional random pruning (App B)",
        ),
        (
            "prune-at-init",
            ["prune-at-init-standard.json"],
            ["Global Gradient", "Global Weight", "Random"],
            [2.0, 4.0, 8.0],
            "Pruning at initialization (SNIP-style, §2.2), CIFAR-VGG",
        ),
        (
            "ablation-structured",
            ["ablation-structured-standard.json"],
            ["Filter Norm (structured)", "Global Weight", "Layer Weight"],
            [2.0, 4.0, 8.0],
            "Structured filter pruning vs unstructured (§2.3), LeNet-5",
        ),
    ]
    w("\n## Ablations (mean Top-1 per variant)\n")
    for name, paths, strats, ratios, caption in abl:
        rows = []
        for path in paths:
            if not os.path.exists(os.path.join(R, path)):
                continue
            m, dense = cells(path)
            variant = path.replace("-standard.json", "")
            for s in strats:
                vals = []
                for c in ratios:
                    rs = m.get((s, c))
                    vals.append(f"{mean(rs, 'top1'):.3f}" if rs else "—")
                spd = []
                for c in ratios:
                    rs = m.get((s, c))
                    spd.append(f"{mean(rs, 'speedup'):.1f}×" if rs else "—")
                rows.append((variant, s, vals, spd, dense))
        if not rows:
            continue
        w(f"\n### `{name}` — {caption}\n")
        header = "| variant | strategy | " + " | ".join(f"{int(c)}×" for c in ratios) + " | speedups |"
        w(header)
        w("|" + "---|" * (len(ratios) + 3))
        for variant, s, vals, spd, dense in rows:
            w(
                "| "
                + " | ".join([variant, s] + vals + ["/".join(spd)])
                + " |"
            )
    print("\n".join(out))


if __name__ == "__main__":
    main()
