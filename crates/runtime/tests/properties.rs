//! Property-based tests for the runtime's execution guarantees, on the
//! in-repo `sb-check` harness. Every failure message carries an
//! `SB_CHECK_SEED` that replays the exact case.

use sb_check::{check, prop_assert, prop_assert_eq, Config};
use sb_runtime::{
    parallel_for, set_thread_override, JobError, JobQueue, JobSpec, Pool,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pinned suite seed: every property below derives its per-case seeds
/// from this value, so failures reproduce across machines.
const SUITE: u64 = 0x7E45_0008;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// Restores the process-wide thread override when dropped, so a failing
/// property cannot leave other tests pinned to a stale thread count.
struct OverrideGuard;

impl OverrideGuard {
    fn set(n: usize) -> Self {
        set_thread_override(Some(n));
        OverrideGuard
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        set_thread_override(None);
    }
}

#[test]
fn every_spawned_task_runs_exactly_once() {
    check(
        "runtime::every_spawned_task_runs_exactly_once",
        cfg().cases(30),
        |rng| (1 + rng.below(150) as usize, 1 + rng.below(4) as usize),
        |&(n_tasks, threads)| {
            let pool = Pool::new(threads);
            let runs: Vec<AtomicUsize> = (0..n_tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.scope(|s| {
                for counter in &runs {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            for (i, counter) in runs.iter().enumerate() {
                let count = counter.load(Ordering::Relaxed);
                prop_assert!(count == 1, "task {i} ran {count} times on {threads} threads");
            }
            Ok(())
        },
    );
}

#[test]
fn parallel_for_reduction_equals_sequential_fold() {
    check(
        "runtime::parallel_for_reduction_equals_sequential_fold",
        cfg().cases(40),
        |rng| {
            let len = rng.below(400) as usize;
            let chunk = 1 + rng.below(50) as usize;
            let xs: Vec<f32> = (0..len).map(|_| rng.uniform(-1e6, 1e6)).collect();
            (xs, chunk)
        },
        |(xs, chunk)| {
            // The reference result: fold the same chunk decomposition
            // inline, in order — f32 addition is non-associative, so this
            // only matches if the runtime commits chunks in order too.
            let mut expected = 0.0f32;
            for block in xs.chunks(*chunk) {
                let mut part = 0.0f32;
                for &v in block {
                    part += v;
                }
                expected += part;
            }
            let sum = |r: std::ops::Range<usize>| {
                let mut part = 0.0f32;
                for &v in &xs[r] {
                    part += v;
                }
                part
            };
            for threads in [1usize, 4] {
                let _guard = OverrideGuard::set(threads);
                let got = parallel_for(xs.len(), *chunk, &sum, 0.0f32, |acc, p| acc + p);
                prop_assert!(
                    got.to_bits() == expected.to_bits(),
                    "thread count {threads} changed the reduction: {got} vs {expected}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn worker_panics_surface_as_scope_errors() {
    check(
        "runtime::worker_panics_surface_as_scope_errors",
        cfg().cases(15),
        |rng| (1 + rng.below(3) as usize, rng.below(20) as usize),
        |&(threads, quiet_tasks)| {
            let pool = Pool::new(threads);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for _ in 0..quiet_tasks {
                        s.spawn(|| std::hint::black_box(()));
                    }
                    s.spawn(|| panic!("injected worker panic"));
                });
            }));
            let payload = match result {
                Ok(()) => return Err("scope swallowed the worker panic".to_string()),
                Err(p) => p,
            };
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            prop_assert!(msg.contains("injected worker panic"), "payload lost: {msg:?}");
            Ok(())
        },
    );
}

#[test]
fn job_panics_surface_as_job_errors() {
    let queue = JobQueue::on(Arc::new(Pool::new(2)));
    let handle = queue.submit(JobSpec::new().label("exploder"), |_| -> Result<(), String> {
        panic!("job blew up");
    });
    match handle.join() {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("job blew up"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
}

#[test]
fn cancellation_leaves_no_queued_job_running() {
    check(
        "runtime::cancellation_leaves_no_queued_job_running",
        cfg().cases(15),
        |rng| 1 + rng.below(30) as usize,
        |&n_jobs| {
            // A one-worker pool whose only worker is pinned by a blocker
            // job: everything submitted behind it stays queued until we
            // open the gate, so cancelling the queued jobs must win.
            let pool = Arc::new(Pool::new(1));
            let queue = JobQueue::on(Arc::clone(&pool));
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let gate_in = Arc::clone(&gate);
            let blocker = queue.submit(JobSpec::new().label("blocker"), move |_| {
                let (lock, cv) = &*gate_in;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(())
            });

            let ran = Arc::new((0..n_jobs).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
            let handles: Vec<_> = (0..n_jobs)
                .map(|i| {
                    let ran = Arc::clone(&ran);
                    queue.submit(JobSpec::new(), move |_| {
                        ran[i].fetch_add(1, Ordering::SeqCst);
                        Ok(i)
                    })
                })
                .collect();
            for handle in &handles {
                handle.cancel();
            }
            // Open the gate only after cancelling: the worker then drains
            // the queue, and every cancelled job must resolve without
            // having run.
            {
                let (lock, cv) = &*gate;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            blocker.join().expect("blocker completes once the gate opens");
            for (i, handle) in handles.into_iter().enumerate() {
                prop_assert!(handle.join() == Err(JobError::Cancelled), "job {i} not cancelled");
                let runs = ran[i].load(Ordering::SeqCst);
                prop_assert!(runs == 0, "cancelled job {i} still ran {runs} times");
            }
            Ok(())
        },
    );
}

#[test]
fn retries_eventually_succeed_and_are_bounded() {
    check(
        "runtime::retries_eventually_succeed_and_are_bounded",
        cfg().cases(20),
        |rng| (1 + rng.below(4) as u32, rng.below(8) as u32),
        |&(fail_times, retries)| {
            let queue = JobQueue::on(Arc::new(Pool::new(1)));
            let attempts = Arc::new(AtomicUsize::new(0));
            let attempts_in = Arc::clone(&attempts);
            let handle = queue.submit(JobSpec::new().retries(retries), move |ctx| {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                if ctx.attempt() <= fail_times {
                    Err(format!("failure {}", ctx.attempt()))
                } else {
                    Ok(ctx.attempt())
                }
            });
            let result = handle.join();
            let ran = attempts.load(Ordering::SeqCst) as u32;
            if fail_times <= retries {
                prop_assert_eq!(result, Ok(fail_times + 1));
                prop_assert_eq!(ran, fail_times + 1);
            } else {
                prop_assert_eq!(
                    result,
                    Err(JobError::Failed {
                        attempts: retries + 1,
                        message: format!("failure {}", retries + 1),
                    })
                );
                prop_assert!(ran == retries + 1, "retry budget exceeded");
            }
            Ok(())
        },
    );
}
