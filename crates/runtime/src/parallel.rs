//! Deterministic data-parallel helpers: `parallel_for` and friends.
//!
//! # The determinism contract
//!
//! Every helper here decomposes its work into **chunks whose boundaries
//! depend only on the arguments** — never on the worker count or on
//! scheduling — and **commits results in submission (chunk) order**.
//! Each chunk is computed by a pure, single-threaded closure. The output
//! is therefore bit-identical for any `SB_RUNTIME_THREADS`, including 1:
//! the sequential path iterates the *same* chunk decomposition inline and
//! folds in the *same* order, so even non-associative `f32` reductions
//! reproduce exactly.
//!
//! Callers must pick chunk sizes as a function of the problem shape only
//! (e.g. "64 rows" or "one sample"), which every call site in the
//! workspace does.

use crate::{effective_parallelism, global_pool};
use std::ops::Range;

fn chunk_count(n: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be positive");
    if n == 0 {
        0
    } else {
        (n + chunk - 1) / chunk
    }
}

fn chunk_range(ci: usize, chunk: usize, n: usize) -> Range<usize> {
    let lo = ci * chunk;
    lo..((lo + chunk).min(n))
}

/// Maps fixed-size index chunks of `0..n` in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// `f` receives each chunk's index range and must be pure (same range →
/// same value). With one effective thread (or a single chunk) the chunks
/// run inline in order — the exact fold any parallel run reproduces.
pub fn map_chunks<T, F>(n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let nchunks = chunk_count(n, chunk);
    if effective_parallelism() == 1 || nchunks <= 1 {
        return (0..nchunks).map(|ci| f(chunk_range(ci, chunk, n))).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(nchunks);
    slots.resize_with(nchunks, || None);
    // Chunk tasks keep the caller's logical span path, so spans opened
    // inside a chunk aggregate identically whether the chunk ran inline
    // (1 thread) or on a stolen worker.
    let parent = sb_trace::current_path();
    global_pool().scope(|s| {
        for (ci, slot) in slots.iter_mut().enumerate() {
            let f = &f;
            let parent = &parent;
            s.spawn(move || {
                *slot = Some(sb_trace::with_path(parent, || f(chunk_range(ci, chunk, n))));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scope joined every chunk task"))
        .collect()
}

/// `parallel_for` with deterministic ordered reduction: maps index chunks
/// of `0..n` in parallel, then folds the per-chunk results **in chunk
/// order** on the calling thread.
///
/// Because the decomposition is fixed by `(n, chunk)` and the fold order
/// is fixed by chunk index, the result is bit-identical for any worker
/// count — even for non-associative accumulators like `f32` sums.
pub fn parallel_for<T, A, M, F>(n: usize, chunk: usize, map: M, init: A, mut fold: F) -> A
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    map_chunks(n, chunk, map).into_iter().fold(init, |acc, v| fold(acc, v))
}

/// Splits `data` into consecutive `chunk_len`-element blocks (the last
/// may be shorter), hands each block to `f` together with its chunk
/// index, and returns the per-chunk results in chunk order.
///
/// The blocks are disjoint `&mut` slices, so tasks can write their part
/// of a shared output buffer without locks; because every element is
/// written by exactly one chunk and `f` is single-threaded per chunk, the
/// buffer contents are identical for any worker count.
pub fn map_chunks_mut<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let nchunks = chunk_count(data.len(), chunk_len);
    if effective_parallelism() == 1 || nchunks <= 1 {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(ci, block)| f(ci, block))
            .collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(nchunks);
    slots.resize_with(nchunks, || None);
    let parent = sb_trace::current_path();
    global_pool().scope(|s| {
        for ((ci, block), slot) in data.chunks_mut(chunk_len).enumerate().zip(slots.iter_mut()) {
            let f = &f;
            let parent = &parent;
            s.spawn(move || *slot = Some(sb_trace::with_path(parent, || f(ci, block))));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scope joined every chunk task"))
        .collect()
}

/// [`map_chunks_mut`] without per-chunk results: runs `f` over disjoint
/// mutable blocks of `data`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let _: Vec<()> = map_chunks_mut(data, chunk_len, |ci, block| f(ci, block));
}

/// Maps owned items in parallel (one task per item), returning results
/// **in item order**.
///
/// Suited to coarse-grained fan-out — experiment cells, per-paper
/// analyses — where each item is substantial enough to amortize a task.
pub fn map_items<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if effective_parallelism() == 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let parent = sb_trace::current_path();
    global_pool().scope(|s| {
        for ((i, item), slot) in items.into_iter().enumerate().zip(slots.iter_mut()) {
            let f = &f;
            let parent = &parent;
            s.spawn(move || *slot = Some(sb_trace::with_path(parent, || f(i, item))));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scope joined every item task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_covers_ranges_in_order() {
        let ranges = map_chunks(10, 3, |r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(map_chunks(0, 4, |r| r), Vec::<Range<usize>>::new());
    }

    #[test]
    fn parallel_for_matches_sequential_fold_exactly() {
        // Pathologically ill-conditioned f32 sum: any reordering changes
        // the bits, so equality here is the determinism contract.
        let xs: Vec<f32> = (0..1000)
            .map(|i| if i % 2 == 0 { 1e7 } else { -0.001 * i as f32 })
            .collect();
        let expected = {
            let mut acc = 0.0f32;
            for ci in 0..(xs.len() + 62) / 63 {
                let lo = ci * 63;
                let hi = (lo + 63).min(xs.len());
                let mut part = 0.0f32;
                for &v in &xs[lo..hi] {
                    part += v;
                }
                acc += part;
            }
            acc
        };
        let got = parallel_for(
            xs.len(),
            63,
            |r| {
                let mut part = 0.0f32;
                for &v in &xs[r] {
                    part += v;
                }
                part
            },
            0.0f32,
            |acc, part| acc + part,
        );
        assert_eq!(got.to_bits(), expected.to_bits());
    }

    #[test]
    fn map_chunks_mut_writes_every_element_once() {
        let mut data = vec![0u32; 100];
        for_each_chunk_mut(&mut data, 7, |ci, block| {
            for v in block.iter_mut() {
                assert_eq!(*v, 0, "element written twice");
                *v = ci as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v != 0));
        // First chunk is chunk 0, last element belongs to chunk 14.
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 15);
    }

    #[test]
    fn map_items_preserves_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = map_items(items, |i, item| {
            assert_eq!(i, item);
            item * 3
        });
        assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }
}
