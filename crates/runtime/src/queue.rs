//! Job scheduling with retry, deadline, and cancellation.
//!
//! A [`JobQueue`] submits independent fallible jobs to a [`Pool`] and
//! returns a [`JobHandle`] per job. Handles are joined **in whatever
//! order the caller chooses** — `sb-core`'s experiment grid joins them in
//! submission order, which is how grid output stays deterministic even
//! though jobs finish in any order.
//!
//! Each job runs under a [`JobSpec`] policy:
//! - **retries** — a job returning `Err` (or panicking) is re-run up to
//!   `retries` extra times before the error is published;
//! - **backoff** — an optional [`Backoff`] schedule waits between
//!   attempts (exponential with a cap); a wait that would overshoot the
//!   deadline resolves [`JobError::DeadlineExceeded`] without sleeping;
//! - **deadline** — measured from submission; once exceeded, no further
//!   attempt starts and the job resolves to [`JobError::DeadlineExceeded`];
//! - **cancellation** — [`JobHandle::cancel`] flips a shared flag; a job
//!   that has not started yet resolves to [`JobError::Cancelled`] without
//!   running, and a running job can poll [`JobContext::is_cancelled`] to
//!   stop early.

use crate::pool::{panic_message, Pool};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Exponential wait schedule between job attempts: retry `k` (0-based)
/// waits `min(base · multiplier^k, max_delay)`. Arithmetic saturates —
/// an extreme schedule clamps instead of wrapping into an instant retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Wait before the first retry.
    pub base: Duration,
    /// Growth factor per retry (0 is treated as 1: constant backoff).
    pub multiplier: u32,
    /// Ceiling on any single wait.
    pub max_delay: Duration,
}

impl Backoff {
    /// A constant schedule: every retry waits `base`.
    pub fn constant(base: Duration) -> Self {
        Backoff {
            base,
            multiplier: 1,
            max_delay: base,
        }
    }

    /// The wait before retry `retry` (0-based: the wait after the first
    /// failed attempt).
    pub fn delay(&self, retry: u32) -> Duration {
        let mult = self.multiplier.max(1);
        let mut d = self.base;
        for _ in 0..retry {
            if d >= self.max_delay {
                break;
            }
            d = d.saturating_mul(mult);
        }
        d.min(self.max_delay)
    }
}

/// Per-job execution policy: an optional label plus retry, backoff,
/// deadline, and (via the handle) cancellation behaviour.
#[derive(Clone, Debug, Default)]
pub struct JobSpec {
    label: String,
    retries: u32,
    backoff: Option<Backoff>,
    deadline: Option<Duration>,
}

impl JobSpec {
    /// A spec with no retries, no deadline, and an empty label.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names the job; the label is echoed on the handle and in errors.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Re-runs a failing or panicking job up to `retries` extra times.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Waits per `backoff` between attempts instead of retrying
    /// immediately. A wait that would overshoot the job's deadline
    /// resolves [`JobError::DeadlineExceeded`] right away, without
    /// sleeping out the doomed delay.
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Refuses to start any attempt once `deadline` has elapsed since
    /// submission. Attempts already running are not interrupted.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a job did not produce a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job was cancelled before (or between) attempts; it never ran
    /// to completion.
    Cancelled,
    /// The job's deadline elapsed before an attempt could start.
    DeadlineExceeded,
    /// The job panicked on its final attempt; the payload's message.
    Panicked(String),
    /// The job returned `Err` on its final attempt.
    Failed {
        /// How many attempts ran (initial try + retries).
        attempts: u32,
        /// The final attempt's error message.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Failed { attempts, message } => {
                write!(f, "job failed after {attempts} attempt(s): {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Handed to each job attempt: the attempt number and a cancellation
/// probe for long-running jobs that want to stop early.
pub struct JobContext {
    cancelled: Arc<AtomicBool>,
    attempt: u32,
}

impl JobContext {
    /// 1 for the first try, 2 for the first retry, and so on.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// True once [`JobHandle::cancel`] has been called. Jobs are not
    /// interrupted preemptively; polling this is cooperative.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

struct JobState<T> {
    slot: Mutex<Option<Result<T, JobError>>>,
    cv: Condvar,
    cancelled: Arc<AtomicBool>,
}

impl<T> JobState<T> {
    fn publish(&self, result: Result<T, JobError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "job result published twice");
        *slot = Some(result);
        self.cv.notify_all();
    }
}

/// The caller's side of a submitted job: cancel it, poll it, or block
/// until its result is available.
pub struct JobHandle<T> {
    label: String,
    state: Arc<JobState<T>>,
}

impl<T> JobHandle<T> {
    /// The label given in the job's [`JobSpec`].
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Requests cancellation. An attempt that has not started will never
    /// run; a running attempt sees it via [`JobContext::is_cancelled`].
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once the job has resolved (to a value or an error).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// Blocks until the job resolves and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.take().expect("loop exits only when the slot is filled")
    }
}

enum Backend {
    /// Run jobs synchronously at submit time (1-thread resolution).
    Inline,
    /// Spawn onto the process-wide pool.
    Global,
    /// Spawn onto a caller-owned pool.
    Owned(Arc<Pool>),
}

/// Submits jobs to a thread pool and hands back [`JobHandle`]s.
pub struct JobQueue {
    backend: Backend,
}

impl JobQueue {
    /// A queue on the runtime's default execution: inline synchronous
    /// jobs when [`crate::effective_parallelism`] is 1 (exact sequential
    /// behaviour), otherwise the shared global pool.
    pub fn new() -> Self {
        let backend = if crate::effective_parallelism() == 1 {
            Backend::Inline
        } else {
            Backend::Global
        };
        JobQueue { backend }
    }

    /// A queue that always spawns onto `pool`, regardless of the
    /// process-wide thread settings.
    pub fn on(pool: Arc<Pool>) -> Self {
        JobQueue { backend: Backend::Owned(pool) }
    }

    /// Submits a job. The closure is attempted up to `1 + retries` times
    /// per its [`JobSpec`]; the handle resolves to the first `Ok`, or to
    /// the final attempt's error.
    pub fn submit<T, F>(&self, spec: JobSpec, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(&JobContext) -> Result<T, String> + Send + 'static,
    {
        let cancelled = Arc::new(AtomicBool::new(false));
        let state = Arc::new(JobState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            cancelled: Arc::clone(&cancelled),
        });
        let handle = JobHandle { label: spec.label.clone(), state: Arc::clone(&state) };
        let submitted = Instant::now();
        // Capture the submitter's logical span path so the job's span
        // lands under it no matter which worker thread runs the attempt —
        // inline and pooled execution produce identical trace paths.
        let parent = sb_trace::current_path();
        let run = move || {
            let result = sb_trace::with_path(&parent, || {
                let _job = sb_trace::span_with(|| {
                    if spec.label.is_empty() {
                        "job".to_string()
                    } else {
                        format!("job:{}", spec.label)
                    }
                });
                run_attempts(&spec, &cancelled, submitted, &job)
            });
            // Publish only after the span closed and the worker flushed
            // its thread-local aggregates (the path pop above does that):
            // whoever joins this handle and snapshots the trace is
            // guaranteed to see this job's spans.
            state.publish(result);
        };
        match &self.backend {
            Backend::Inline => run(),
            Backend::Global => crate::global_pool().spawn(run),
            Backend::Owned(pool) => pool.spawn(run),
        }
        handle
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

fn run_attempts<T, F>(
    spec: &JobSpec,
    cancelled: &Arc<AtomicBool>,
    submitted: Instant,
    job: &F,
) -> Result<T, JobError>
where
    F: Fn(&JobContext) -> Result<T, String>,
{
    let attempts = spec.retries + 1;
    let mut last = JobError::Failed { attempts: 0, message: "job never attempted".into() };
    for attempt in 1..=attempts {
        if cancelled.load(Ordering::SeqCst) {
            return Err(JobError::Cancelled);
        }
        if let Some(deadline) = spec.deadline {
            if submitted.elapsed() > deadline {
                return Err(JobError::DeadlineExceeded);
            }
        }
        let ctx = JobContext { cancelled: Arc::clone(cancelled), attempt };
        match catch_unwind(AssertUnwindSafe(|| job(&ctx))) {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(message)) => last = JobError::Failed { attempts: attempt, message },
            Err(payload) => last = JobError::Panicked(panic_message(payload.as_ref())),
        }
        if attempt < attempts {
            if let Some(backoff) = spec.backoff {
                let delay = backoff.delay(attempt - 1);
                if let Some(deadline) = spec.deadline {
                    if submitted.elapsed().saturating_add(delay) > deadline {
                        return Err(JobError::DeadlineExceeded);
                    }
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn submitted_job_resolves_with_value() {
        let queue = JobQueue::new();
        let handle = queue.submit(JobSpec::new().label("answer"), |_| Ok(42u32));
        assert_eq!(handle.label(), "answer");
        assert_eq!(handle.join(), Ok(42));
    }

    #[test]
    fn failing_job_is_retried_then_reports_attempts() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let tries = Arc::new(AtomicU32::new(0));
        let tries_in = Arc::clone(&tries);
        let handle = queue.submit(JobSpec::new().retries(2), move |ctx| {
            tries_in.fetch_add(1, Ordering::SeqCst);
            Err::<(), _>(format!("attempt {}", ctx.attempt()))
        });
        assert_eq!(
            handle.join(),
            Err(JobError::Failed { attempts: 3, message: "attempt 3".into() })
        );
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_recovers_from_transient_failure() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let handle = queue.submit(JobSpec::new().retries(3), move |ctx| {
            if ctx.attempt() < 3 {
                Err("transient".into())
            } else {
                Ok(ctx.attempt())
            }
        });
        assert_eq!(handle.join(), Ok(3));
    }

    #[test]
    fn panic_in_job_surfaces_as_error() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let handle = queue.submit(JobSpec::new(), |_| -> Result<(), String> {
            panic!("boom in job");
        });
        match handle.join() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom in job")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_blocks_further_attempts() {
        // A zero deadline is already elapsed by the first pre-attempt
        // check (monotonic time advances past it before any attempt can
        // start), so the job resolves DeadlineExceeded without the test
        // ever sleeping or racing a timer against job execution.
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let attempts = Arc::new(AtomicU32::new(0));
        let attempts_in = Arc::clone(&attempts);
        let handle = queue.submit(
            JobSpec::new().retries(1000).deadline(Duration::ZERO),
            move |_| -> Result<(), String> {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                Err("keep retrying".into())
            },
        );
        assert_eq!(handle.join(), Err(JobError::DeadlineExceeded));
        // The deadline cut retries short of the configured budget.
        assert!(attempts.load(Ordering::SeqCst) <= 1);
    }

    #[test]
    fn backoff_schedule_grows_and_caps() {
        let b = Backoff {
            base: Duration::from_millis(10),
            multiplier: 2,
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(35), "capped");
        assert_eq!(b.delay(30), Duration::from_millis(35), "stays capped");
        let c = Backoff::constant(Duration::from_millis(5));
        assert_eq!(c.delay(0), c.delay(9));
    }

    #[test]
    fn backoff_retries_run_the_full_attempt_budget() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let tries = Arc::new(AtomicU32::new(0));
        let tries_in = Arc::clone(&tries);
        let handle = queue.submit(
            JobSpec::new()
                .retries(2)
                .backoff(Backoff::constant(Duration::from_millis(1))),
            move |ctx| {
                tries_in.fetch_add(1, Ordering::SeqCst);
                Err::<(), _>(format!("attempt {}", ctx.attempt()))
            },
        );
        assert_eq!(
            handle.join(),
            Err(JobError::Failed { attempts: 3, message: "attempt 3".into() })
        );
        assert_eq!(tries.load(Ordering::SeqCst), 3, "backoff does not eat attempts");
    }

    #[test]
    fn backoff_overshooting_the_deadline_fails_fast_without_sleeping() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let attempts = Arc::new(AtomicU32::new(0));
        let attempts_in = Arc::clone(&attempts);
        let started = Instant::now();
        let handle = queue.submit(
            JobSpec::new()
                .retries(10)
                .deadline(Duration::from_millis(200))
                // First retry would wait 60s — far past the deadline.
                .backoff(Backoff::constant(Duration::from_secs(60))),
            move |_| -> Result<(), String> {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                Err("always failing".into())
            },
        );
        assert_eq!(handle.join(), Err(JobError::DeadlineExceeded));
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "no retry past the deadline");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the doomed 60s wait was skipped"
        );
    }

    #[test]
    fn cancellation_between_attempts_stops_the_job() {
        let queue = JobQueue::new();
        // Inline/global either way: cancel before the retry loop re-enters.
        let handle = queue.submit(JobSpec::new(), |_| Ok(1u8));
        // Already resolved (inline) or resolving; cancel after completion
        // must not clobber the published value.
        handle.cancel();
        assert!(matches!(handle.join(), Ok(1) | Err(JobError::Cancelled)));
    }
}
