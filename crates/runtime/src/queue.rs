//! Job scheduling with retry, deadline, and cancellation.
//!
//! A [`JobQueue`] submits independent fallible jobs to a [`Pool`] and
//! returns a [`JobHandle`] per job. Handles are joined **in whatever
//! order the caller chooses** — `sb-core`'s experiment grid joins them in
//! submission order, which is how grid output stays deterministic even
//! though jobs finish in any order.
//!
//! Each job runs under a [`JobSpec`] policy:
//! - **retries** — a job returning `Err` (or panicking) is re-run up to
//!   `retries` extra times before the error is published;
//! - **deadline** — measured from submission; once exceeded, no further
//!   attempt starts and the job resolves to [`JobError::DeadlineExceeded`];
//! - **cancellation** — [`JobHandle::cancel`] flips a shared flag; a job
//!   that has not started yet resolves to [`JobError::Cancelled`] without
//!   running, and a running job can poll [`JobContext::is_cancelled`] to
//!   stop early.

use crate::pool::{panic_message, Pool};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-job execution policy: an optional label plus retry, deadline, and
/// (via the handle) cancellation behaviour.
#[derive(Clone, Debug, Default)]
pub struct JobSpec {
    label: String,
    retries: u32,
    deadline: Option<Duration>,
}

impl JobSpec {
    /// A spec with no retries, no deadline, and an empty label.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names the job; the label is echoed on the handle and in errors.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Re-runs a failing or panicking job up to `retries` extra times.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Refuses to start any attempt once `deadline` has elapsed since
    /// submission. Attempts already running are not interrupted.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a job did not produce a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job was cancelled before (or between) attempts; it never ran
    /// to completion.
    Cancelled,
    /// The job's deadline elapsed before an attempt could start.
    DeadlineExceeded,
    /// The job panicked on its final attempt; the payload's message.
    Panicked(String),
    /// The job returned `Err` on its final attempt.
    Failed {
        /// How many attempts ran (initial try + retries).
        attempts: u32,
        /// The final attempt's error message.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Failed { attempts, message } => {
                write!(f, "job failed after {attempts} attempt(s): {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Handed to each job attempt: the attempt number and a cancellation
/// probe for long-running jobs that want to stop early.
pub struct JobContext {
    cancelled: Arc<AtomicBool>,
    attempt: u32,
}

impl JobContext {
    /// 1 for the first try, 2 for the first retry, and so on.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// True once [`JobHandle::cancel`] has been called. Jobs are not
    /// interrupted preemptively; polling this is cooperative.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

struct JobState<T> {
    slot: Mutex<Option<Result<T, JobError>>>,
    cv: Condvar,
    cancelled: Arc<AtomicBool>,
}

impl<T> JobState<T> {
    fn publish(&self, result: Result<T, JobError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "job result published twice");
        *slot = Some(result);
        self.cv.notify_all();
    }
}

/// The caller's side of a submitted job: cancel it, poll it, or block
/// until its result is available.
pub struct JobHandle<T> {
    label: String,
    state: Arc<JobState<T>>,
}

impl<T> JobHandle<T> {
    /// The label given in the job's [`JobSpec`].
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Requests cancellation. An attempt that has not started will never
    /// run; a running attempt sees it via [`JobContext::is_cancelled`].
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// True once the job has resolved (to a value or an error).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// Blocks until the job resolves and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.take().expect("loop exits only when the slot is filled")
    }
}

enum Backend {
    /// Run jobs synchronously at submit time (1-thread resolution).
    Inline,
    /// Spawn onto the process-wide pool.
    Global,
    /// Spawn onto a caller-owned pool.
    Owned(Arc<Pool>),
}

/// Submits jobs to a thread pool and hands back [`JobHandle`]s.
pub struct JobQueue {
    backend: Backend,
}

impl JobQueue {
    /// A queue on the runtime's default execution: inline synchronous
    /// jobs when [`crate::effective_parallelism`] is 1 (exact sequential
    /// behaviour), otherwise the shared global pool.
    pub fn new() -> Self {
        let backend = if crate::effective_parallelism() == 1 {
            Backend::Inline
        } else {
            Backend::Global
        };
        JobQueue { backend }
    }

    /// A queue that always spawns onto `pool`, regardless of the
    /// process-wide thread settings.
    pub fn on(pool: Arc<Pool>) -> Self {
        JobQueue { backend: Backend::Owned(pool) }
    }

    /// Submits a job. The closure is attempted up to `1 + retries` times
    /// per its [`JobSpec`]; the handle resolves to the first `Ok`, or to
    /// the final attempt's error.
    pub fn submit<T, F>(&self, spec: JobSpec, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: Fn(&JobContext) -> Result<T, String> + Send + 'static,
    {
        let cancelled = Arc::new(AtomicBool::new(false));
        let state = Arc::new(JobState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            cancelled: Arc::clone(&cancelled),
        });
        let handle = JobHandle { label: spec.label.clone(), state: Arc::clone(&state) };
        let submitted = Instant::now();
        // Capture the submitter's logical span path so the job's span
        // lands under it no matter which worker thread runs the attempt —
        // inline and pooled execution produce identical trace paths.
        let parent = sb_trace::current_path();
        let run = move || {
            let result = sb_trace::with_path(&parent, || {
                let _job = sb_trace::span_with(|| {
                    if spec.label.is_empty() {
                        "job".to_string()
                    } else {
                        format!("job:{}", spec.label)
                    }
                });
                run_attempts(&spec, &cancelled, submitted, &job)
            });
            // Publish only after the span closed and the worker flushed
            // its thread-local aggregates (the path pop above does that):
            // whoever joins this handle and snapshots the trace is
            // guaranteed to see this job's spans.
            state.publish(result);
        };
        match &self.backend {
            Backend::Inline => run(),
            Backend::Global => crate::global_pool().spawn(run),
            Backend::Owned(pool) => pool.spawn(run),
        }
        handle
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

fn run_attempts<T, F>(
    spec: &JobSpec,
    cancelled: &Arc<AtomicBool>,
    submitted: Instant,
    job: &F,
) -> Result<T, JobError>
where
    F: Fn(&JobContext) -> Result<T, String>,
{
    let attempts = spec.retries + 1;
    let mut last = JobError::Failed { attempts: 0, message: "job never attempted".into() };
    for attempt in 1..=attempts {
        if cancelled.load(Ordering::SeqCst) {
            return Err(JobError::Cancelled);
        }
        if let Some(deadline) = spec.deadline {
            if submitted.elapsed() > deadline {
                return Err(JobError::DeadlineExceeded);
            }
        }
        let ctx = JobContext { cancelled: Arc::clone(cancelled), attempt };
        match catch_unwind(AssertUnwindSafe(|| job(&ctx))) {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(message)) => last = JobError::Failed { attempts: attempt, message },
            Err(payload) => last = JobError::Panicked(panic_message(payload.as_ref())),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn submitted_job_resolves_with_value() {
        let queue = JobQueue::new();
        let handle = queue.submit(JobSpec::new().label("answer"), |_| Ok(42u32));
        assert_eq!(handle.label(), "answer");
        assert_eq!(handle.join(), Ok(42));
    }

    #[test]
    fn failing_job_is_retried_then_reports_attempts() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let tries = Arc::new(AtomicU32::new(0));
        let tries_in = Arc::clone(&tries);
        let handle = queue.submit(JobSpec::new().retries(2), move |ctx| {
            tries_in.fetch_add(1, Ordering::SeqCst);
            Err::<(), _>(format!("attempt {}", ctx.attempt()))
        });
        assert_eq!(
            handle.join(),
            Err(JobError::Failed { attempts: 3, message: "attempt 3".into() })
        );
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_recovers_from_transient_failure() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let handle = queue.submit(JobSpec::new().retries(3), move |ctx| {
            if ctx.attempt() < 3 {
                Err("transient".into())
            } else {
                Ok(ctx.attempt())
            }
        });
        assert_eq!(handle.join(), Ok(3));
    }

    #[test]
    fn panic_in_job_surfaces_as_error() {
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let handle = queue.submit(JobSpec::new(), |_| -> Result<(), String> {
            panic!("boom in job");
        });
        match handle.join() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom in job")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_blocks_further_attempts() {
        // A zero deadline is already elapsed by the first pre-attempt
        // check (monotonic time advances past it before any attempt can
        // start), so the job resolves DeadlineExceeded without the test
        // ever sleeping or racing a timer against job execution.
        let queue = JobQueue::on(Arc::new(Pool::new(1)));
        let attempts = Arc::new(AtomicU32::new(0));
        let attempts_in = Arc::clone(&attempts);
        let handle = queue.submit(
            JobSpec::new().retries(1000).deadline(Duration::ZERO),
            move |_| -> Result<(), String> {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                Err("keep retrying".into())
            },
        );
        assert_eq!(handle.join(), Err(JobError::DeadlineExceeded));
        // The deadline cut retries short of the configured budget.
        assert!(attempts.load(Ordering::SeqCst) <= 1);
    }

    #[test]
    fn cancellation_between_attempts_stops_the_job() {
        let queue = JobQueue::new();
        // Inline/global either way: cancel before the retry loop re-enters.
        let handle = queue.submit(JobSpec::new(), |_| Ok(1u8));
        // Already resolved (inline) or resolving; cancel after completion
        // must not clobber the published value.
        handle.cancel();
        assert!(matches!(handle.join(), Ok(1) | Err(JobError::Cancelled)));
    }
}
