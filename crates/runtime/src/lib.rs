//! sb-runtime: deterministic work-stealing executor for shrinkbench-rs.
//!
//! The crate provides three layers:
//!
//! 1. [`Pool`] — a work-stealing thread pool (per-worker deques plus a
//!    global injector, parked idle workers, panic capture/propagation)
//!    exposing [`Pool::scope`]/[`Scope::spawn`] for structured borrowing
//!    tasks and [`Pool::spawn`] for detached ones.
//! 2. [`parallel_for`] and the `map_*` helpers — data-parallel loops with
//!    **deterministic ordered reduction**: work is decomposed into chunks
//!    that depend only on the problem shape, per-chunk results are
//!    committed into submission-order slots, and reductions fold in chunk
//!    order, so output is bit-identical for any worker count (including 1,
//!    which runs the same decomposition inline).
//! 3. [`JobQueue`] — a job scheduler with per-job retry, deadline, and
//!    cancellation, used by `sb-core`'s experiment grid for resumable
//!    multi-cell runs.
//!
//! # Thread-count resolution
//!
//! [`effective_parallelism`] resolves, in priority order:
//! a process-wide programmatic override ([`set_thread_override`]) >
//! the `SB_RUNTIME_THREADS` environment variable (read once per process) >
//! [`std::thread::available_parallelism`]. A value of 1 short-circuits all
//! helpers to exact inline sequential execution — no pool is touched.
//!
//! # Determinism contract
//!
//! *Scheduling* is nondeterministic; *results* are not. Callers supply
//! pure per-chunk closures and chunk sizes derived only from the problem
//! shape; the runtime guarantees each task runs exactly once and that
//! results are observed in submission order. Under that contract, every
//! computation in this workspace produces byte-identical artifacts for
//! `SB_RUNTIME_THREADS=1` and `=N`, which `scripts/ci.sh` enforces by
//! running the suite under both.

#![warn(missing_docs)]

mod parallel;
mod pool;
mod queue;

pub use parallel::{for_each_chunk_mut, map_chunks, map_chunks_mut, map_items, parallel_for};
pub use pool::{Pool, Scope};
pub use queue::{Backoff, JobContext, JobError, JobHandle, JobQueue, JobSpec};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread-count override; 0 means "unset". A plain global
/// (not thread-local) so pool workers and the submitting thread agree.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the effective thread count for the whole process, taking
/// precedence over `SB_RUNTIME_THREADS`. `None` clears the override.
///
/// Intended for tests that compare runs at different thread counts within
/// one process. Because the runtime's results are bit-identical for any
/// worker count, concurrent tests racing on this global only change how
/// work is scheduled, never what is computed.
pub fn set_thread_override(threads: Option<usize>) {
    let v = match threads {
        Some(n) => {
            assert!(n > 0, "thread override must be positive");
            n
        }
        None => 0,
    };
    THREAD_OVERRIDE.store(v, Ordering::SeqCst);
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("SB_RUNTIME_THREADS").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "sb-runtime: ignoring invalid SB_RUNTIME_THREADS={raw:?} (want a positive integer)"
                );
                None
            }
        }
    })
}

/// The number of threads the runtime will use for parallel work:
/// programmatic override > `SB_RUNTIME_THREADS` > available parallelism.
///
/// When this returns 1, every helper in the crate runs inline on the
/// calling thread with no pool involvement at all.
pub fn effective_parallelism() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => {}
        n => return n,
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The lazily created process-wide pool backing the parallel helpers and
/// the default [`JobQueue`]. Sized once, at first parallel use, from
/// [`effective_parallelism`] (minimum 2 — a 1-thread resolution never
/// reaches the pool). Later override changes reuse the same pool: worker
/// count affects only scheduling, never results.
pub(crate) fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(effective_parallelism().max(2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_takes_precedence_and_clears() {
        set_thread_override(Some(3));
        assert_eq!(effective_parallelism(), 3);
        set_thread_override(None);
        assert!(effective_parallelism() >= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_override_is_rejected() {
        set_thread_override(Some(0));
    }
}
