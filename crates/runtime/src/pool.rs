//! The work-stealing thread pool: per-worker deques, a global injector,
//! parker-based idle workers, and scoped spawning with panic propagation.
//!
//! Deques are `Mutex<VecDeque>` rather than lock-free Chase–Lev buffers —
//! the workspace's stated design goal is auditability over peak speed, and
//! the tasks this pool runs (matmul row blocks, experiment cells) are
//! microseconds to minutes long, so queue overhead is never the
//! bottleneck. Workers pop their own deque LIFO (cache-warm), drain the
//! injector FIFO, and steal from other workers FIFO (oldest first), which
//! is the standard work-stealing discipline.
//!
//! Idle workers park on a generation-counted condvar (an eventcount):
//! every push bumps the generation under the lock and notifies, and a
//! worker only sleeps if the generation has not moved since it last found
//! the queues empty — so wakeups cannot be lost. A bounded `wait_timeout`
//! backstops the protocol.
//!
//! **Scheduling is intentionally nondeterministic; results are not.**
//! Callers that need determinism commit results by task index (see
//! [`crate::parallel`]), so which worker runs which task never matters.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
pub(crate) struct Shared {
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Eventcount generation: bumped under the lock on every push.
    signal: Mutex<u64>,
    signal_cv: Condvar,
    shutdown: AtomicBool,
    /// Panic messages from detached [`Pool::spawn`] tasks (scoped tasks
    /// propagate through the scope instead).
    detached_panics: Mutex<Vec<String>>,
}

thread_local! {
    /// Set for the lifetime of a worker thread: which pool it belongs to
    /// and its deque index, so spawns from inside a task go to the local
    /// deque instead of the shared injector.
    static WORKER: std::cell::RefCell<Option<(Weak<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// A work-stealing thread pool.
///
/// Dropping the pool shuts it down: workers finish their current task,
/// remaining *detached* tasks are discarded, and threads are joined.
/// Scoped tasks can never be discarded because [`Pool::scope`] does not
/// return until all of them have run.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.handles.len()).finish()
    }
}

impl Pool {
    /// Creates a pool with `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one worker");
        // Scheduling-class: whether a pool exists at all depends on the
        // thread count, so normalized traces drop this span.
        let _lifecycle = sb_trace::sched_span("pool-start");
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new(0),
            signal_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            detached_panics: Mutex::new(Vec::new()),
        });
        let handles = (0..threads)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sb-runtime-{idx}"))
                    .spawn(move || worker_main(shared, idx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a detached (fire-and-forget) task.
    ///
    /// A panic inside the task is captured, not propagated; retrieve
    /// captured messages with [`Pool::take_panics`]. For tasks whose
    /// completion or panics matter, use [`Pool::scope`] or a
    /// [`crate::JobQueue`] instead.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let shared = self.shared.clone();
        push(
            &self.shared,
            Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    shared
                        .detached_panics
                        .lock()
                        .unwrap()
                        .push(panic_message(payload.as_ref()));
                }
            }),
        );
    }

    /// Drains panic messages captured from detached tasks.
    pub fn take_panics(&self) -> Vec<String> {
        std::mem::take(&mut self.shared.detached_panics.lock().unwrap())
    }

    /// Runs `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// enclosing environment, and does not return until every spawned
    /// task has finished.
    ///
    /// While waiting, the calling thread *helps*: it executes pending
    /// pool tasks instead of blocking, so nested scopes (a task that
    /// itself calls `scope`) cannot deadlock even on a one-worker pool.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned task panics, the panic is re-raised here —
    /// after all spawned tasks have completed, so borrowed data is never
    /// left aliased. When several tasks panic, the first captured payload
    /// wins.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let scope = Scope {
            shared: self.shared.clone(),
            state: state.clone(),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Drain: help execute tasks rather than blocking, falling back to
        // a short parked wait when nothing is runnable (our tasks may be
        // in flight on other workers).
        let me = current_worker_index(&self.shared);
        while state.pending.load(Ordering::Acquire) > 0 {
            if let Some(task) = find_task(&self.shared, me) {
                task();
            } else {
                let guard = state.done.lock().unwrap();
                if state.pending.load(Ordering::Acquire) > 0 {
                    let _ = state
                        .done_cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }

        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = state.panic.lock().unwrap().take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let _lifecycle = sb_trace::sched_span("pool-shutdown");
        self.shared.shutdown.store(true, Ordering::Release);
        notify(&self.shared);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// Spawns tasks tied to an enclosing [`Pool::scope`] call; tasks may
/// borrow anything that outlives `'env`.
pub struct Scope<'env> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a task on the pool. The task may borrow from the
    /// environment; [`Pool::scope`] joins it before returning.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = self.state.clone();
        let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.done.lock().unwrap();
                state.done_cv.notify_all();
            }
        });
        // SAFETY: only the lifetime is erased. `Pool::scope` blocks until
        // `pending` reaches zero, and `pending` is decremented strictly
        // after the closure has returned, so the task (and everything it
        // borrows from `'env`) is done before `'env` can end.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapper)
        };
        push(&self.shared, task);
    }
}

fn worker_main(shared: Arc<Shared>, idx: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::downgrade(&shared), idx)));
    loop {
        // Snapshot the generation *before* scanning, so a push racing
        // with the scan is visible either in the queues or in the
        // generation check below.
        let gen = *shared.signal.lock().unwrap();
        if let Some(task) = find_task(&shared, Some(idx)) {
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.signal.lock().unwrap();
        if *guard == gen && !shared.shutdown.load(Ordering::Acquire) {
            sb_trace::count(sb_trace::CounterId::ParkEvents, 1);
            // Timeout is a backstop only; pushes notify the condvar.
            let _ = shared
                .signal_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
        }
    }
}

/// Pops the next runnable task: own deque (LIFO), injector (FIFO), then
/// steal from other workers (FIFO). `me` is the caller's worker index in
/// this pool, if it is one of its workers.
pub(crate) fn find_task(shared: &Shared, me: Option<usize>) -> Option<Task> {
    if let Some(i) = me {
        if let Some(task) = shared.deques[i].lock().unwrap().pop_back() {
            return Some(task);
        }
    }
    if let Some(task) = shared.injector.lock().unwrap().pop_front() {
        return Some(task);
    }
    let n = shared.deques.len();
    let start = me.map_or(0, |i| i + 1);
    for off in 0..n {
        let j = (start + off) % n;
        if me == Some(j) {
            continue;
        }
        if let Some(task) = shared.deques[j].lock().unwrap().pop_front() {
            sb_trace::count(sb_trace::CounterId::TasksStolen, 1);
            return Some(task);
        }
    }
    None
}

/// The calling thread's worker index, if it is a worker of this pool.
pub(crate) fn current_worker_index(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| {
        let borrow = w.borrow();
        let (weak, idx) = borrow.as_ref()?;
        let owner = weak.upgrade()?;
        Arc::ptr_eq(&owner, shared).then_some(*idx)
    })
}

/// Enqueues a task: onto the local deque when called from one of this
/// pool's workers, onto the injector otherwise; then wakes a sleeper.
pub(crate) fn push(shared: &Arc<Shared>, task: Task) {
    sb_trace::count(sb_trace::CounterId::TasksSpawned, 1);
    match current_worker_index(shared) {
        Some(idx) => shared.deques[idx].lock().unwrap().push_back(task),
        None => shared.injector.lock().unwrap().push_back(task),
    }
    notify(shared);
}

fn notify(shared: &Shared) {
    *shared.signal.lock().unwrap() += 1;
    shared.signal_cv.notify_all();
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_all_tasks() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_tasks_can_borrow_locals() {
        let pool = Pool::new(2);
        let mut slots = vec![0usize; 8];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i * 2);
            }
        });
        assert_eq!(slots, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
            });
        }));
        let message = panic_message(result.unwrap_err().as_ref());
        assert!(message.contains("task exploded"), "{message}");
    }

    #[test]
    fn panicking_task_does_not_leak_pending_work() {
        // Other tasks in the same scope still run to completion.
        let pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..50 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_on_one_worker() {
        let pool = Pool::new(1);
        let pool_ref = &pool;
        let counter = AtomicUsize::new(0);
        pool.scope(|outer| {
            outer.spawn(|| {
                // This runs *on the single worker*, which must help-run
                // the inner scope's tasks while waiting for them.
                pool_ref.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn detached_spawn_captures_panics() {
        // Event-driven synchronization: the panic record is pushed before
        // the panicking task's wrapper returns, and on a 1-worker pool the
        // injector is drained FIFO, so a second detached task signalling a
        // channel proves the first (and its record) completed. No sleeps,
        // no polling.
        let pool = Pool::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(|| panic!("detached boom"));
        pool.spawn(move || tx.send(()).unwrap());
        rx.recv().expect("sentinel task ran");
        let panics = pool.take_panics();
        assert_eq!(panics.len(), 1);
        assert!(panics[0].contains("detached boom"));
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new(4);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| std::thread::yield_now());
            }
        });
        drop(pool); // must not hang
    }
}
