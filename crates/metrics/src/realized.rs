//! Realized (wall-clock) performance profiling.
//!
//! [`crate::ModelProfile::theoretical_speedup`] counts MACs; this module
//! measures what a pruned model actually buys on the machine it runs on.
//! The paper (Section 6) stresses that the two routinely disagree —
//! unstructured sparsity that looks like 16× on paper may realize barely
//! 2× through a CSR kernel, while structured shrinking tracks theory
//! closely. [`RealizedProfile`] captures that gap as data.
//!
//! Measurement is closure-based so this crate stays independent of any
//! particular execution engine: callers (the `sb-infer` benches, the
//! experiment runner) pass "run the candidate once" / "run the dense
//! baseline once" thunks. Latency is the **median of k runs** after one
//! untimed warmup — the median is robust to scheduler noise and GC-free,
//! so repeated measurements are stable enough to assert on in tests.

use sb_json::json_struct;
use std::time::Instant;

/// Wall-clock latency of one thunk invocation, as the median of `k`
/// timed runs (after one untimed warmup), in microseconds.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn median_latency_us<F: FnMut()>(k: usize, f: &mut F) -> f64 {
    assert!(k > 0, "need at least one timed run");
    f(); // warmup: touch caches, fault pages, spin up worker threads
    let mut times: Vec<f64> = (0..k)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    }
}

/// Measured wall-clock profile of a compiled model against its dense
/// baseline: the realized counterpart of theoretical speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedProfile {
    /// Median candidate latency per invocation, microseconds.
    pub latency_us: f64,
    /// Median dense-baseline latency per invocation, microseconds.
    pub baseline_latency_us: f64,
    /// `baseline_latency_us / latency_us` — wall-clock speedup actually
    /// delivered (1.0 means pruning bought nothing at runtime).
    pub realized_speedup: f64,
    /// Bytes the candidate's compiled parameters occupy.
    pub storage_bytes: usize,
    /// Timed runs per median (`k`).
    pub samples: usize,
}

json_struct!(RealizedProfile {
    latency_us,
    baseline_latency_us,
    realized_speedup,
    storage_bytes,
    samples
});

impl RealizedProfile {
    /// Times `candidate` and `baseline` (median of `k` runs each, one
    /// warmup apiece) and derives the realized speedup.
    ///
    /// Both thunks should perform the *same logical work* (e.g. one
    /// forward pass over the same batch) for the ratio to mean anything.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn measure<C, B>(k: usize, storage_bytes: usize, candidate: C, baseline: B) -> Self
    where
        C: FnMut(),
        B: FnMut(),
    {
        let mut candidate = candidate;
        let mut baseline = baseline;
        let baseline_latency_us = median_latency_us(k, &mut baseline);
        let latency_us = median_latency_us(k, &mut candidate);
        RealizedProfile {
            latency_us,
            baseline_latency_us,
            realized_speedup: baseline_latency_us / latency_us.max(f64::MIN_POSITIVE),
            storage_bytes,
            samples: k,
        }
    }
}

/// One labeled point of a [`RealizedSweep`]: a candidate (usually an
/// execution format) measured against the sweep's shared baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedPoint {
    /// Candidate label (e.g. the format name: `"csr"`, `"bsr"`).
    pub label: String,
    /// The candidate's profile against the shared baseline.
    pub profile: RealizedProfile,
}

json_struct!(RealizedPoint { label, profile });

/// Several candidates measured against **one** shared baseline — the
/// shape of a format-crossover experiment. Measuring the baseline once
/// (instead of once per candidate) keeps the points comparable: every
/// realized-speedup ratio has the same denominator, so candidate A
/// beating candidate B on `realized_speedup` means A beat B on
/// wall-clock, not that the baseline was remeasured on a noisier
/// scheduler slice.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedSweep {
    /// Median shared-baseline latency per invocation, microseconds.
    pub baseline_latency_us: f64,
    /// Labeled candidate measurements, in insertion order.
    pub points: Vec<RealizedPoint>,
    /// Timed runs per median (`k`).
    pub samples: usize,
}

json_struct!(RealizedSweep {
    baseline_latency_us,
    points,
    samples
});

impl RealizedSweep {
    /// Times the shared `baseline` once (median of `k` runs), then each
    /// labeled candidate against it. `candidates` supplies
    /// `(label, storage_bytes, thunk)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn measure<B, C>(k: usize, baseline: B, candidates: Vec<(String, usize, C)>) -> Self
    where
        B: FnMut(),
        C: FnMut(),
    {
        let mut baseline = baseline;
        let baseline_latency_us = median_latency_us(k, &mut baseline);
        let points = candidates
            .into_iter()
            .map(|(label, storage_bytes, mut thunk)| {
                let latency_us = median_latency_us(k, &mut thunk);
                RealizedPoint {
                    label,
                    profile: RealizedProfile {
                        latency_us,
                        baseline_latency_us,
                        realized_speedup: baseline_latency_us
                            / latency_us.max(f64::MIN_POSITIVE),
                        storage_bytes,
                        samples: k,
                    },
                }
            })
            .collect();
        RealizedSweep {
            baseline_latency_us,
            points,
            samples: k,
        }
    }

    /// The point with the highest realized speedup (None when empty).
    pub fn best(&self) -> Option<&RealizedPoint> {
        self.points.iter().max_by(|a, b| {
            a.profile
                .realized_speedup
                .partial_cmp(&b.profile.realized_speedup)
                .expect("finite speedups")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0u32;
        let mut thunk = || {
            calls += 1;
            // Make the 3rd timed call (4th including warmup) slow.
            if calls == 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        };
        let med = median_latency_us(5, &mut thunk);
        assert_eq!(calls, 6, "one warmup plus five timed runs");
        assert!(med < 4000.0, "median {med}us should shrug off the outlier");
    }

    #[test]
    fn measure_reports_speedup_of_slower_baseline() {
        let profile = RealizedProfile::measure(
            3,
            1234,
            || {
                std::hint::black_box((0..100).sum::<u64>());
            },
            || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            },
        );
        assert!(profile.realized_speedup > 1.0);
        assert_eq!(profile.storage_bytes, 1234);
        assert_eq!(profile.samples, 3);
        let json = sb_json::to_string(&profile).unwrap();
        let back: RealizedProfile = sb_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn sweep_shares_one_baseline_across_points() {
        let sweep = RealizedSweep::measure(
            3,
            || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            },
            vec![
                (
                    "fast".to_string(),
                    10,
                    Box::new(|| {
                        std::hint::black_box((0..100).sum::<u64>());
                    }) as Box<dyn FnMut()>,
                ),
                (
                    "slow".to_string(),
                    20,
                    Box::new(|| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }),
                ),
            ],
        );
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert_eq!(
                p.profile.baseline_latency_us, sweep.baseline_latency_us,
                "every point shares the sweep baseline"
            );
        }
        assert_eq!(sweep.best().expect("points").label, "fast");
        let json = sb_json::to_string(&sweep).unwrap();
        let back: RealizedSweep = sb_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
    }
}
