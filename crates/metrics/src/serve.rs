//! Serving-latency profiles: tail percentiles, throughput, batching
//! occupancy, and load-shedding counts for one serving run.
//!
//! The offline metrics in this crate ([`crate::RealizedProfile`] and
//! friends) time a batch in isolation; a serving run adds queueing. The
//! numbers that matter there are distributional — the p99 a deadline is
//! set against, the fraction of offered load shed at the door — so
//! [`ServeProfile`] summarizes one run's **completed-request latency
//! distribution** plus its rejection ledger. It is deliberately built
//! from plain slices: `sb-serve` produces them, but anything can (the
//! crate dependency points that way, serve → metrics).
//!
//! Percentile convention: `p_q` = the smallest observed latency `x` such
//! that at least `q` of completed requests finished within `x`
//! (`sorted[ceil(q·n)] - 1`, the nearest-rank method). Exact, not
//! interpolated — on small runs an interpolated p999 manufactures
//! latencies nobody observed.

use sb_json::json_struct;

/// Load-shedding ledger for one serving run, by reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RejectCounts {
    /// Rejected at admission: bounded queue full (backpressure).
    pub queue_full: usize,
    /// Rejected because the request's deadline passed before execution.
    pub deadline_expired: usize,
    /// Cancelled by the client while queued.
    pub cancelled: usize,
    /// Refused because the server was draining.
    pub shutting_down: usize,
    /// Rejected at admission: the submitter's token-bucket quota was
    /// exhausted (multi-tenant rate limiting).
    pub quota_exceeded: usize,
    /// Resolved as failed: the batch carrying the request panicked or
    /// exhausted its retry budget.
    pub engine_failure: usize,
    /// Shed because the engine's circuit breaker was open and no
    /// fallback engine was configured.
    pub circuit_open: usize,
}

json_struct!(RejectCounts {
    queue_full,
    deadline_expired,
    cancelled,
    shutting_down;
    quota_exceeded,
    engine_failure,
    circuit_open
});

impl RejectCounts {
    /// Total requests refused, all reasons.
    pub fn total(&self) -> usize {
        self.queue_full
            + self.deadline_expired
            + self.cancelled
            + self.shutting_down
            + self.quota_exceeded
            + self.engine_failure
            + self.circuit_open
    }
}

/// Nearest-rank percentile over an **ascending-sorted** slice: the
/// smallest element with at least `q·len` elements at or below it.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `(0, 1]`.
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty distribution");
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary of one serving run: what completed, how fast (tail
/// percentiles), in what batches, and what was shed.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeProfile {
    /// Requests offered (completed + rejected).
    pub requests: usize,
    /// Requests that executed and returned a prediction.
    pub completed: usize,
    /// Of `completed`, how many were served by a degraded-mode fallback
    /// engine (circuit breaker open on the primary).
    pub completed_fallback: usize,
    /// The shed-load ledger.
    pub rejected: RejectCounts,
    /// Completed requests per second of horizon.
    pub throughput_rps: f64,
    /// Mean completed-request latency, µs.
    pub mean_latency_us: f64,
    /// Median completed-request latency, µs.
    pub p50_us: u64,
    /// 90th-percentile completed-request latency, µs.
    pub p90_us: u64,
    /// 99th-percentile completed-request latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile completed-request latency, µs.
    pub p999_us: u64,
    /// Batches executed.
    pub batches: usize,
    /// Mean samples per executed batch.
    pub mean_batch: f64,
    /// Distinct batch sizes observed, ascending (parallel to
    /// `batch_count`).
    pub batch_size: Vec<usize>,
    /// Batches executed at each size in `batch_size`.
    pub batch_count: Vec<u64>,
    /// Offered-load window the run covered, µs.
    pub horizon_us: u64,
}

json_struct!(serialize_only ServeProfile {
    requests,
    completed,
    completed_fallback,
    rejected,
    throughput_rps,
    mean_latency_us,
    p50_us,
    p90_us,
    p99_us,
    p999_us,
    batches,
    mean_batch,
    batch_size,
    batch_count,
    horizon_us
});

impl ServeProfile {
    /// Builds the profile from per-completed-request observations:
    /// `completed` holds `(latency_us, batch_size)` for every request
    /// that executed (its batch's size alongside its own latency), and
    /// `rejected` the shed-load ledger. With zero completions the
    /// percentiles and means are 0.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_us` is zero or a batch size is zero.
    pub fn measure(completed: &[(u64, usize)], rejected: RejectCounts, horizon_us: u64) -> Self {
        assert!(horizon_us > 0, "horizon must be positive");
        let mut latencies: Vec<u64> = completed.iter().map(|&(l, _)| l).collect();
        latencies.sort_unstable();

        // A batch of size s contributes s request observations; divide
        // back out to count batches exactly.
        let mut size_requests: Vec<(usize, u64)> = Vec::new();
        for &(_, s) in completed {
            assert!(s > 0, "batch size must be positive");
            match size_requests.binary_search_by_key(&s, |&(size, _)| size) {
                Ok(i) => size_requests[i].1 += 1,
                Err(i) => size_requests.insert(i, (s, 1)),
            }
        }
        let batch_size: Vec<usize> = size_requests.iter().map(|&(s, _)| s).collect();
        let batch_count: Vec<u64> = size_requests
            .iter()
            .map(|&(s, n)| {
                debug_assert_eq!(n % s as u64, 0, "requests at size {s} divide evenly");
                n / s as u64
            })
            .collect();
        let batches: u64 = batch_count.iter().sum();

        let n = latencies.len();
        let pct = |q: f64| if n == 0 { 0 } else { percentile_us(&latencies, q) };
        ServeProfile {
            requests: completed.len() + rejected.total(),
            completed: n,
            completed_fallback: 0,
            rejected,
            throughput_rps: n as f64 / (horizon_us as f64 / 1.0e6),
            mean_latency_us: if n == 0 {
                0.0
            } else {
                latencies.iter().sum::<u64>() as f64 / n as f64
            },
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            batches: batches as usize,
            mean_batch: if batches == 0 {
                0.0
            } else {
                n as f64 / batches as f64
            },
            batch_size,
            batch_count,
            horizon_us,
        }
    }

    /// Records how many of the completed requests were served by the
    /// degraded-mode fallback engine (provenance from the ledger).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the completed count.
    pub fn with_fallback_count(mut self, n: usize) -> Self {
        assert!(n <= self.completed, "fallback count exceeds completions");
        self.completed_fallback = n;
        self
    }

    /// Fraction of offered requests that were refused, in `[0, 1]`.
    pub fn rejection_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.rejected.total() as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50);
        assert_eq!(percentile_us(&sorted, 0.90), 90);
        assert_eq!(percentile_us(&sorted, 0.99), 99);
        assert_eq!(percentile_us(&sorted, 0.999), 100);
        assert_eq!(percentile_us(&[7], 0.5), 7);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.001, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile_us(&[42], q), 42, "q={q}");
        }
    }

    #[test]
    fn all_equal_distribution_is_flat() {
        let sorted = [250u64; 17];
        for q in [0.001, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile_us(&sorted, q), 250, "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn empty_distribution_panics() {
        percentile_us(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn zero_quantile_panics() {
        percentile_us(&[1, 2, 3], 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn overshooting_quantile_panics() {
        percentile_us(&[1, 2, 3], 1.5);
    }

    #[test]
    fn profile_counts_batches_from_request_observations() {
        // Two batches of 4 and one of 2: ten completed requests.
        let completed: Vec<(u64, usize)> = (0..10)
            .map(|i| (100 + i as u64 * 10, if i < 8 { 4 } else { 2 }))
            .collect();
        let rejected = RejectCounts {
            queue_full: 3,
            deadline_expired: 1,
            ..RejectCounts::default()
        };
        let p = ServeProfile::measure(&completed, rejected, 1_000_000);
        assert_eq!(p.requests, 14);
        assert_eq!(p.completed, 10);
        assert_eq!(p.batches, 3);
        assert_eq!(p.batch_size, vec![2, 4]);
        assert_eq!(p.batch_count, vec![1, 2]);
        assert!((p.mean_batch - 10.0 / 3.0).abs() < 1e-12);
        assert!((p.throughput_rps - 10.0).abs() < 1e-12);
        assert_eq!(p.p50_us, 140);
        assert_eq!(p.p999_us, 190);
        assert!((p.rejection_rate() - 4.0 / 14.0).abs() < 1e-12);
        let json = sb_json::to_string(&p).expect("serialize");
        assert!(json.contains("\"queue_full\":3"));
    }

    #[test]
    fn empty_run_profiles_as_zeros() {
        let p = ServeProfile::measure(&[], RejectCounts::default(), 1_000);
        assert_eq!(p.completed, 0);
        assert_eq!(p.p99_us, 0);
        assert_eq!(p.batches, 0);
        assert_eq!(p.mean_batch, 0.0);
        assert_eq!(p.rejection_rate(), 0.0);
    }

    #[test]
    fn zero_completion_run_with_sheds_stays_finite() {
        // Everything offered was shed: the percentiles must come out 0
        // (not panic through percentile_us) and the rates finite.
        let rejected = RejectCounts {
            queue_full: 5,
            deadline_expired: 2,
            ..RejectCounts::default()
        };
        let p = ServeProfile::measure(&[], rejected, 10_000);
        assert_eq!(p.requests, 7);
        assert_eq!(p.completed, 0);
        assert_eq!(p.p50_us, 0);
        assert_eq!(p.p999_us, 0);
        assert_eq!(p.mean_latency_us, 0.0);
        assert_eq!(p.throughput_rps, 0.0);
        assert_eq!(p.rejection_rate(), 1.0);
        assert!(p.batch_size.is_empty());
        let json = sb_json::to_string(&p).expect("serialize");
        assert!(json.contains("\"completed\":0"));
    }
}
