//! Central-tendency aggregation across random seeds.
//!
//! The paper finds that only one out of 81 papers reports any measure of
//! central tendency (Figure 3's caption); this module makes mean ± sample
//! standard deviation the default shape of every reported number.

use sb_json::json_struct;

/// A mean with its sample standard deviation and sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator); 0 for `n = 1`.
    pub std: f64,
    /// Number of samples aggregated.
    pub n: usize,
}

json_struct!(MeanStd { mean, std, n });

impl MeanStd {
    /// Formats as `mean ± std` with the given precision.
    pub fn to_pm_string(&self, precision: usize) -> String {
        format!("{:.p$} ± {:.p$}", self.mean, self.std, p = precision)
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_pm_string(4))
    }
}

/// Computes mean and sample standard deviation.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean_std(values: &[f64]) -> MeanStd {
    assert!(!values.is_empty(), "mean_std of empty slice");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n > 1 {
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    } else {
        0.0
    };
    MeanStd { mean, std, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_has_zero_std() {
        let m = mean_std(&[3.5]);
        assert_eq!(m.mean, 3.5);
        assert_eq!(m.std, 0.0);
        assert_eq!(m.n, 1);
    }

    #[test]
    fn known_values() {
        let m = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic example is ~2.138.
        assert!((m.std - 2.1380899).abs() < 1e-4);
    }

    #[test]
    fn constant_series_has_zero_std() {
        let m = mean_std(&[1.0; 10]);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn display_formats_pm() {
        let m = mean_std(&[1.0, 2.0]);
        assert_eq!(m.to_pm_string(1), "1.5 ± 0.7");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        mean_std(&[]);
    }
}
