//! The paper's Section 5.2, as executable code: the *competing*
//! definitions of "Pruned%", "compression ratio", "speedup", and "FLOPs"
//! found across the literature, so the same pruned model can be reported
//! under every convention side by side.
//!
//! The paper documents that "Pruned%" sometimes means the fraction
//! *remaining* and sometimes the fraction *removed*; that "compression
//! ratio" is used both as `original/compressed` and `1 − compressed/original`;
//! and that FLOP counts for the same architecture differ by up to 4×
//! between papers (371 MFLOPs vs 724 MFLOPs vs 1500 MFLOPs for AlexNet).
//! This module reproduces those discrepancies mechanically.

use crate::profile::ModelProfile;
use sb_json::{json_enum, json_struct};

/// The ways the literature reports model-size reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeConvention {
    /// `original / compressed` — the compression-literature definition
    /// the paper endorses (Section 6).
    RatioOriginalOverCompressed,
    /// `1 − compressed/original` — widespread misuse of "compression
    /// ratio" (Section 5.2).
    FractionRemoved,
    /// `compressed / original` — "Pruned%" meaning fraction *remaining*
    /// (e.g. Suau et al. 2018).
    FractionRemaining,
}

json_enum!(SizeConvention {
    RatioOriginalOverCompressed,
    FractionRemoved,
    FractionRemaining,
});

impl SizeConvention {
    /// Evaluates the convention on a profile.
    pub fn evaluate(&self, profile: &ModelProfile) -> f64 {
        let remaining = profile.effective_params() as f64 / profile.total_params().max(1) as f64;
        match self {
            SizeConvention::RatioOriginalOverCompressed => 1.0 / remaining.max(f64::MIN_POSITIVE),
            SizeConvention::FractionRemoved => 1.0 - remaining,
            SizeConvention::FractionRemaining => remaining,
        }
    }

    /// All conventions, for sweep reports.
    pub const ALL: [SizeConvention; 3] = [
        SizeConvention::RatioOriginalOverCompressed,
        SizeConvention::FractionRemoved,
        SizeConvention::FractionRemaining,
    ];
}

/// The ways the literature counts "FLOPs" (Section 5.2 found a factor of
/// four between papers for the same architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlopConvention {
    /// One multiply-add = one FLOP, convolutions and linear layers
    /// (this crate's primary definition).
    MultiplyAdds,
    /// Multiplies and adds counted separately: 2 × multiply-adds.
    MultiplyAndAddSeparately,
    /// Convolutions only — papers motivated by conv-heavy vision models
    /// often omit the fully-connected layers.
    ConvolutionsOnly,
    /// Convolutions only, multiplies and adds separate: the combination
    /// producing the largest spread vs [`FlopConvention::MultiplyAdds`]
    /// on FC-heavy models.
    ConvolutionsOnlyDoubled,
}

json_enum!(FlopConvention {
    MultiplyAdds,
    MultiplyAndAddSeparately,
    ConvolutionsOnly,
    ConvolutionsOnlyDoubled,
});

impl FlopConvention {
    /// Dense FLOPs of a profile under this convention.
    pub fn dense_flops(&self, profile: &ModelProfile) -> f64 {
        let conv: f64 = profile
            .ops
            .iter()
            .filter(|o| is_conv(&o.weight_name))
            .map(|o| o.dense_macs as f64)
            .sum();
        let all: f64 = profile.ops.iter().map(|o| o.dense_macs as f64).sum();
        match self {
            FlopConvention::MultiplyAdds => all,
            FlopConvention::MultiplyAndAddSeparately => 2.0 * all,
            FlopConvention::ConvolutionsOnly => conv,
            FlopConvention::ConvolutionsOnlyDoubled => 2.0 * conv,
        }
    }

    /// Effective (sparsity-scaled) FLOPs under this convention.
    pub fn effective_flops(&self, profile: &ModelProfile) -> f64 {
        let conv: f64 = profile
            .ops
            .iter()
            .filter(|o| is_conv(&o.weight_name))
            .map(|o| o.effective_macs)
            .sum();
        let all: f64 = profile.ops.iter().map(|o| o.effective_macs).sum();
        match self {
            FlopConvention::MultiplyAdds => all,
            FlopConvention::MultiplyAndAddSeparately => 2.0 * all,
            FlopConvention::ConvolutionsOnly => conv,
            FlopConvention::ConvolutionsOnlyDoubled => 2.0 * conv,
        }
    }

    /// Theoretical speedup under this convention.
    pub fn speedup(&self, profile: &ModelProfile) -> f64 {
        self.dense_flops(profile) / self.effective_flops(profile).max(1.0)
    }

    /// All conventions, for sweep reports.
    pub const ALL: [FlopConvention; 4] = [
        FlopConvention::MultiplyAdds,
        FlopConvention::MultiplyAndAddSeparately,
        FlopConvention::ConvolutionsOnly,
        FlopConvention::ConvolutionsOnlyDoubled,
    ];
}

fn is_conv(weight_name: &str) -> bool {
    weight_name.contains("conv") || weight_name.contains("stem") || weight_name.contains("shortcut")
}

/// The same model reported under every convention — one row per
/// convention pair, demonstrating how incomparable the raw numbers are.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbiguityReport {
    /// (convention name, reported "compression" value).
    pub size_rows: Vec<(String, f64)>,
    /// (convention name, dense FLOPs, reported "speedup").
    pub flop_rows: Vec<(String, f64, f64)>,
    /// Largest dense-FLOP count divided by smallest across conventions.
    pub flop_spread: f64,
}

json_struct!(AmbiguityReport { size_rows, flop_rows, flop_spread });

/// Builds the ambiguity report for a (typically pruned) model profile.
pub fn ambiguity_report(profile: &ModelProfile) -> AmbiguityReport {
    let size_rows = SizeConvention::ALL
        .iter()
        .map(|c| (format!("{c:?}"), c.evaluate(profile)))
        .collect();
    let flop_rows: Vec<(String, f64, f64)> = FlopConvention::ALL
        .iter()
        .map(|c| (format!("{c:?}"), c.dense_flops(profile), c.speedup(profile)))
        .collect();
    let dense: Vec<f64> = flop_rows.iter().map(|r| r.1).filter(|&v| v > 0.0).collect();
    let spread = if dense.is_empty() {
        1.0
    } else {
        dense.iter().copied().fold(f64::MIN, f64::max)
            / dense.iter().copied().fold(f64::MAX, f64::min)
    };
    AmbiguityReport {
        size_rows,
        flop_rows,
        flop_spread: spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_nn::{models, Network};
    use sb_tensor::{Rng, Tensor};

    fn half_pruned_lenet() -> impl Network {
        let mut rng = Rng::seed_from(0);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        net.visit_params(&mut |p| {
            if p.kind().prunable_by_default() {
                p.set_mask(Tensor::from_fn(p.value().dims(), |i| (i % 2) as f32));
            }
        });
        net
    }

    #[test]
    fn size_conventions_disagree_on_the_same_model() {
        let net = half_pruned_lenet();
        let profile = ModelProfile::measure(&net);
        let ratio = SizeConvention::RatioOriginalOverCompressed.evaluate(&profile);
        let removed = SizeConvention::FractionRemoved.evaluate(&profile);
        let remaining = SizeConvention::FractionRemaining.evaluate(&profile);
        assert!(ratio > 1.5 && ratio < 2.5);
        assert!((removed + remaining - 1.0).abs() < 1e-12);
        // The same model "is" 1.97×, 0.49, and 0.51 depending on the paper.
        assert!((ratio - 1.0 / remaining).abs() < 1e-9);
    }

    #[test]
    fn flop_conventions_span_a_wide_range() {
        // LeNet-5 is FC-heavy, so conv-only vs doubled-all spans ~>2×,
        // mirroring the paper's observed 4× spread on AlexNet.
        let net = half_pruned_lenet();
        let profile = ModelProfile::measure(&net);
        let report = ambiguity_report(&profile);
        assert!(report.flop_spread > 2.0, "spread {}", report.flop_spread);
        assert_eq!(report.flop_rows.len(), 4);
        assert_eq!(report.size_rows.len(), 3);
    }

    #[test]
    fn primary_convention_matches_profile_methods() {
        let net = half_pruned_lenet();
        let profile = ModelProfile::measure(&net);
        assert_eq!(
            FlopConvention::MultiplyAdds.dense_flops(&profile),
            profile.dense_macs() as f64
        );
        assert!(
            (FlopConvention::MultiplyAdds.speedup(&profile) - profile.theoretical_speedup()).abs()
                < 1e-9
        );
        assert!(
            (SizeConvention::RatioOriginalOverCompressed.evaluate(&profile)
                - profile.compression_ratio())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn doubling_never_changes_speedup() {
        // Counting multiplies and adds separately scales both numerator
        // and denominator: the *ratio* is invariant — which is why the
        // paper's recommended metrics are ratios.
        let net = half_pruned_lenet();
        let profile = ModelProfile::measure(&net);
        let a = FlopConvention::MultiplyAdds.speedup(&profile);
        let b = FlopConvention::MultiplyAndAddSeparately.speedup(&profile);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn conv_only_speedup_differs_from_full_speedup() {
        let net = half_pruned_lenet();
        let profile = ModelProfile::measure(&net);
        let full = FlopConvention::MultiplyAdds.dense_flops(&profile);
        let conv = FlopConvention::ConvolutionsOnly.dense_flops(&profile);
        assert!(conv < full);
    }
}
