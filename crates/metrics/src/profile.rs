//! Structural profiling of a network: parameter counts and MAC counts,
//! sparsity-aware.

use sb_json::json_struct;
use sb_nn::{Network, ParamKind};
use std::collections::HashMap;

/// Per-parameter size accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamProfile {
    /// Parameter name.
    pub name: String,
    /// The parameter's role in its layer.
    pub kind: ParamKind,
    /// Total scalar count.
    pub numel: usize,
    /// Count of entries kept by the mask (equals `numel` when unmasked).
    pub effective: usize,
    /// Whether the parameter is a pruning candidate by kind.
    pub prunable: bool,
}

json_struct!(ParamProfile { name, kind, numel, effective, prunable });

/// Per-operation compute accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Name of the weight tensor driving this op.
    pub weight_name: String,
    /// Multiply-adds per sample at full density.
    pub dense_macs: u64,
    /// Multiply-adds per sample after scaling by the weight's nonzero
    /// fraction.
    pub effective_macs: f64,
}

json_struct!(OpProfile { weight_name, dense_macs, effective_macs });

/// A sparsity-aware structural snapshot of a network.
///
/// # Example
///
/// ```
/// use sb_metrics::ModelProfile;
/// use sb_nn::models;
/// use sb_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let net = models::lenet_300_100(256, 10, &mut rng);
/// let profile = ModelProfile::measure(&net);
/// assert_eq!(profile.compression_ratio(), 1.0); // dense model
/// assert_eq!(profile.theoretical_speedup(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// One entry per parameter tensor, in visitation order.
    pub params: Vec<ParamProfile>,
    /// One entry per conv/linear op, in execution order.
    pub ops: Vec<OpProfile>,
}

json_struct!(ModelProfile { params, ops });

impl ModelProfile {
    /// Profiles `network` as it currently stands (masks included).
    pub fn measure(network: &dyn Network) -> Self {
        let mut params = Vec::new();
        let mut nnz_fraction: HashMap<String, f64> = HashMap::new();
        network.visit_params_ref(&mut |p| {
            if !p.kind().counts_as_parameter() {
                return; // batch-norm running state is not a parameter
            }
            let effective = p.effective_params();
            nnz_fraction.insert(
                p.name().to_string(),
                if p.numel() == 0 {
                    1.0
                } else {
                    effective as f64 / p.numel() as f64
                },
            );
            params.push(ParamProfile {
                name: p.name().to_string(),
                kind: p.kind(),
                numel: p.numel(),
                effective,
                prunable: p.kind().prunable_by_default(),
            });
        });
        let ops = network
            .ops()
            .into_iter()
            .map(|op| {
                let dense = op.dense_macs();
                let q = nnz_fraction.get(op.weight_name()).copied().unwrap_or(1.0);
                OpProfile {
                    weight_name: op.weight_name().to_string(),
                    dense_macs: dense,
                    effective_macs: dense as f64 * q,
                }
            })
            .collect();
        ModelProfile { params, ops }
    }

    /// Total parameter count (dense).
    pub fn total_params(&self) -> usize {
        self.params.iter().map(|p| p.numel).sum()
    }

    /// Nonzero parameter count after masking.
    pub fn effective_params(&self) -> usize {
        self.params.iter().map(|p| p.effective).sum()
    }

    /// Parameter count of prunable tensors only.
    pub fn prunable_params(&self) -> usize {
        self.params.iter().filter(|p| p.prunable).map(|p| p.numel).sum()
    }

    /// Compression ratio: `total / effective` (paper Section 6 definition:
    /// original size over new size; ≥ 1, with 1 meaning dense).
    ///
    /// # Panics
    ///
    /// Panics if the model has no parameters.
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total_params();
        assert!(total > 0, "model has no parameters");
        total as f64 / (self.effective_params().max(1)) as f64
    }

    /// Fraction of parameters pruned, `1 − effective/total` — the *other*
    /// common reporting convention (Section 5.2 notes the two are widely
    /// confused; both are exposed here so harness code never re-derives
    /// them inconsistently).
    pub fn fraction_pruned(&self) -> f64 {
        1.0 - self.effective_params() as f64 / self.total_params().max(1) as f64
    }

    /// Dense multiply-adds per sample.
    pub fn dense_macs(&self) -> u64 {
        self.ops.iter().map(|o| o.dense_macs).sum()
    }

    /// Effective multiply-adds per sample, scaling each op by its weight's
    /// nonzero fraction.
    pub fn effective_macs(&self) -> f64 {
        self.ops.iter().map(|o| o.effective_macs).sum()
    }

    /// Theoretical speedup: dense MACs / effective MACs (paper Section 6
    /// definition; ≥ 1 for pruned models).
    ///
    /// # Panics
    ///
    /// Panics if the model has no conv/linear ops.
    pub fn theoretical_speedup(&self) -> f64 {
        let dense = self.dense_macs();
        assert!(dense > 0, "model has no multiply-add-bearing ops");
        dense as f64 / self.effective_macs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_nn::{models, Network};
    use sb_tensor::{Rng, Tensor};

    fn masked_lenet(keep_every: usize) -> impl Network {
        let mut rng = Rng::seed_from(0);
        let mut net = models::lenet_300_100(64, 10, &mut rng);
        net.visit_params(&mut |p| {
            if p.kind().prunable_by_default() {
                let mask = Tensor::from_fn(p.value().dims(), |i| {
                    if i % keep_every == 0 {
                        1.0
                    } else {
                        0.0
                    }
                });
                p.set_mask(mask);
            }
        });
        net
    }

    #[test]
    fn dense_model_has_unit_ratios() {
        let mut rng = Rng::seed_from(0);
        let net = models::lenet5(1, 16, 10, &mut rng);
        let p = ModelProfile::measure(&net);
        assert_eq!(p.compression_ratio(), 1.0);
        assert_eq!(p.theoretical_speedup(), 1.0);
        assert_eq!(p.fraction_pruned(), 0.0);
    }

    #[test]
    fn masking_half_roughly_doubles_compression() {
        let net = masked_lenet(2);
        let p = ModelProfile::measure(&net);
        // Biases stay dense, so compression is slightly under 2.
        assert!(p.compression_ratio() > 1.8 && p.compression_ratio() < 2.0);
        assert!(p.theoretical_speedup() > 1.8);
    }

    #[test]
    fn compression_counts_unprunable_params() {
        let net = masked_lenet(1_000_000); // prune essentially everything
        let p = ModelProfile::measure(&net);
        // Effective params are (almost) only the dense biases plus one
        // weight entry per tensor.
        let biases: usize = p
            .params
            .iter()
            .filter(|q| !q.prunable)
            .map(|q| q.numel)
            .sum();
        assert!(p.effective_params() >= biases);
        assert!(p.effective_params() <= biases + p.params.len());
    }

    #[test]
    fn speedup_weights_convs_by_spatial_extent() {
        // Pruning an early (spatially large) conv should yield more
        // speedup than the same parameter count from a linear layer —
        // this is the Figure 6 phenomenon (compression and speedup are
        // not interchangeable).
        let mut rng = Rng::seed_from(1);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        // Prune conv1 completely.
        net.visit_params(&mut |p| {
            if p.name() == "conv1.weight" {
                p.set_mask(Tensor::zeros(p.value().dims()));
            }
        });
        let p_conv = ModelProfile::measure(&net);

        let mut rng = Rng::seed_from(1);
        let mut net2 = models::lenet5(1, 16, 10, &mut rng);
        // Prune the same *number of parameters* out of fc1.
        let conv1_numel = 6 * 25;
        net2.visit_params(&mut |p| {
            if p.name() == "fc1.weight" {
                let mask = Tensor::from_fn(p.value().dims(), |i| {
                    if i < conv1_numel {
                        0.0
                    } else {
                        1.0
                    }
                });
                p.set_mask(mask);
            }
        });
        let p_fc = ModelProfile::measure(&net2);

        assert!(
            (p_conv.compression_ratio() - p_fc.compression_ratio()).abs() < 1e-9,
            "same compression by construction"
        );
        assert!(
            p_conv.theoretical_speedup() > p_fc.theoretical_speedup() * 1.1,
            "conv pruning speedup {} should dominate fc pruning speedup {}",
            p_conv.theoretical_speedup(),
            p_fc.theoretical_speedup()
        );
    }

    #[test]
    fn profile_is_serializable() {
        let net = masked_lenet(4);
        let p = ModelProfile::measure(&net);
        let json = sb_json::to_string(&p).unwrap();
        let back: ModelProfile = sb_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn fraction_pruned_complements_compression() {
        let net = masked_lenet(4);
        let p = ModelProfile::measure(&net);
        let from_ratio = 1.0 - 1.0 / p.compression_ratio();
        assert!((p.fraction_pruned() - from_ratio).abs() < 1e-12);
    }
}
