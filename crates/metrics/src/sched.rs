//! Multi-tenant scheduling profiles: per-tenant serving distributions
//! plus the WFQ fairness ledger.
//!
//! [`crate::ServeProfile`] summarizes one model's run; a multi-model
//! scheduler adds the question *who got the pool*. [`SchedProfile`]
//! answers it in the same deliberately-plain-slices style: per tenant, a
//! [`ServeProfile`] over that tenant's completions, the batch-window
//! occupancy, and the served-**cost** share next to the tenant's ideal
//! WFQ weight share. Fairness error is the signed gap between the two —
//! under saturation an ideal weighted-fair scheduler drives it to zero,
//! so the number is directly assertable in tests and figures.

use crate::serve::{RejectCounts, ServeProfile};
use sb_json::{json_struct, Json, ToJson};

/// One tenant's raw observations for [`SchedProfile::measure`].
#[derive(Debug, Clone, Copy)]
pub struct TenantObs<'a> {
    /// Tenant name (report label).
    pub name: &'a str,
    /// WFQ weight the scheduler was configured with.
    pub weight: u64,
    /// Priority-class label (e.g. `"interactive"`, `"batch"`).
    pub priority: &'a str,
    /// The tenant's `max_batch` (denominator of occupancy).
    pub max_batch: usize,
    /// The tenant's admission quota as `(rate_per_s, burst)`, `None`
    /// when admission is bounded by the queue cap alone.
    pub quota: Option<(u64, u64)>,
    /// `(latency_us, batch_size)` per completed request.
    pub completed: &'a [(u64, usize)],
    /// Of `completed`, how many were served by the tenant's
    /// degraded-mode fallback engine (breaker open on the primary).
    pub completed_fallback: usize,
    /// The tenant's shed ledger (includes `quota_exceeded` sheds).
    pub rejected: RejectCounts,
    /// Total virtual cost (µs) of batches launched for this tenant.
    pub served_cost_us: u64,
}

/// One tenant's summarized share of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Tenant name.
    pub name: String,
    /// Configured WFQ weight.
    pub weight: u64,
    /// Priority-class label.
    pub priority: String,
    /// Sustained admission-quota rate (requests/s); `None` = unlimited.
    pub quota_rate_per_s: Option<u64>,
    /// Admission-quota burst allowance; `None` = unlimited.
    pub quota_burst: Option<u64>,
    /// The tenant's own serving distribution (latency percentiles,
    /// throughput, batches, shed ledger).
    pub serve: ServeProfile,
    /// Mean batch fill over the tenant's `max_batch`, in `[0, 1]`.
    pub occupancy: f64,
    /// Total virtual cost (µs) served for this tenant.
    pub served_cost_us: u64,
    /// This tenant's fraction of all served cost, in `[0, 1]`.
    pub cost_share: f64,
    /// This tenant's fraction of total weight, in `[0, 1]` — the ideal
    /// WFQ share when every tenant is backlogged.
    pub weight_share: f64,
    /// `cost_share - weight_share`: positive means the tenant got more
    /// of the pool than its weight entitles it to.
    pub fairness_error: f64,
}

json_struct!(serialize_only TenantProfile {
    name,
    weight,
    priority,
    quota_rate_per_s,
    quota_burst,
    serve,
    occupancy,
    served_cost_us,
    cost_share,
    weight_share,
    fairness_error
});

/// Summary of one multi-tenant scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedProfile {
    /// Per-tenant profiles, scheduler tenant order.
    pub tenants: Vec<TenantProfile>,
    /// Offered-load window the run covered, µs.
    pub horizon_us: u64,
    /// Total virtual cost served across tenants, µs.
    pub total_served_cost_us: u64,
    /// Largest `|fairness_error|` across tenants — the one-number WFQ
    /// health check.
    pub max_abs_fairness_error: f64,
}

impl ToJson for SchedProfile {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "tenants".to_string(),
                Json::Arr(self.tenants.iter().map(ToJson::to_json).collect()),
            ),
            ("horizon_us".to_string(), Json::Int(self.horizon_us as i128)),
            (
                "total_served_cost_us".to_string(),
                Json::Int(self.total_served_cost_us as i128),
            ),
            (
                "max_abs_fairness_error".to_string(),
                Json::Float(self.max_abs_fairness_error),
            ),
        ])
    }
}

impl SchedProfile {
    /// Builds the profile from per-tenant observations.
    ///
    /// With zero total served cost every `cost_share` is 0 (there was no
    /// pool time to divide); weight shares are always over all tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, `horizon_us` is zero, a weight is
    /// zero, or a `max_batch` is zero.
    pub fn measure(tenants: &[TenantObs], horizon_us: u64) -> Self {
        assert!(!tenants.is_empty(), "profile of zero tenants");
        assert!(horizon_us > 0, "horizon must be positive");
        let total_weight: u64 = tenants.iter().map(|t| t.weight).sum();
        let total_cost: u64 = tenants.iter().map(|t| t.served_cost_us).sum();
        let profiles: Vec<TenantProfile> = tenants
            .iter()
            .map(|t| {
                assert!(t.weight > 0, "tenant {:?}: weight must be positive", t.name);
                assert!(
                    t.max_batch > 0,
                    "tenant {:?}: max_batch must be positive",
                    t.name
                );
                let serve = ServeProfile::measure(t.completed, t.rejected, horizon_us)
                    .with_fallback_count(t.completed_fallback);
                let occupancy = serve.mean_batch / t.max_batch as f64;
                let cost_share = if total_cost == 0 {
                    0.0
                } else {
                    t.served_cost_us as f64 / total_cost as f64
                };
                let weight_share = t.weight as f64 / total_weight as f64;
                TenantProfile {
                    name: t.name.to_string(),
                    weight: t.weight,
                    priority: t.priority.to_string(),
                    quota_rate_per_s: t.quota.map(|(rate, _)| rate),
                    quota_burst: t.quota.map(|(_, burst)| burst),
                    serve,
                    occupancy,
                    served_cost_us: t.served_cost_us,
                    cost_share,
                    weight_share,
                    fairness_error: cost_share - weight_share,
                }
            })
            .collect();
        let max_abs_fairness_error = profiles
            .iter()
            .map(|p| p.fairness_error.abs())
            .fold(0.0f64, f64::max);
        SchedProfile {
            tenants: profiles,
            horizon_us,
            total_served_cost_us: total_cost,
            max_abs_fairness_error,
        }
    }

    /// The tenant profile by name, if present.
    pub fn tenant(&self, name: &str) -> Option<&TenantProfile> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(
        name: &'a str,
        weight: u64,
        completed: &'a [(u64, usize)],
        served_cost_us: u64,
    ) -> TenantObs<'a> {
        TenantObs {
            name,
            weight,
            priority: "interactive",
            max_batch: 8,
            quota: None,
            completed,
            completed_fallback: 0,
            rejected: RejectCounts::default(),
            served_cost_us,
        }
    }

    #[test]
    fn shares_and_fairness_error_come_out_exact() {
        let a: Vec<(u64, usize)> = vec![(100, 4); 12];
        let b: Vec<(u64, usize)> = vec![(300, 2); 4];
        let p = SchedProfile::measure(
            &[obs("a", 3, &a, 7_500), obs("b", 1, &b, 2_500)],
            1_000_000,
        );
        assert_eq!(p.total_served_cost_us, 10_000);
        let ta = p.tenant("a").expect("a present");
        let tb = p.tenant("b").expect("b present");
        assert!((ta.cost_share - 0.75).abs() < 1e-12);
        assert!((ta.weight_share - 0.75).abs() < 1e-12);
        assert!(ta.fairness_error.abs() < 1e-12);
        assert!((tb.occupancy - 2.0 / 8.0).abs() < 1e-12);
        assert!((ta.occupancy - 0.5).abs() < 1e-12);
        assert!(p.max_abs_fairness_error < 1e-12);
        assert_eq!(ta.serve.completed, 12);
        assert_eq!(ta.serve.batches, 3);
        let json = sb_json::to_string(&p).expect("serialize");
        assert!(json.contains("\"max_abs_fairness_error\""));
        assert!(json.contains("\"name\":\"a\""));
    }

    #[test]
    fn skewed_shares_report_signed_error() {
        let a: Vec<(u64, usize)> = vec![(100, 1); 9];
        let b: Vec<(u64, usize)> = vec![(100, 1); 1];
        let p = SchedProfile::measure(
            &[obs("hog", 1, &a, 9_000), obs("starved", 1, &b, 1_000)],
            1_000,
        );
        let hog = p.tenant("hog").expect("present");
        let starved = p.tenant("starved").expect("present");
        assert!((hog.fairness_error - 0.4).abs() < 1e-12);
        assert!((starved.fairness_error + 0.4).abs() < 1e-12);
        assert!((p.max_abs_fairness_error - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_run_has_zero_shares_not_nan() {
        let none: Vec<(u64, usize)> = Vec::new();
        let p = SchedProfile::measure(&[obs("idle", 2, &none, 0), obs("also", 1, &none, 0)], 500);
        for t in &p.tenants {
            assert_eq!(t.cost_share, 0.0);
            assert!(t.occupancy == 0.0);
            assert!(t.fairness_error <= 0.0, "shares can only undershoot");
            assert!(t.fairness_error.is_finite());
        }
        assert_eq!(p.total_served_cost_us, 0);
    }
}
