#![warn(missing_docs)]

//! Efficiency and quality metrics for pruned models.
//!
//! The paper (Section 6) recommends always reporting **both** of:
//!
//! * **Compression ratio** — original size / compressed size, where size
//!   is the number of nonzero parameters (all parameters count, including
//!   unprunable biases and batch-norm parameters);
//! * **Theoretical speedup** — original multiply-adds / pruned
//!   multiply-adds.
//!
//! Section 5.2 documents that papers disagree (up to 4×) on how to count
//! FLOPs, so ours is stated exactly: one multiply-add = one FLOP; a
//! convolution contributes `C_out · C_in · KH · KW · H_out · W_out` MACs
//! per sample, a linear layer `in · out`; all other layers contribute
//! zero. A weight tensor with a fraction `q` of nonzero entries
//! contributes `q` times its dense MACs (unstructured sparsity, perfectly
//! exploited).
//!
//! [`ModelProfile::measure`] captures all of this from any
//! [`Network`](sb_nn::Network).

mod aggregate;
pub mod ambiguity;
mod profile;
mod realized;
pub mod sched;
pub mod serve;
pub mod storage;

pub use aggregate::{mean_std, MeanStd};
pub use ambiguity::{ambiguity_report, AmbiguityReport, FlopConvention, SizeConvention};
pub use profile::{ModelProfile, OpProfile, ParamProfile};
pub use realized::{median_latency_us, RealizedPoint, RealizedProfile, RealizedSweep};
pub use sched::{SchedProfile, TenantObs, TenantProfile};
pub use serve::{percentile_us, RejectCounts, ServeProfile};
pub use storage::{model_bytes, storage_report, StorageFormat, StorageReport};
