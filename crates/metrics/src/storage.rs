//! Storage-footprint accounting: what a pruned model actually costs to
//! *store*, under several encodings.
//!
//! The paper's compression ratio counts parameters. A deployed sparse
//! model must also store *where* the surviving weights are, so its byte
//! footprint shrinks less than its parameter count — unless indices are
//! delta/entropy coded as in Deep Compression (Han et al. 2016, one of
//! the corpus' most-compared-to papers). This module quantifies the gap.

use crate::profile::ModelProfile;
use sb_json::{json_enum, json_struct};

/// How a (possibly sparse) weight tensor is encoded on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFormat {
    /// Dense `f32` array: zeros are stored explicitly.
    DenseF32,
    /// Coordinate list: each nonzero stored as `(u32 index, f32 value)`.
    SparseCoo32,
    /// Deep-Compression-style: 4-bit delta-coded indices (with escape
    /// entries every 16 positions on average, approximated analytically)
    /// plus `f32` values.
    SparseDelta4,
}

json_enum!(StorageFormat { DenseF32, SparseCoo32, SparseDelta4 });

impl StorageFormat {
    /// Bytes to store a tensor with `numel` slots of which `nnz` are
    /// nonzero, under this format.
    pub fn bytes(&self, numel: usize, nnz: usize) -> f64 {
        debug_assert!(nnz <= numel);
        match self {
            StorageFormat::DenseF32 => 4.0 * numel as f64,
            StorageFormat::SparseCoo32 => 8.0 * nnz as f64,
            StorageFormat::SparseDelta4 => {
                if nnz == 0 {
                    return 0.0;
                }
                // Mean gap between nonzeros; gaps above 15 need escape
                // entries (a zero-valued filler), adding entries at a rate
                // that grows with sparsity. Expected fillers per real entry
                // for a uniform nonzero layout: ⌊gap/16⌋.
                let gap = numel as f64 / nnz as f64;
                let fillers = (gap / 16.0).floor();
                let entries = nnz as f64 * (1.0 + fillers);
                entries * (4.0 + 0.5) // f32 value + 4-bit index
            }
        }
    }

    /// All formats, for reports.
    pub const ALL: [StorageFormat; 3] = [
        StorageFormat::DenseF32,
        StorageFormat::SparseCoo32,
        StorageFormat::SparseDelta4,
    ];
}

/// Byte footprint of a whole model under `format`: prunable tensors use
/// the chosen encoding, everything dense (biases, batch norm) stays
/// `f32`.
pub fn model_bytes(profile: &ModelProfile, format: StorageFormat) -> f64 {
    profile
        .params
        .iter()
        .map(|p| {
            if p.prunable {
                format.bytes(p.numel, p.effective)
            } else {
                StorageFormat::DenseF32.bytes(p.numel, p.numel)
            }
        })
        .sum()
}

/// The storage story of one pruned model: parameter compression vs byte
/// compression under each encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// Parameter-count compression (the paper's headline metric).
    pub parameter_compression: f64,
    /// `(format, bytes, byte-compression vs dense f32)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

json_struct!(StorageReport { parameter_compression, rows });

/// Builds the storage report for a profile.
pub fn storage_report(profile: &ModelProfile) -> StorageReport {
    let dense = model_bytes(profile, StorageFormat::DenseF32);
    // Dense baseline of the *unpruned* model: every slot stored.
    let dense_unpruned: f64 = profile.params.iter().map(|p| 4.0 * p.numel as f64).sum();
    let rows = StorageFormat::ALL
        .iter()
        .map(|f| {
            let bytes = if *f == StorageFormat::DenseF32 {
                dense
            } else {
                model_bytes(profile, *f)
            };
            (format!("{f:?}"), bytes, dense_unpruned / bytes.max(1.0))
        })
        .collect();
    StorageReport {
        parameter_compression: profile.compression_ratio(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_nn::{models, Network};
    use sb_tensor::{Rng, Tensor};

    fn pruned_lenet(keep_every: usize) -> ModelProfile {
        let mut rng = Rng::seed_from(0);
        let mut net = models::lenet_300_100(64, 10, &mut rng);
        net.visit_params(&mut |p| {
            if p.kind().prunable_by_default() {
                p.set_mask(Tensor::from_fn(p.value().dims(), |i| {
                    if i % keep_every == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }));
            }
        });
        ModelProfile::measure(&net)
    }

    #[test]
    fn dense_bytes_are_four_per_slot() {
        assert_eq!(StorageFormat::DenseF32.bytes(100, 10), 400.0);
    }

    #[test]
    fn coo_beats_dense_only_below_half_density() {
        // 8 bytes/nnz vs 4 bytes/slot: break-even at 50% density.
        let dense = StorageFormat::DenseF32.bytes(1000, 600);
        let coo = StorageFormat::SparseCoo32.bytes(1000, 600);
        assert!(coo > dense, "COO must lose above 50% density");
        let coo_sparse = StorageFormat::SparseCoo32.bytes(1000, 100);
        assert!(coo_sparse < dense);
    }

    #[test]
    fn delta_coding_beats_coo_at_moderate_sparsity() {
        // 4-bit deltas win while the mean gap stays under 16…
        for nnz in [100usize, 400] {
            let coo = StorageFormat::SparseCoo32.bytes(1000, nnz);
            let delta = StorageFormat::SparseDelta4.bytes(1000, nnz);
            assert!(delta < coo, "delta {delta} !< coo {coo} at nnz={nnz}");
        }
        // …but at extreme sparsity the escape entries make wide explicit
        // indices cheaper — the real tradeoff Deep Compression tunes its
        // index width around.
        let coo = StorageFormat::SparseCoo32.bytes(1000, 10);
        let delta = StorageFormat::SparseDelta4.bytes(1000, 10);
        assert!(coo < delta);
    }

    #[test]
    fn byte_compression_lags_parameter_compression_for_coo() {
        // The headline effect: 4× parameter compression stores at well
        // under 4× byte compression in COO because of index overhead.
        let profile = pruned_lenet(4);
        let report = storage_report(&profile);
        let coo = report
            .rows
            .iter()
            .find(|(n, _, _)| n == "SparseCoo32")
            .unwrap();
        assert!(
            coo.2 < report.parameter_compression * 0.6,
            "COO byte compression {} vs parameter compression {}",
            coo.2,
            report.parameter_compression
        );
    }

    #[test]
    fn delta_coding_recovers_most_of_the_parameter_compression() {
        let profile = pruned_lenet(4);
        let report = storage_report(&profile);
        let delta = report
            .rows
            .iter()
            .find(|(n, _, _)| n == "SparseDelta4")
            .unwrap();
        assert!(
            delta.2 > report.parameter_compression * 0.8,
            "delta byte compression {} vs parameter compression {}",
            delta.2,
            report.parameter_compression
        );
    }

    #[test]
    fn extreme_sparsity_pays_for_escape_entries() {
        // At 1/1000 density the mean gap forces many fillers.
        let plain = StorageFormat::SparseDelta4.bytes(16_000, 1000); // gap 16
        let sparse = StorageFormat::SparseDelta4.bytes(1_000_000, 1000); // gap 1000
        assert!(sparse > plain * 10.0);
    }

    #[test]
    fn unprunable_params_always_stored_dense() {
        let profile = pruned_lenet(1_000); // extreme pruning
        let coo_total = model_bytes(&profile, StorageFormat::SparseCoo32);
        let bias_bytes: f64 = profile
            .params
            .iter()
            .filter(|p| !p.prunable)
            .map(|p| 4.0 * p.numel as f64)
            .sum();
        assert!(coo_total >= bias_bytes);
    }
}
