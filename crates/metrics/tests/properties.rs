//! Property-based tests for metric invariants: aggregation, the paper's
//! Section 5 convention ambiguities, and storage accounting. Runs on the
//! in-repo `sb-check` harness with a pinned, replayable suite seed.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng};
use sb_metrics::{
    mean_std, model_bytes, storage_report, FlopConvention, MeanStd, ModelProfile, OpProfile,
    ParamProfile, SizeConvention, StorageFormat,
};
use sb_nn::ParamKind;

/// Pinned suite seed for replayable failures.
const SUITE: u64 = 0x7E45_0005;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// A random pruned-model profile: a few conv/linear weight tensors (with
/// `effective ≤ numel`) plus matching ops whose effective MACs scale with
/// the weight's surviving fraction. Built from a seed inside each
/// property so the generated value stays `Shrink`-able (`u64`).
fn profile_from(seed: u64) -> ModelProfile {
    let mut rng = Rng::seed_from(seed);
    let rng = &mut rng;
    let layers = rng.below(4) + 1;
    let mut params = Vec::new();
    let mut ops = Vec::new();
    for i in 0..layers {
        let is_conv = rng.coin(0.5);
        let name = if is_conv {
            format!("conv{i}.weight")
        } else {
            format!("fc{i}.weight")
        };
        let numel = rng.below(4000) + 16;
        let effective = rng.below(numel + 1);
        params.push(ParamProfile {
            name: name.clone(),
            kind: if is_conv {
                ParamKind::ConvWeight
            } else {
                ParamKind::LinearWeight
            },
            numel,
            effective,
            prunable: true,
        });
        // Biases are never pruned; they keep totals honest.
        params.push(ParamProfile {
            name: format!("{}.bias", &name[..name.len() - 7]),
            kind: ParamKind::Bias,
            numel: rng.below(64) + 1,
            effective: 0,
            prunable: false,
        });
        let dense_macs = (rng.below(100_000) + 100) as u64;
        let q = effective as f64 / numel as f64;
        ops.push(OpProfile {
            weight_name: name,
            dense_macs,
            effective_macs: dense_macs as f64 * q,
        });
    }
    // Unprunable params report effective == numel in real profiles.
    for p in &mut params {
        if !p.prunable {
            p.effective = p.numel;
        }
    }
    ModelProfile { params, ops }
}

fn gen_samples(rng: &mut Rng) -> Vec<f64> {
    let n = rng.below(12) + 1;
    (0..n).map(|_| rng.uniform(-50.0, 50.0) as f64).collect()
}

#[test]
fn mean_lies_between_min_and_max() {
    check(
        "metrics::mean_lies_between_min_and_max",
        cfg(),
        gen_samples,
        |xs| {
            let m = mean_std(xs);
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m.mean >= lo - 1e-9 && m.mean <= hi + 1e-9);
            prop_assert!(m.std >= 0.0);
            prop_assert_eq!(m.n, xs.len());
            Ok(())
        },
    );
}

#[test]
fn mean_std_is_shift_invariant_in_std() {
    check(
        "metrics::mean_std_is_shift_invariant_in_std",
        cfg(),
        |rng| (gen_samples(rng), rng.uniform(-100.0, 100.0) as f64),
        |(xs, c)| {
            let base = mean_std(xs);
            let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
            let m = mean_std(&shifted);
            prop_assert!((m.mean - (base.mean + c)).abs() <= 1e-6 * (1.0 + base.mean.abs()));
            prop_assert!((m.std - base.std).abs() <= 1e-6 * (1.0 + base.std));
            Ok(())
        },
    );
}

#[test]
fn mean_std_scales_covariantly() {
    check(
        "metrics::mean_std_scales_covariantly",
        cfg(),
        |rng| (gen_samples(rng), rng.uniform(-4.0, 4.0) as f64),
        |(xs, k)| {
            let base = mean_std(xs);
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let m = mean_std(&scaled);
            prop_assert!((m.mean - base.mean * k).abs() <= 1e-6 * (1.0 + (base.mean * k).abs()));
            prop_assert!((m.std - base.std * k.abs()).abs() <= 1e-6 * (1.0 + base.std * k.abs()));
            Ok(())
        },
    );
}

#[test]
fn mean_std_round_trips_through_json() {
    check(
        "metrics::mean_std_round_trips_through_json",
        cfg(),
        gen_samples,
        |xs| {
            let m = mean_std(xs);
            let s = sb_json::to_string(&m).unwrap();
            let back: MeanStd = sb_json::from_str(&s).unwrap();
            prop_assert_eq!(back, m);
            Ok(())
        },
    );
}

#[test]
fn size_conventions_are_mutually_consistent() {
    check(
        "metrics::size_conventions_are_mutually_consistent",
        cfg(),
        |rng| rng.next_u64(),
        |&seed| {
            let profile = &profile_from(seed);
            let ratio = SizeConvention::RatioOriginalOverCompressed.evaluate(profile);
            let removed = SizeConvention::FractionRemoved.evaluate(profile);
            let remaining = SizeConvention::FractionRemaining.evaluate(profile);
            prop_assert!((removed + remaining - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&remaining));
            if remaining > 0.0 {
                prop_assert!(
                    (ratio * remaining - 1.0).abs() < 1e-9,
                    "ratio {} × remaining {} ≠ 1",
                    ratio,
                    remaining
                );
            }
            Ok(())
        },
    );
}

#[test]
fn flop_conventions_double_and_subset_as_documented() {
    check(
        "metrics::flop_conventions_double_and_subset_as_documented",
        cfg(),
        |rng| rng.next_u64(),
        |&seed| {
            let profile = &profile_from(seed);
            let all = FlopConvention::MultiplyAdds.dense_flops(profile);
            let doubled = FlopConvention::MultiplyAndAddSeparately.dense_flops(profile);
            let conv = FlopConvention::ConvolutionsOnly.dense_flops(profile);
            let conv2 = FlopConvention::ConvolutionsOnlyDoubled.dense_flops(profile);
            prop_assert!((doubled - 2.0 * all).abs() < 1e-6);
            prop_assert!((conv2 - 2.0 * conv).abs() < 1e-6);
            // Convolution subsets can never exceed the whole.
            prop_assert!(conv <= all + 1e-9);
            // Effective ≤ dense for every convention (pruning only
            // removes work), so speedups are ≥ 1 once above the 1-FLOP
            // floor.
            for convention in FlopConvention::ALL {
                prop_assert!(
                    convention.effective_flops(profile) <= convention.dense_flops(profile) + 1e-9
                );
            }
            Ok(())
        },
    );
}

#[test]
fn storage_bytes_are_monotone_in_nnz() {
    check(
        "metrics::storage_bytes_are_monotone_in_nnz",
        cfg(),
        |rng| {
            let numel = rng.below(10_000) + 16;
            let a = rng.below(numel + 1);
            let b = rng.below(numel + 1);
            (numel, a.min(b), a.max(b))
        },
        |&(numel, lo, hi)| {
            for format in StorageFormat::ALL {
                let b_lo = format.bytes(numel, lo);
                let b_hi = format.bytes(numel, hi);
                prop_assert!(b_lo >= 0.0 && b_hi >= 0.0);
                prop_assert!(
                    b_lo <= b_hi + 1e-9,
                    "{:?}: bytes({}, {}) = {} > bytes({}, {}) = {}",
                    format,
                    numel,
                    lo,
                    b_lo,
                    numel,
                    hi,
                    b_hi
                );
            }
            // Dense cost never depends on sparsity.
            prop_assert_eq!(
                StorageFormat::DenseF32.bytes(numel, lo),
                StorageFormat::DenseF32.bytes(numel, hi)
            );
            Ok(())
        },
    );
}

#[test]
fn storage_report_rows_are_self_consistent() {
    check(
        "metrics::storage_report_rows_are_self_consistent",
        cfg(),
        |rng| rng.next_u64(),
        |&seed| {
            let profile = &profile_from(seed);
            let report = storage_report(profile);
            prop_assert_eq!(report.rows.len(), StorageFormat::ALL.len());
            let dense_unpruned: f64 =
                profile.params.iter().map(|p| 4.0 * p.numel as f64).sum();
            for (name, bytes, compression) in &report.rows {
                prop_assert!(!name.is_empty());
                prop_assert!(*bytes >= 0.0);
                let expected = dense_unpruned / bytes.max(1.0);
                prop_assert!(
                    (compression - expected).abs() <= 1e-9 * (1.0 + expected),
                    "{}: {} vs {}",
                    name,
                    compression,
                    expected
                );
            }
            // The report's dense row equals model_bytes under DenseF32.
            let dense_row = &report.rows[0];
            prop_assert!(
                (dense_row.1 - model_bytes(profile, StorageFormat::DenseF32)).abs() < 1e-9
            );
            Ok(())
        },
    );
}

#[test]
fn profile_round_trips_through_json() {
    check(
        "metrics::profile_round_trips_through_json",
        cfg(),
        |rng| rng.next_u64(),
        |&seed| {
            let profile = &profile_from(seed);
            let s = sb_json::to_string(profile).unwrap();
            let back: ModelProfile = sb_json::from_str(&s).unwrap();
            prop_assert_eq!(&back, profile);
            Ok(())
        },
    );
}
