//! Property-based tests for the CSR sparse kernels, on the in-repo
//! `sb-check` harness. Every failure message carries an `SB_CHECK_SEED`
//! that replays the exact case.
//!
//! These properties pin the contract `sb-infer` builds on: CSR conversion
//! is lossless, and every sparse product agrees with the dense reference
//! kernel — across random shapes and densities, including fully-zero and
//! fully-dense rows.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng};
use sb_tensor::{SparseMatrix, Tensor};

/// Pinned suite seed (sb-check convention: one suite constant per crate
/// area, `0x7E45_0001..` so far; sparse kernels own `_0009`).
const SUITE: u64 = 0x7E45_0009;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// Random weight data whose rows are a mix of sparse, fully-zero, and
/// fully-dense — the row regimes a CSR kernel must handle.
fn weight_data(rng: &mut Rng, rows: usize, cols: usize) -> Vec<f32> {
    let density = rng.uniform(0.0, 1.0) as f64;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        // 1 = fully-zero row, 2 = fully-dense row, else random density.
        let regime = rng.below(4);
        for _ in 0..cols {
            let v = match regime {
                1 => 0.0,
                2 => rng.uniform(-10.0, 10.0),
                _ => {
                    if rng.coin(density) {
                        rng.uniform(-10.0, 10.0)
                    } else {
                        0.0
                    }
                }
            };
            data.push(v);
        }
    }
    data
}

fn dense_data(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-5.0, 5.0)).collect()
}

/// Builds a `[rows, cols]` tensor, or `None` when a shrunk candidate's
/// data length no longer matches the shape (such cases pass vacuously).
fn tensor_of(data: &[f32], rows: usize, cols: usize) -> Option<Tensor> {
    if data.len() != rows * cols {
        return None;
    }
    Tensor::from_vec(data.to_vec(), &[rows, cols]).ok()
}

#[test]
fn from_dense_to_dense_roundtrip_is_identity() {
    check(
        "sparse::from_dense_to_dense_roundtrip_is_identity",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(10) + 1;
            (rows, cols, weight_data(rng, rows, cols))
        },
        |(rows, cols, data)| {
            let Some(w) = tensor_of(data, *rows, *cols) else {
                return Ok(());
            };
            let sparse = SparseMatrix::from_dense(&w);
            prop_assert_eq!(sparse.to_dense(), w.clone());
            prop_assert_eq!(sparse.nnz(), w.count_nonzero());
            let expected = w.count_nonzero() as f64 / w.numel() as f64;
            prop_assert!((sparse.density() - expected).abs() < 1e-12);
            Ok(())
        },
    );
}

#[test]
fn matmul_dense_matches_dense_reference() {
    check(
        "sparse::matmul_dense_matches_dense_reference",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(10) + 1;
            let n = rng.below(6) + 1;
            let w = weight_data(rng, rows, cols);
            let x = dense_data(rng, cols * n);
            ((rows, cols, n), w, x)
        },
        |((rows, cols, n), wdata, xdata)| {
            let (Some(w), Some(x)) = (
                tensor_of(wdata, *rows, *cols),
                tensor_of(xdata, *cols, *n),
            ) else {
                return Ok(());
            };
            let fast = SparseMatrix::from_dense(&w).matmul_dense(&x);
            let slow = w.matmul(&x);
            prop_assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data()) {
                prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{} vs {}", a, b);
            }
            Ok(())
        },
    );
}

#[test]
fn dense_matmul_transposed_matches_dense_reference() {
    check(
        "sparse::dense_matmul_transposed_matches_dense_reference",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(10) + 1;
            let m = rng.below(6) + 1;
            let w = weight_data(rng, rows, cols);
            let x = dense_data(rng, m * cols);
            ((rows, cols, m), w, x)
        },
        |((rows, cols, m), wdata, xdata)| {
            let (Some(w), Some(x)) = (
                tensor_of(wdata, *rows, *cols),
                tensor_of(xdata, *m, *cols),
            ) else {
                return Ok(());
            };
            let fast = SparseMatrix::from_dense(&w).dense_matmul_transposed(&x);
            let slow = x.matmul_transposed(&w);
            prop_assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data()) {
                prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{} vs {}", a, b);
            }
            Ok(())
        },
    );
}

#[test]
fn matvec_matches_dense_reference() {
    check(
        "sparse::matvec_matches_dense_reference",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(10) + 1;
            let w = weight_data(rng, rows, cols);
            let v = dense_data(rng, cols);
            (rows, cols, w, v)
        },
        |(rows, cols, wdata, vdata)| {
            let Some(w) = tensor_of(wdata, *rows, *cols) else {
                return Ok(());
            };
            if vdata.len() != *cols {
                return Ok(());
            }
            let v = Tensor::from_slice(vdata);
            let fast = SparseMatrix::from_dense(&w).matvec(&v);
            let slow = w.matvec(&v);
            for (a, b) in fast.data().iter().zip(slow.data()) {
                prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{} vs {}", a, b);
            }
            Ok(())
        },
    );
}
