//! Property-based tests for tensor algebra invariants, on the in-repo
//! `sb-check` harness. Every failure message carries an `SB_CHECK_SEED`
//! that replays the exact case.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng};
use sb_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

/// Pinned suite seed: every property below derives its per-case seeds
/// from this value, so failures reproduce across machines.
const SUITE: u64 = 0x7E45_0001;

fn cfg() -> Config {
    Config::new(SUITE)
}

fn vec_in(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-100.0, 100.0)).collect()
}

#[test]
fn addition_commutes() {
    check(
        "tensor::addition_commutes",
        cfg(),
        |rng| (vec_in(rng, 24), vec_in(rng, 24)),
        |(a, b)| {
            let ta = Tensor::from_vec(a.clone(), &[4, 6]).unwrap();
            let tb = Tensor::from_vec(b.clone(), &[4, 6]).unwrap();
            prop_assert_eq!(&ta + &tb, &tb + &ta);
            Ok(())
        },
    );
}

#[test]
fn addition_associates_up_to_eps() {
    check(
        "tensor::addition_associates_up_to_eps",
        cfg(),
        |rng| (vec_in(rng, 16), vec_in(rng, 16), vec_in(rng, 16)),
        |(a, b, c)| {
            let ta = Tensor::from_slice(a);
            let tb = Tensor::from_slice(b);
            let tc = Tensor::from_slice(c);
            let lhs = &(&ta + &tb) + &tc;
            let rhs = &ta + &(&tb + &tc);
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
            }
            Ok(())
        },
    );
}

#[test]
fn scale_distributes_over_add() {
    check(
        "tensor::scale_distributes_over_add",
        cfg(),
        |rng| (vec_in(rng, 12), vec_in(rng, 12), rng.uniform(-10.0, 10.0)),
        |(a, b, k)| {
            let ta = Tensor::from_slice(a);
            let tb = Tensor::from_slice(b);
            let lhs = (&ta + &tb).scale(*k);
            let rhs = &ta.scale(*k) + &tb.scale(*k);
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs()));
            }
            Ok(())
        },
    );
}

#[test]
fn double_transpose_is_identity() {
    check(
        "tensor::double_transpose_is_identity",
        cfg(),
        |rng| vec_in(rng, 20),
        |a| {
            let t = Tensor::from_vec(a.clone(), &[4, 5]).unwrap();
            prop_assert_eq!(t.transpose2().transpose2(), t);
            Ok(())
        },
    );
}

#[test]
fn matmul_matches_naive() {
    check(
        "tensor::matmul_matches_naive",
        cfg(),
        |rng| (vec_in(rng, 12), vec_in(rng, 20)),
        |(a, b)| {
            let ta = Tensor::from_vec(a.clone(), &[3, 4]).unwrap();
            let tb = Tensor::from_vec(b.clone(), &[4, 5]).unwrap();
            let c = ta.matmul(&tb);
            for i in 0..3 {
                for j in 0..5 {
                    let mut acc = 0.0f64;
                    for k in 0..4 {
                        acc += ta.at(&[i, k]) as f64 * tb.at(&[k, j]) as f64;
                    }
                    prop_assert!(
                        (c.at(&[i, j]) as f64 - acc).abs() <= 1e-2 * (1.0 + acc.abs()),
                        "({}, {}): {} vs {}",
                        i,
                        j,
                        c.at(&[i, j]),
                        acc
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn matmul_transpose_identities() {
    check(
        "tensor::matmul_transpose_identities",
        cfg(),
        |rng| (vec_in(rng, 12), vec_in(rng, 20)),
        |(a, b)| {
            // (A·B)ᵀ == Bᵀ·Aᵀ
            let ta = Tensor::from_vec(a.clone(), &[3, 4]).unwrap();
            let tb = Tensor::from_vec(b.clone(), &[4, 5]).unwrap();
            let lhs = ta.matmul(&tb).transpose2();
            let rhs = tb.transpose2().matmul(&ta.transpose2());
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs()));
            }
            Ok(())
        },
    );
}

#[test]
fn softmax_rows_are_distributions() {
    check(
        "tensor::softmax_rows_are_distributions",
        cfg(),
        |rng| vec_in(rng, 30),
        |a| {
            let t = Tensor::from_vec(a.clone(), &[5, 6]).unwrap();
            let s = t.softmax_rows();
            for i in 0..5 {
                let row = &s.data()[i * 6..(i + 1) * 6];
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
            Ok(())
        },
    );
}

#[test]
fn reshape_preserves_sum() {
    check(
        "tensor::reshape_preserves_sum",
        cfg(),
        |rng| vec_in(rng, 24),
        |a| {
            let t = Tensor::from_vec(a.clone(), &[2, 12]).unwrap();
            let r = t.reshape(&[4, 6]).unwrap();
            prop_assert_eq!(t.sum(), r.sum());
            Ok(())
        },
    );
}

#[test]
fn mask_multiply_is_idempotent() {
    check(
        "tensor::mask_multiply_is_idempotent",
        cfg(),
        |rng| (vec_in(rng, 16), rng.below(1000) as u64),
        |(a, seed)| {
            let mut rng = Rng::seed_from(*seed);
            let mask = Tensor::from_fn(&[16], |_| if rng.coin(0.5) { 1.0 } else { 0.0 });
            let mut w = Tensor::from_slice(a);
            w.mul_in_place(&mask);
            let once = w.clone();
            w.mul_in_place(&mask);
            prop_assert_eq!(w, once);
            Ok(())
        },
    );
}

#[test]
fn im2col_col2im_adjoint() {
    check(
        "tensor::im2col_col2im_adjoint",
        cfg(),
        |rng| {
            (
                rng.below(500) as u64,
                (rng.below(2), rng.below(2)), // independent pad_h / pad_w
                rng.below(2) + 1,
            )
        },
        |(seed, (pad_h, pad_w), stride)| {
            let g = Conv2dGeometry {
                in_channels: 2,
                in_h: 5,
                in_w: 5,
                kernel_h: 3,
                kernel_w: 3,
                stride: *stride,
                padding_h: *pad_h,
                padding_w: *pad_w,
            };
            let mut rng = Rng::seed_from(*seed);
            let x = Tensor::rand_normal(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
            let cols_dims = [2 * g.out_h() * g.out_w(), g.patch_len()];
            let y = Tensor::rand_normal(&cols_dims, 0.0, 1.0, &mut rng);
            let lhs = im2col(&x, &g).dot(&y) as f64;
            let rhs = x.flatten().dot(&col2im(&y, 2, &g).flatten()) as f64;
            prop_assert!(
                (lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()),
                "{} vs {}",
                lhs,
                rhs
            );
            Ok(())
        },
    );
}

#[test]
fn count_zeros_plus_nonzero_is_numel() {
    check(
        "tensor::count_zeros_plus_nonzero_is_numel",
        cfg(),
        |rng| vec_in(rng, 32),
        |a| {
            let t = Tensor::from_slice(a);
            prop_assert_eq!(t.count_zeros() + t.count_nonzero(), t.numel());
            Ok(())
        },
    );
}

#[test]
fn json_round_trip() {
    check(
        "tensor::json_round_trip",
        cfg(),
        |rng| vec_in(rng, 10),
        |a| {
            let t = Tensor::from_vec(a.clone(), &[2, 5]).unwrap();
            let s = sb_json::to_string(&t).unwrap();
            let back: Tensor = sb_json::from_str(&s).unwrap();
            prop_assert_eq!(back, t);
            Ok(())
        },
    );
}

#[test]
fn sparse_round_trip_any_density() {
    check(
        "tensor::sparse_round_trip_any_density",
        cfg(),
        |rng| (rng.below(2000) as u64, rng.uniform(0.0, 1.0) as f64),
        |(seed, density)| {
            let mut rng = Rng::seed_from(*seed);
            let dense = Tensor::from_fn(&[6, 9], |_| {
                if rng.coin(*density) {
                    rng.normal()
                } else {
                    0.0
                }
            });
            let sparse = sb_tensor::SparseMatrix::from_dense(&dense);
            prop_assert_eq!(sparse.to_dense(), dense.clone());
            prop_assert_eq!(sparse.nnz(), dense.count_nonzero());
            Ok(())
        },
    );
}

#[test]
fn sparse_matmul_agrees_with_dense() {
    check(
        "tensor::sparse_matmul_agrees_with_dense",
        cfg(),
        |rng| (rng.below(2000) as u64, rng.uniform(0.05, 0.95) as f64),
        |(seed, density)| {
            let mut rng = Rng::seed_from(*seed);
            let w = Tensor::from_fn(&[5, 8], |_| {
                if rng.coin(*density) {
                    rng.normal()
                } else {
                    0.0
                }
            });
            let x = Tensor::rand_normal(&[8, 4], 0.0, 1.0, &mut rng);
            let sparse = sb_tensor::SparseMatrix::from_dense(&w);
            let fast = sparse.matmul_dense(&x);
            let slow = w.matmul(&x);
            for (a, b) in fast.data().iter().zip(slow.data()) {
                prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
            }
            Ok(())
        },
    );
}
