//! Property-based tests for tensor algebra invariants.

use proptest::prelude::*;
use sb_tensor::{col2im, im2col, Conv2dGeometry, Rng, Tensor};

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in tensor_strategy(24), b in tensor_strategy(24)) {
        let ta = Tensor::from_vec(a, &[4, 6]).unwrap();
        let tb = Tensor::from_vec(b, &[4, 6]).unwrap();
        prop_assert_eq!(&ta + &tb, &tb + &ta);
    }

    #[test]
    fn addition_associates_up_to_eps(
        a in tensor_strategy(16), b in tensor_strategy(16), c in tensor_strategy(16)
    ) {
        let ta = Tensor::from_slice(&a);
        let tb = Tensor::from_slice(&b);
        let tc = Tensor::from_slice(&c);
        let lhs = &(&ta + &tb) + &tc;
        let rhs = &ta + &(&tb + &tc);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_strategy(12), b in tensor_strategy(12), k in -10.0f32..10.0) {
        let ta = Tensor::from_slice(&a);
        let tb = Tensor::from_slice(&b);
        let lhs = (&ta + &tb).scale(k);
        let rhs = &ta.scale(k) + &tb.scale(k);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn double_transpose_is_identity(a in tensor_strategy(20)) {
        let t = Tensor::from_vec(a, &[4, 5]).unwrap();
        prop_assert_eq!(t.transpose2().transpose2(), t);
    }

    #[test]
    fn matmul_matches_naive(a in tensor_strategy(12), b in tensor_strategy(20)) {
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[4, 5]).unwrap();
        let c = ta.matmul(&tb);
        for i in 0..3 {
            for j in 0..5 {
                let mut acc = 0.0f64;
                for k in 0..4 {
                    acc += ta.at(&[i, k]) as f64 * tb.at(&[k, j]) as f64;
                }
                prop_assert!(
                    (c.at(&[i, j]) as f64 - acc).abs() <= 1e-2 * (1.0 + acc.abs()),
                    "({}, {}): {} vs {}", i, j, c.at(&[i, j]), acc
                );
            }
        }
    }

    #[test]
    fn matmul_transpose_identities(a in tensor_strategy(12), b in tensor_strategy(20)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[4, 5]).unwrap();
        let lhs = ta.matmul(&tb).transpose2();
        let rhs = tb.transpose2().matmul(&ta.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(30)) {
        let t = Tensor::from_vec(a, &[5, 6]).unwrap();
        let s = t.softmax_rows();
        for i in 0..5 {
            let row = &s.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn reshape_preserves_sum(a in tensor_strategy(24)) {
        let t = Tensor::from_vec(a, &[2, 12]).unwrap();
        let r = t.reshape(&[4, 6]).unwrap();
        prop_assert_eq!(t.sum(), r.sum());
    }

    #[test]
    fn mask_multiply_is_idempotent(a in tensor_strategy(16), seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let mask = Tensor::from_fn(&[16], |_| if rng.coin(0.5) { 1.0 } else { 0.0 });
        let mut w = Tensor::from_slice(&a);
        w.mul_in_place(&mask);
        let once = w.clone();
        w.mul_in_place(&mask);
        prop_assert_eq!(w, once);
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..500, pad in 0usize..2, stride in 1usize..3) {
        let g = Conv2dGeometry {
            in_channels: 2, in_h: 5, in_w: 5,
            kernel_h: 3, kernel_w: 3, stride, padding: pad,
        };
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_normal(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols_dims = [2 * g.out_h() * g.out_w(), g.patch_len()];
        let y = Tensor::rand_normal(&cols_dims, 0.0, 1.0, &mut rng);
        let lhs = im2col(&x, &g).dot(&y) as f64;
        let rhs = x.flatten().dot(&col2im(&y, 2, &g).flatten()) as f64;
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn count_zeros_plus_nonzero_is_numel(a in tensor_strategy(32)) {
        let t = Tensor::from_slice(&a);
        prop_assert_eq!(t.count_zeros() + t.count_nonzero(), t.numel());
    }

    #[test]
    fn serde_json_round_trip(a in tensor_strategy(10)) {
        let t = Tensor::from_vec(a, &[2, 5]).unwrap();
        let s = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sparse_round_trip_any_density(seed in 0u64..2000, density in 0.0f64..1.0) {
        let mut rng = Rng::seed_from(seed);
        let dense = Tensor::from_fn(&[6, 9], |_| {
            if rng.coin(density) { rng.normal() } else { 0.0 }
        });
        let sparse = sb_tensor::SparseMatrix::from_dense(&dense);
        prop_assert_eq!(sparse.to_dense(), dense.clone());
        prop_assert_eq!(sparse.nnz(), dense.count_nonzero());
    }

    #[test]
    fn sparse_matmul_agrees_with_dense(seed in 0u64..2000, density in 0.05f64..0.95) {
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::from_fn(&[5, 8], |_| {
            if rng.coin(density) { rng.normal() } else { 0.0 }
        });
        let x = Tensor::rand_normal(&[8, 4], 0.0, 1.0, &mut rng);
        let sparse = sb_tensor::SparseMatrix::from_dense(&w);
        let fast = sparse.matmul_dense(&x);
        let slow = w.matmul(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }
}
