use std::error::Error;
use std::fmt;

/// Error type for fallible tensor construction and reshaping.
///
/// Most tensor *operations* treat shape mismatches as programmer error and
/// panic with a descriptive message (the convention used by `ndarray` and
/// other numerics crates); [`TensorError`] is reserved for the
/// construction-time paths where the data originates outside the program
/// (e.g. deserialized checkpoints) and recovery is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A reshape was requested whose element count differs from the
    /// tensor's current element count.
    ReshapeMismatch {
        /// The tensor's current shape.
        from: Vec<usize>,
        /// The requested shape.
        to: Vec<usize>,
    },
    /// A shape with a zero-sized dimension was provided where a non-empty
    /// tensor is required.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape requiring {expected} elements"
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor of shape {from:?} into {to:?}: element counts differ"
            ),
            TensorError::EmptyShape => write!(f, "shape must have at least one element"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('6') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
