//! Deterministic random number generation and tensor initialization.
//!
//! All stochastic behaviour in `shrinkbench-rs` flows through [`Rng`], the
//! in-repo SplitMix64-seeded xoshiro256++ generator from `sb-rng`
//! (re-exported here so downstream crates keep a single import path). The
//! paper's central complaint is unreproducible experiments; every
//! experiment here is a pure function of its seed, and the generator's
//! stream definition lives in this repository rather than in an external
//! crate whose algorithm could change between versions.

use crate::tensor::Tensor;

pub use sb_rng::Rng;

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        Tensor::from_fn(dims, |_| rng.uniform(lo, hi))
    }

    /// Tensor with i.i.d. normal entries.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Tensor {
        Tensor::from_fn(dims, |_| rng.normal_with(mean, std))
    }

    /// Kaiming-He normal initialization for a weight tensor with the given
    /// fan-in: `std = sqrt(2 / fan_in)`. The standard initializer for
    /// ReLU networks.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(dims, 0.0, std, rng)
    }

    /// Xavier/Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    ///
    /// Panics if both fans are zero.
    pub fn xavier_uniform(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut Rng,
    ) -> Tensor {
        assert!(fan_in + fan_out > 0, "fans must not both be zero");
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(dims, -a, a, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..16 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_streams_are_independent_of_later_use() {
        let mut parent1 = Rng::seed_from(3);
        let mut child1 = parent1.fork(1);
        let mut parent2 = Rng::seed_from(3);
        let mut child2 = parent2.fork(1);
        // Using parent2 further must not change what child2 yields.
        let _ = parent2.uniform(0.0, 1.0);
        assert_eq!(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::seed_from(13);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Rng::seed_from(17);
        let t = Tensor::kaiming_normal(&[4000], 50, &mut rng);
        let var = t.norm_sq() / t.numel() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = Rng::seed_from(19);
        let a = (6.0f32 / 20.0).sqrt();
        let t = Tensor::xavier_uniform(&[1000], 10, 10, &mut rng);
        assert!(t.max() <= a && t.min() >= -a);
    }
}
