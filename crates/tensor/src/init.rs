//! Deterministic random number generation and tensor initialization.
//!
//! All stochastic behaviour in `shrinkbench-rs` flows through [`Rng`], a
//! seeded wrapper around a fixed PRNG algorithm. The paper's central
//! complaint is unreproducible experiments; every experiment here is a pure
//! function of its seed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A deterministic random source for initialization and sampling.
///
/// Wraps a seeded [`StdRng`] so the PRNG algorithm choice is encapsulated
/// and every call site takes `&mut Rng` explicitly (no thread-local
/// hidden state).
///
/// # Example
///
/// ```
/// use sb_tensor::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each
    /// layer/sample its own stream so adding layers does not perturb
    /// unrelated draws.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let base: u64 = self.inner.gen();
        Rng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform; avoids depending on rand_distr.
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        Tensor::from_fn(dims, |_| rng.uniform(lo, hi))
    }

    /// Tensor with i.i.d. normal entries.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Tensor {
        Tensor::from_fn(dims, |_| rng.normal_with(mean, std))
    }

    /// Kaiming-He normal initialization for a weight tensor with the given
    /// fan-in: `std = sqrt(2 / fan_in)`. The standard initializer for
    /// ReLU networks.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(dims, 0.0, std, rng)
    }

    /// Xavier/Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// # Panics
    ///
    /// Panics if both fans are zero.
    pub fn xavier_uniform(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut Rng,
    ) -> Tensor {
        assert!(fan_in + fan_out > 0, "fans must not both be zero");
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(dims, -a, a, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..16 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_streams_are_independent_of_later_use() {
        let mut parent1 = Rng::seed_from(3);
        let mut child1 = parent1.fork(1);
        let mut parent2 = Rng::seed_from(3);
        let mut child2 = parent2.fork(1);
        // Using parent2 further must not change what child2 yields.
        let _ = parent2.uniform(0.0, 1.0);
        assert_eq!(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::seed_from(13);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Rng::seed_from(17);
        let t = Tensor::kaiming_normal(&[4000], 50, &mut rng);
        let var = t.norm_sq() / t.numel() as f32;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = Rng::seed_from(19);
        let a = (6.0f32 / 20.0).sqrt();
        let t = Tensor::xavier_uniform(&[1000], 10, 10, &mut rng);
        assert!(t.max() <= a && t.min() >= -a);
    }
}
