use crate::error::TensorError;
use crate::shape::Shape;
use sb_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numerical container used throughout
/// `shrinkbench-rs`: network weights, activations, gradients, and pruning
/// masks are all `Tensor`s. Data is always contiguous, which keeps every
/// kernel a simple loop over `data()` and makes masking (elementwise
/// multiply) trivially correct.
///
/// # Example
///
/// ```
/// use sb_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl ToJson for Tensor {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shape".to_string(), self.shape.to_json()),
            ("data".to_string(), self.data.to_json()),
        ])
    }
}

impl FromJson for Tensor {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let shape: Shape = sb_json::field(v, "shape")?;
        let data: Vec<f32> = sb_json::field(v, "data")?;
        // Reject inconsistent documents instead of constructing a tensor
        // that violates the shape/data-length invariant.
        if data.len() != shape.numel() {
            return Err(JsonError::Mismatch {
                expected: format!("{} data values for shape {:?}", shape.numel(), shape.dims()),
                found: format!("{} data values", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; Shape::new(dims).numel()],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let numel = shape.numel();
        Tensor {
            shape,
            data: vec![value; numel],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor that takes ownership of `data`, interpreting it in
    /// row-major order with the given dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension list shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of one axis. Shorthand for `shape().dim(axis)`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ; use [`Tensor::reshape`] for the
    /// fallible form.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let new_shape = Shape::new(dims);
        assert_eq!(
            new_shape.numel(),
            self.numel(),
            "cannot reshape {} elements into shape {new_shape}",
            self.numel()
        );
        self.shape = new_shape;
    }

    /// Flattens to 1-D, preserving order.
    pub fn flatten(&self) -> Self {
        Tensor {
            shape: Shape::new(&[self.numel()]),
            data: self.data.clone(),
        }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.shape.ndim(), 2, "transpose2 requires a 2-D tensor");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Copies row `i` of a 2-D tensor into a new 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.shape.ndim(), 2, "row requires a 2-D tensor");
        let c = self.dim(1);
        Tensor::from_slice(&self.data[i * c..(i + 1) * c])
    }

    /// Stacks 1-D tensors of equal length into a 2-D tensor (one per row).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Self {
        assert!(!rows.is_empty(), "stack_rows requires at least one row");
        let width = rows[0].numel();
        let mut data = Vec::with_capacity(rows.len() * width);
        for row in rows {
            assert_eq!(row.numel(), width, "all rows must have equal length");
            data.extend_from_slice(row.data());
        }
        Tensor {
            shape: Shape::new(&[rows.len(), width]),
            data,
        }
    }

    /// Number of elements with value exactly `0.0`.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0.0).count()
    }

    /// Number of elements with value not equal to `0.0`.
    pub fn count_nonzero(&self) -> usize {
        self.numel() - self.count_zeros()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Default for Tensor {
    /// An empty scalar-shaped tensor containing `0.0`.
    fn default() -> Self {
        Tensor::zeros(&[])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 8;
        write!(f, "[")?;
        for (i, v) in self.data.iter().take(MAX).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.numel() > MAX {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[3]);
        assert!(o.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn eye_is_identity() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
        assert_eq!(e.at(&[2, 2]), 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert_eq!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        );
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.data()[5], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose2_swaps_indices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), tt.at(&[j, i]));
            }
        }
    }

    #[test]
    fn stack_rows_concatenates() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack_rows(&[a, b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_counting() {
        let t = Tensor::from_slice(&[0.0, 1.0, 0.0, -2.0]);
        assert_eq!(t.count_zeros(), 2);
        assert_eq!(t.count_nonzero(), 2);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn json_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.5, 0.0, 4.0], &[2, 2]).unwrap();
        let json = sb_json::to_string(&t).unwrap();
        let back: Tensor = sb_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // Inconsistent shape/data must be rejected, not constructed.
        assert!(sb_json::from_str::<Tensor>(r#"{"shape":{"dims":[3]},"data":[1,2]}"#).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn row_extracts_slice() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1).data(), &[3.0, 4.0]);
    }
}
