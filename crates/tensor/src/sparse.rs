//! Compressed sparse row (CSR) matrices and sparse–dense products.
//!
//! The paper's Section 2.1 observes that unstructured pruning yields a
//! network that "may not be arranged in a fashion conducive to speedups
//! using modern libraries and hardware". This module makes that claim
//! measurable in-repo: convert a pruned weight matrix to CSR, run the
//! actual sparse kernel, and compare wall-clock against the dense matmul —
//! the *realized* counterpart of `sb-metrics`' theoretical speedup
//! (exercised by the `realized` wall-clock benchmark).

use crate::tensor::Tensor;
use sb_json::json_struct;

/// A sparse matrix in compressed-sparse-row format.
///
/// # Example
///
/// ```
/// use sb_tensor::{SparseMatrix, Tensor};
///
/// let dense = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let sparse = SparseMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 2);
/// assert_eq!(sparse.to_dense(), dense);
/// # Ok::<(), sb_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

json_struct!(SparseMatrix { rows, cols, row_ptr, col_idx, values });

impl SparseMatrix {
    /// Builds a CSR matrix from a dense 2-D tensor, dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D or has more than `u32::MAX` columns
    /// or entries per row table.
    pub fn from_dense(dense: &Tensor) -> Self {
        assert_eq!(dense.shape().ndim(), 2, "CSR requires a 2-D tensor");
        let (rows, cols) = (dense.dim(0), dense.dim(1));
        assert!(cols <= u32::MAX as usize, "too many columns for u32 indices");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            let row = &dense.data()[r * cols..(r + 1) * cols];
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are nonzero.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Materializes back to a dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for k in lo..hi {
                out.data_mut()[r * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        out
    }

    /// Storage bytes of this CSR representation (values + column indices
    /// + row pointers).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }

    /// Sparse × dense product: `self [m, k] × rhs [k, n] → [m, n]`.
    ///
    /// Cost is proportional to `nnz × n` — this is the kernel whose
    /// wall-clock, compared against [`Tensor::matmul`], measures the
    /// *realized* speedup of unstructured pruning.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is not 2-D or its row count differs from
    /// `self.cols()`.
    pub fn matmul_dense(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(rhs.shape().ndim(), 2, "rhs must be 2-D");
        assert_eq!(
            rhs.dim(0),
            self.cols,
            "inner dimensions differ: {}x{} × {}x{}",
            self.rows,
            self.cols,
            rhs.dim(0),
            rhs.dim(1)
        );
        let n = rhs.dim(1);
        let mut out = vec![0.0f32; self.rows * n];
        let rhs_data = rhs.data();
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let out_row = &mut out[r * n..(r + 1) * n];
            for k in lo..hi {
                let v = self.values[k];
                let rhs_row = &rhs_data[self.col_idx[k] as usize * n..][..n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * b;
                }
            }
        }
        Tensor::from_vec(out, &[self.rows, n]).expect("shape computed above")
    }

    /// Sparse × vector product: `self [m, k] × v [k] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.numel() != self.cols()`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(v.numel(), self.cols, "vector length mismatch");
        let mut out = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0f32;
            for k in lo..hi {
                acc += self.values[k] * v.data()[self.col_idx[k] as usize];
            }
            out[r] = acc;
        }
        Tensor::from_vec(out, &[self.rows]).expect("shape computed above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(&[rows, cols], |_| {
            if rng.coin(density) {
                rng.normal()
            } else {
                0.0
            }
        })
    }

    #[test]
    fn round_trip_preserves_dense() {
        let dense = random_sparse(7, 11, 0.3, 1);
        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.to_dense(), dense);
        assert_eq!(sparse.nnz(), dense.count_nonzero());
    }

    #[test]
    fn sparse_matmul_matches_dense_matmul() {
        let mut rng = Rng::seed_from(2);
        let w = random_sparse(8, 12, 0.25, 3);
        let x = Tensor::rand_normal(&[12, 5], 0.0, 1.0, &mut rng);
        let sparse = SparseMatrix::from_dense(&w);
        let fast = sparse.matmul_dense(&x);
        let slow = w.matmul(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = Rng::seed_from(4);
        let w = random_sparse(6, 9, 0.4, 5);
        let v = Tensor::rand_normal(&[9], 0.0, 1.0, &mut rng);
        let sparse = SparseMatrix::from_dense(&w);
        let fast = sparse.matvec(&v);
        let slow = w.matvec(&v);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_matrix_works() {
        let dense = Tensor::zeros(&[3, 4]);
        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.density(), 0.0);
        let x = Tensor::ones(&[4, 2]);
        assert_eq!(sparse.matmul_dense(&x), Tensor::zeros(&[3, 2]));
    }

    #[test]
    fn density_and_storage_accounting() {
        let dense = random_sparse(10, 10, 0.5, 6);
        let sparse = SparseMatrix::from_dense(&dense);
        let expected_density = dense.count_nonzero() as f64 / 100.0;
        assert!((sparse.density() - expected_density).abs() < 1e-12);
        assert_eq!(
            sparse.storage_bytes(),
            sparse.nnz() * 8 + (10 + 1) * 4
        );
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_product_panics() {
        let sparse = SparseMatrix::from_dense(&Tensor::ones(&[2, 3]));
        sparse.matmul_dense(&Tensor::ones(&[4, 2]));
    }

    #[test]
    fn json_round_trip() {
        let sparse = SparseMatrix::from_dense(&random_sparse(4, 4, 0.5, 7));
        let json = sb_json::to_string(&sparse).unwrap();
        let back: SparseMatrix = sb_json::from_str(&json).unwrap();
        assert_eq!(back, sparse);
    }
}
