//! Compressed sparse row (CSR) matrices and sparse–dense products.
//!
//! The paper's Section 2.1 observes that unstructured pruning yields a
//! network that "may not be arranged in a fashion conducive to speedups
//! using modern libraries and hardware". This module makes that claim
//! measurable in-repo: convert a pruned weight matrix to CSR, run the
//! actual sparse kernel, and compare wall-clock against the dense matmul —
//! the *realized* counterpart of `sb-metrics`' theoretical speedup
//! (exercised by the `realized` wall-clock benchmark).

use crate::tensor::Tensor;
use sb_json::json_struct;

/// A sparse matrix in compressed-sparse-row format.
///
/// # Example
///
/// ```
/// use sb_tensor::{SparseMatrix, Tensor};
///
/// let dense = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let sparse = SparseMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 2);
/// assert_eq!(sparse.to_dense(), dense);
/// # Ok::<(), sb_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

json_struct!(SparseMatrix { rows, cols, row_ptr, col_idx, values });

impl SparseMatrix {
    /// Builds a CSR matrix from a dense 2-D tensor, dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D or has more than `u32::MAX` columns
    /// or entries per row table.
    pub fn from_dense(dense: &Tensor) -> Self {
        assert_eq!(dense.shape().ndim(), 2, "CSR requires a 2-D tensor");
        let (rows, cols) = (dense.dim(0), dense.dim(1));
        assert!(cols <= u32::MAX as usize, "too many columns for u32 indices");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            let row = &dense.data()[r * cols..(r + 1) * cols];
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are nonzero.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The stored entries of row `r` as parallel `(column, value)` slices,
    /// column-ascending — the access path external kernels (the `sb-infer`
    /// executor) use to consume CSR weights without re-allocating.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Materializes back to a dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for k in lo..hi {
                out.data_mut()[r * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        out
    }

    /// Storage bytes of this CSR representation (values + column indices
    /// + row pointers).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }

    /// Rows per parallel task, targeting ~32k mul-adds per task like the
    /// dense kernels in `linalg.rs`. Sized from the matrix itself (average
    /// nnz per row × output width), so chunk boundaries depend only on the
    /// operands — never on the worker count — keeping results bit-identical
    /// at any `SB_RUNTIME_THREADS`.
    fn rows_per_task(&self, out_width: usize) -> usize {
        let work_per_row = (self.nnz() / self.rows.max(1)).max(1) * out_width.max(1);
        (32_768 / work_per_row).clamp(1, self.rows.max(1))
    }

    /// Sparse × dense product: `self [m, k] × rhs [k, n] → [m, n]`.
    ///
    /// Cost is proportional to `nnz × n` — this is the kernel whose
    /// wall-clock, compared against [`Tensor::matmul`], measures the
    /// *realized* speedup of unstructured pruning.
    ///
    /// Parallelized over disjoint blocks of output rows. Each output
    /// element is accumulated by exactly one task in the exact
    /// `k`-ascending index order the sequential loop uses, so output is
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is not 2-D or its row count differs from
    /// `self.cols()`.
    pub fn matmul_dense(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(rhs.shape().ndim(), 2, "rhs must be 2-D");
        assert_eq!(
            rhs.dim(0),
            self.cols,
            "inner dimensions differ: {}x{} × {}x{}",
            self.rows,
            self.cols,
            rhs.dim(0),
            rhs.dim(1)
        );
        let n = rhs.dim(1);
        let mut out = vec![0.0f32; self.rows * n];
        if out.is_empty() {
            return Tensor::from_vec(out, &[self.rows, n]).expect("shape computed above");
        }
        let rhs_data = rhs.data();
        let rows_per = self.rows_per_task(n);
        sb_runtime::for_each_chunk_mut(&mut out, rows_per * n, |ci, block| {
            let row0 = ci * rows_per;
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let row = row0 + r;
                let (lo, hi) = (self.row_ptr[row] as usize, self.row_ptr[row + 1] as usize);
                for k in lo..hi {
                    let v = self.values[k];
                    let rhs_row = &rhs_data[self.col_idx[k] as usize * n..][..n];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += v * b;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[self.rows, n]).expect("shape computed above")
    }

    /// Dense × sparseᵀ product: `lhs [m, k] × (self [n, k])ᵀ → [m, n]`.
    ///
    /// This is the inference-side kernel: with `self` a CSR weight matrix
    /// `[out, in]` (the same layout `Linear` and `Conv2d` store) and `lhs`
    /// a batch of activations (or im2col patches) `[m, in]`, it computes
    /// `lhs · Wᵀ` without materializing the transpose. Each output element
    /// `out[i, j]` is a single dot product over row `j`'s stored entries,
    /// accumulated in `k`-ascending index order, so results are
    /// bit-identical at any thread count (parallelism is over disjoint
    /// blocks of `lhs` rows).
    ///
    /// # Panics
    ///
    /// Panics if `lhs` is not 2-D or `lhs.dim(1) != self.cols()`.
    pub fn dense_matmul_transposed(&self, lhs: &Tensor) -> Tensor {
        assert_eq!(lhs.shape().ndim(), 2, "lhs must be 2-D");
        assert_eq!(
            lhs.dim(1),
            self.cols,
            "shared dimensions differ: {}x{} × ({}x{})ᵀ",
            lhs.dim(0),
            lhs.dim(1),
            self.rows,
            self.cols
        );
        let m = lhs.dim(0);
        let n = self.rows;
        let k = self.cols;
        let mut out = vec![0.0f32; m * n];
        if out.is_empty() {
            return Tensor::from_vec(out, &[m, n]).expect("shape computed above");
        }
        let a = lhs.data();
        // One task handles a block of lhs rows; per row the whole CSR
        // matrix is walked, so work per row ≈ nnz.
        let rows_per = (32_768 / self.nnz().max(1)).clamp(1, m.max(1));
        sb_runtime::for_each_chunk_mut(&mut out, rows_per * n, |ci, block| {
            let row0 = ci * rows_per;
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let (lo, hi) = (self.row_ptr[j] as usize, self.row_ptr[j + 1] as usize);
                    let mut acc = 0.0f32;
                    for t in lo..hi {
                        acc += self.values[t] * a_row[self.col_idx[t] as usize];
                    }
                    *o = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, n]).expect("shape computed above")
    }

    /// Sparse × vector product: `self [m, k] × v [k] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.numel() != self.cols()`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(v.numel(), self.cols, "vector length mismatch");
        let mut out = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0f32;
            for k in lo..hi {
                acc += self.values[k] * v.data()[self.col_idx[k] as usize];
            }
            out[r] = acc;
        }
        Tensor::from_vec(out, &[self.rows]).expect("shape computed above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(&[rows, cols], |_| {
            if rng.coin(density) {
                rng.normal()
            } else {
                0.0
            }
        })
    }

    #[test]
    fn round_trip_preserves_dense() {
        let dense = random_sparse(7, 11, 0.3, 1);
        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.to_dense(), dense);
        assert_eq!(sparse.nnz(), dense.count_nonzero());
    }

    #[test]
    fn sparse_matmul_matches_dense_matmul() {
        let mut rng = Rng::seed_from(2);
        let w = random_sparse(8, 12, 0.25, 3);
        let x = Tensor::rand_normal(&[12, 5], 0.0, 1.0, &mut rng);
        let sparse = SparseMatrix::from_dense(&w);
        let fast = sparse.matmul_dense(&x);
        let slow = w.matmul(&x);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = Rng::seed_from(4);
        let w = random_sparse(6, 9, 0.4, 5);
        let v = Tensor::rand_normal(&[9], 0.0, 1.0, &mut rng);
        let sparse = SparseMatrix::from_dense(&w);
        let fast = sparse.matvec(&v);
        let slow = w.matvec(&v);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_matrix_works() {
        let dense = Tensor::zeros(&[3, 4]);
        let sparse = SparseMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.density(), 0.0);
        let x = Tensor::ones(&[4, 2]);
        assert_eq!(sparse.matmul_dense(&x), Tensor::zeros(&[3, 2]));
    }

    #[test]
    fn density_and_storage_accounting() {
        let dense = random_sparse(10, 10, 0.5, 6);
        let sparse = SparseMatrix::from_dense(&dense);
        let expected_density = dense.count_nonzero() as f64 / 100.0;
        assert!((sparse.density() - expected_density).abs() < 1e-12);
        assert_eq!(
            sparse.storage_bytes(),
            sparse.nnz() * 8 + (10 + 1) * 4
        );
    }

    #[test]
    fn zero_element_shapes_have_zero_density() {
        // Regression: rows*cols == 0 used to yield NaN density.
        for dims in [[0usize, 5], [5, 0], [0, 0]] {
            let sparse = SparseMatrix::from_dense(&Tensor::zeros(&dims));
            assert_eq!(sparse.rows(), dims[0]);
            assert_eq!(sparse.cols(), dims[1]);
            assert_eq!(sparse.nnz(), 0);
            assert_eq!(sparse.density(), 0.0, "density must be 0.0, not NaN");
            assert_eq!(sparse.to_dense(), Tensor::zeros(&dims));
        }
        // Degenerate products stay well-formed.
        let wide = SparseMatrix::from_dense(&Tensor::zeros(&[0, 5]));
        assert_eq!(wide.matmul_dense(&Tensor::ones(&[5, 3])), Tensor::zeros(&[0, 3]));
        let tall = SparseMatrix::from_dense(&Tensor::zeros(&[5, 0]));
        assert_eq!(tall.matmul_dense(&Tensor::zeros(&[0, 3])), Tensor::zeros(&[5, 3]));
        assert_eq!(
            wide.dense_matmul_transposed(&Tensor::ones(&[2, 5])),
            Tensor::zeros(&[2, 0])
        );
    }

    #[test]
    fn dense_matmul_transposed_matches_explicit() {
        let mut rng = Rng::seed_from(8);
        let w = random_sparse(10, 7, 0.3, 9);
        let x = Tensor::rand_normal(&[4, 7], 0.0, 1.0, &mut rng);
        let sparse = SparseMatrix::from_dense(&w);
        let fast = sparse.dense_matmul_transposed(&x);
        let slow = x.matmul_transposed(&w);
        assert_eq!(fast.dims(), &[4, 10]);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "shared dimensions differ")]
    fn dense_matmul_transposed_rejects_mismatch() {
        let sparse = SparseMatrix::from_dense(&Tensor::ones(&[2, 3]));
        sparse.dense_matmul_transposed(&Tensor::ones(&[2, 4]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_product_panics() {
        let sparse = SparseMatrix::from_dense(&Tensor::ones(&[2, 3]));
        sparse.matmul_dense(&Tensor::ones(&[4, 2]));
    }

    #[test]
    fn json_round_trip() {
        let sparse = SparseMatrix::from_dense(&random_sparse(4, 4, 0.5, 7));
        let json = sb_json::to_string(&sparse).unwrap();
        let back: SparseMatrix = sb_json::from_str(&json).unwrap();
        assert_eq!(back, sparse);
    }
}
