//! Matrix multiplication kernels.
//!
//! A cache-friendly `ikj` loop order with a transposed-operand variant; no
//! unsafe, no SIMD intrinsics. These are the hot kernels for both linear
//! layers and (via im2col) convolutions.
//!
//! The kernels parallelize over **disjoint blocks of output rows** via
//! `sb_runtime::for_each_chunk_mut`. Each output element is still
//! accumulated by exactly one task in the exact `kk`-ascending order the
//! sequential loop uses, so results are bit-identical for any
//! `SB_RUNTIME_THREADS`, including 1 (which runs the same blocks inline).

use crate::tensor::Tensor;

/// Output rows per parallel task, targeting ~32k mul-adds per task so
/// tiny matrices stay single-chunk (inline) and large ones split evenly.
/// Depends only on the problem shape — never on the worker count — which
/// is what keeps chunk boundaries (and thus results) deterministic.
fn rows_per_task(work_per_row: usize, m: usize) -> usize {
    (32_768 / work_per_row.max(1)).clamp(1, m.max(1))
}

impl Tensor {
    /// Matrix product of two 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        let rows_per = rows_per_task(k * n, m);
        // ikj order: the innermost loop walks both `b` and `out` rows
        // contiguously, which is what keeps this usable on CPU.
        sb_runtime::for_each_chunk_mut(&mut out, rows_per * n, |ci, block| {
            let row0 = ci * rows_per;
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let i = row0 + r;
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[m, n]).expect("shape computed above")
    }

    /// `self × rhsᵀ` for 2-D tensors: `[m, k] × ([n, k])ᵀ → [m, n]`.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose2())` without materializing
    /// the transpose; used by backward passes.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_transposed(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_transposed lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul_transposed rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul_transposed shared dimensions differ: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        let rows_per = rows_per_task(k * n, m);
        sb_runtime::for_each_chunk_mut(&mut out, rows_per * n, |ci, block| {
            let row0 = ci * rows_per;
            for (r, out_row) in block.chunks_mut(n).enumerate() {
                let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, n]).expect("shape computed above")
    }

    /// `selfᵀ × rhs` for 2-D tensors: `([k, m])ᵀ × [k, n] → [m, n]`.
    ///
    /// Used to compute weight gradients (`xᵀ · dy`) without materializing
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the leading dimensions differ.
    pub fn transposed_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "transposed_matmul lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "transposed_matmul rhs must be 2-D");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "transposed_matmul leading dimensions differ: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = rhs.data();
        let rows_per = rows_per_task(k * n, m);
        // Each task owns a block of output rows and walks `kk` ascending,
        // reading `a` column-wise — the same per-element accumulation
        // order as the sequential kk-outer loop, restricted to its rows.
        sb_runtime::for_each_chunk_mut(&mut out, rows_per * n, |ci, block| {
            let row0 = ci * rows_per;
            for kk in 0..k {
                let b_row = &b[kk * n..(kk + 1) * n];
                for (r, out_row) in block.chunks_mut(n).enumerate() {
                    let av = a[kk * m + row0 + r];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[m, n]).expect("shape computed above")
    }

    /// Matrix–vector product `[m, k] × [k] → [m]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or dimensions are incompatible.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec lhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(v.numel(), k, "matvec dimensions differ");
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data()[i * k..(i + 1) * k]
                .iter()
                .zip(v.data())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Tensor::from_vec(out, &[m]).expect("shape computed above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_transposed_matches_explicit() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.5).collect(), &[4, 3]).unwrap();
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transpose2());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transposed_matmul_matches_explicit() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.25).collect(), &[3, 4]).unwrap();
        let fast = a.transposed_matmul(&b);
        let slow = a.transpose2().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshape(&[3, 1]).unwrap());
        assert_eq!(mv.data(), mm.data());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_incompatible() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_skips_zeros_correctly() {
        // Sparse lhs exercises the `aik == 0` fast path.
        let a = Tensor::from_vec(vec![0.0, 2.0, 0.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&b).data(), &[2.0, 2.0, 0.0, 0.0]);
    }
}
