//! Elementwise and scalar operations on [`Tensor`].
//!
//! All binary elementwise operations require identical shapes (there is no
//! general broadcasting; the one deliberate exception is
//! [`Tensor::add_row_vector`], which is what bias addition needs).

use crate::tensor::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    /// Elementwise binary map: `out[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, mut f: impl FnMut(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op requires equal shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims()).expect("shape preserved")
    }

    /// Elementwise unary map: `out[i] = f(self[i])`.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.dims()).expect("shape preserved")
    }

    /// In-place elementwise unary map.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// In-place `self[i] += alpha * other[i]` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_in_place(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy requires equal shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// In-place elementwise multiply: `self[i] *= other[i]`.
    ///
    /// This is the mask-application primitive used by pruning.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_in_place(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise multiply requires equal shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a *= b;
        }
    }

    /// In-place multiply by a scalar.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in self.data_mut() {
            *v *= alpha;
        }
    }

    /// Returns `self * alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// Returns `self + alpha` (scalar offset).
    pub fn offset(&self, alpha: f32) -> Tensor {
        self.map(|v| v + alpha)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise clamp to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Adds a length-`C` row vector to every row of an `[N, C]` tensor.
    ///
    /// This is the broadcast pattern needed by bias addition in linear
    /// layers.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or `vector` length differs from the
    /// row width.
    pub fn add_row_vector(&self, vector: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "add_row_vector requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        assert_eq!(
            vector.numel(),
            c,
            "row vector length {} does not match row width {c}",
            vector.numel()
        );
        let mut out = self.clone();
        for i in 0..n {
            for j in 0..c {
                out.data_mut()[i * c + j] += vector.data()[j];
            }
        }
        out
    }

    /// Dot product with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "dot requires equal shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|&v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }
}

macro_rules! impl_binary_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
            }
        }
        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binary_op!(Add, add, +);
impl_binary_op!(Sub, sub, -);
impl_binary_op!(Mul, mul, *);
impl_binary_op!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|v| -v)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn mismatched_shapes_panic() {
        let _ = &t(&[1.0]) + &t(&[1.0, 2.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.offset(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
        assert_eq!((-&a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.add_scaled_in_place(&t(&[2.0, 3.0]), 0.5);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn mask_multiply_zeroes_entries() {
        let mut w = t(&[1.0, 2.0, 3.0]);
        w.mul_in_place(&t(&[1.0, 0.0, 1.0]));
        assert_eq!(w.data(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = t(&[10.0, 20.0]);
        let y = x.add_row_vector(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn clamp_limits_range() {
        assert_eq!(t(&[-2.0, 0.5, 3.0]).clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn map_in_place_applies() {
        let mut a = t(&[1.0, 4.0]);
        a.map_in_place(|v| v * v);
        assert_eq!(a.data(), &[1.0, 16.0]);
    }
}
