//! Convolution lowering: `im2col` / `col2im` and output-geometry math.
//!
//! Convolutions in `sb-nn` are computed as matrix products over patch
//! matrices: the input `[N, C, H, W]` is unfolded into a
//! `[N·H_out·W_out, C·KH·KW]` patch matrix (`im2col`), multiplied by the
//! reshaped kernel, and the backward pass folds gradients back with
//! `col2im`. This keeps the only nontrivial indexing logic in one place.

use crate::tensor::Tensor;
use sb_json::json_struct;

/// Static geometry of a 2-D convolution (or pooling) window.
///
/// Padding is specified per axis (`padding_h` above/below, `padding_w`
/// left/right), so asymmetric same-padding schemes and their gradients
/// can be exercised directly; use [`Conv2dGeometry::square`] for the
/// common symmetric case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding above and below (vertical axis).
    pub padding_h: usize,
    /// Zero padding left and right (horizontal axis).
    pub padding_w: usize,
}

json_struct!(Conv2dGeometry {
    in_channels,
    in_h,
    in_w,
    kernel_h,
    kernel_w,
    stride,
    padding_h,
    padding_w,
});

impl Conv2dGeometry {
    /// Geometry with a square kernel and the same padding on both axes —
    /// the overwhelmingly common case in the model zoo.
    pub fn square(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding_h: padding,
            padding_w: padding,
        }
    }

    /// Output height after the window sweep.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit the input.
    pub fn out_h(&self) -> usize {
        out_extent(self.in_h, self.kernel_h, self.stride, self.padding_h)
    }

    /// Output width after the window sweep.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit the input.
    pub fn out_w(&self) -> usize {
        out_extent(self.in_w, self.kernel_w, self.stride, self.padding_w)
    }

    /// Patch length: `in_channels · kernel_h · kernel_w`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

fn out_extent(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel,
        "kernel {kernel} does not fit input {input} with padding {padding}"
    );
    assert!(stride > 0, "stride must be positive");
    (padded - kernel) / stride + 1
}

/// Unfolds a batched image tensor `[N, C, H, W]` into a patch matrix
/// `[N·out_h·out_w, C·kh·kw]`.
///
/// Row `(n·out_h + oy)·out_w + ox` holds the receptive field of output
/// pixel `(oy, ox)` of sample `n`, channel-major. Out-of-bounds (padding)
/// positions read as zero.
///
/// # Panics
///
/// Panics if `input` is not 4-D or its dims disagree with `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(input.shape().ndim(), 4, "im2col requires [N, C, H, W] input");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    assert_eq!(c, geom.in_channels, "channel mismatch");
    assert_eq!(h, geom.in_h, "height mismatch");
    assert_eq!(w, geom.in_w, "width mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = geom.patch_len();
    let mut out = vec![0.0f32; n * oh * ow * patch];
    let data = input.data();
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let stride = geom.stride;
    let (pad_y, pad_x) = (geom.padding_h as isize, geom.padding_w as isize);

    // Each sample's patch rows form one disjoint output block, so the
    // unfold parallelizes over sample groups; every element is written by
    // exactly one task, making the result worker-count independent.
    let sample_block = oh * ow * patch;
    let per = (32_768 / sample_block.max(1)).clamp(1, n.max(1));
    sb_runtime::for_each_chunk_mut(&mut out, per * sample_block, |chunk, block| {
        for (si, sample) in block.chunks_mut(sample_block).enumerate() {
            let ni = chunk * per + si;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (oy * ow + ox) * patch;
                    let base_y = (oy * stride) as isize - pad_y;
                    let base_x = (ox * stride) as isize - pad_x;
                    for ci in 0..c {
                        let chan = (ni * c + ci) * h * w;
                        for ky in 0..kh {
                            let iy = base_y + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue; // row stays zero (padding)
                            }
                            let src_row = chan + iy as usize * w;
                            let dst = row + (ci * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = base_x + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                sample[dst + kx] = data[src_row + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n * oh * ow, patch]).expect("shape computed above")
}

/// Folds a patch-matrix gradient `[N·out_h·out_w, C·kh·kw]` back into an
/// image gradient `[N, C, H, W]`, accumulating overlapping contributions.
///
/// This is the exact adjoint of [`im2col`]: positions that were read `k`
/// times during unfolding receive the sum of their `k` gradient copies.
///
/// # Panics
///
/// Panics if `cols` dims disagree with `geom` for batch size `n`.
pub fn col2im(cols: &Tensor, n: usize, geom: &Conv2dGeometry) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let patch = geom.patch_len();
    assert_eq!(
        cols.dims(),
        &[n * oh * ow, patch],
        "col2im input shape mismatch"
    );
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let stride = geom.stride;
    let (pad_y, pad_x) = (geom.padding_h as isize, geom.padding_w as isize);

    // Overlapping windows only collide *within* a sample, never across
    // samples, so the fold parallelizes over sample groups; within each
    // sample the accumulation order matches the sequential loop exactly.
    let sample_block = c * h * w;
    let per = (32_768 / sample_block.max(1)).clamp(1, n.max(1));
    sb_runtime::for_each_chunk_mut(&mut out, per * sample_block, |chunk, block| {
        for (si, sample) in block.chunks_mut(sample_block).enumerate() {
            let ni = chunk * per + si;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((ni * oh + oy) * ow + ox) * patch;
                    let base_y = (oy * stride) as isize - pad_y;
                    let base_x = (ox * stride) as isize - pad_x;
                    for ci in 0..c {
                        let chan = ci * h * w;
                        for ky in 0..kh {
                            let iy = base_y + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_row = chan + iy as usize * w;
                            let src = row + (ci * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = base_x + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                sample[dst_row + ix as usize] += data[src + kx];
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, h, w]).expect("shape computed above")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry::square(c, h, w, k, s, p)
    }

    #[test]
    fn output_extent_math() {
        assert_eq!(geom(1, 5, 5, 3, 1, 0).out_h(), 3);
        assert_eq!(geom(1, 5, 5, 3, 1, 1).out_h(), 5);
        assert_eq!(geom(1, 6, 6, 3, 2, 1).out_h(), 3);
        assert_eq!(geom(1, 4, 4, 1, 1, 0).out_h(), 4);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: patch matrix is just a flattened reordering.
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let g = geom(2, 2, 2, 1, 1, 0);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[4, 2]);
        // Row for pixel (0,0): channels [x[0,0,0,0], x[0,1,0,0]] = [0, 4]
        assert_eq!(cols.data()[0..2], [0.0, 4.0]);
    }

    #[test]
    fn im2col_known_patch() {
        let x = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[4, 4]);
        // Top-left patch is [1,2,4,5].
        assert_eq!(cols.data()[0..4], [1.0, 2.0, 4.0, 5.0]);
        // Bottom-right patch is [5,6,8,9].
        assert_eq!(cols.data()[12..16], [5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_reads_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = geom(1, 2, 2, 3, 1, 1);
        let cols = im2col(&x, &g);
        // Output pixel (0, 0) has top row and left column padded out.
        let first = &cols.data()[0..9];
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y: the defining
        // property of an adjoint, which is exactly what backprop requires.
        let g = geom(2, 4, 4, 3, 1, 1);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| ((i * 37 % 11) as f32) - 5.0);
        let cols_shape = [g.out_h() * g.out_w(), g.patch_len()];
        let y = Tensor::from_fn(&cols_shape, |i| ((i * 13 % 7) as f32) - 3.0);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.flatten().dot(&col2im(&y, 1, &g).flatten());
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // With a 2x2 kernel stride 1 on 3x3 input, the center pixel is
        // covered by all 4 patches.
        let g = geom(1, 3, 3, 2, 1, 0);
        let cols = Tensor::ones(&[4, 4]);
        let img = col2im(&cols, 1, &g);
        assert_eq!(img.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(img.at(&[0, 0, 0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_panics() {
        geom(1, 2, 2, 5, 1, 0).out_h();
    }

    #[test]
    fn multi_batch_rows_are_independent() {
        let x0 = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let x1 = Tensor::from_fn(&[1, 1, 3, 3], |i| (i as f32) * 10.0);
        let mut both = Vec::new();
        both.extend_from_slice(x0.data());
        both.extend_from_slice(x1.data());
        let x = Tensor::from_vec(both, &[2, 1, 3, 3]).unwrap();
        let g = geom(1, 3, 3, 3, 1, 0);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[2, 9]);
        assert_eq!(cols.row(0).data(), x0.data());
        assert_eq!(cols.row(1).data(), x1.data());
    }

    #[test]
    fn asymmetric_padding_changes_only_its_axis() {
        let mut g = geom(1, 5, 7, 3, 1, 0);
        g.padding_h = 1;
        assert_eq!(g.out_h(), 5);
        assert_eq!(g.out_w(), 5);
        g.padding_w = 2;
        assert_eq!(g.out_w(), 9);
    }

    #[test]
    fn asymmetric_padding_adjoint_holds() {
        let mut g = geom(1, 4, 5, 3, 2, 1);
        g.padding_w = 0;
        let x = Tensor::from_fn(&[1, 1, 4, 5], |i| ((i * 29 % 13) as f32) - 6.0);
        let cols_shape = [g.out_h() * g.out_w(), g.patch_len()];
        let y = Tensor::from_fn(&cols_shape, |i| ((i * 17 % 5) as f32) - 2.0);
        let lhs = im2col(&x, &g).dot(&y);
        let rhs = x.flatten().dot(&col2im(&y, 1, &g).flatten());
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn geometry_json_round_trip() {
        let mut g = geom(3, 8, 8, 5, 2, 2);
        g.padding_w = 1;
        let text = sb_json::to_string(&g).unwrap();
        let back: Conv2dGeometry = sb_json::from_str(&text).unwrap();
        assert_eq!(back, g);
    }
}
