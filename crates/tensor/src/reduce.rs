//! Reductions and softmax-style row operations.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(self.numel() > 0, "min of empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data().iter().enumerate() {
            if v > self.data()[best] {
                best = i;
            }
        }
        best
    }

    /// For a 2-D `[n, c]` tensor, the per-row argmax as a `Vec` of column
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().ndim(), 2, "argmax_rows requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        (0..n)
            .map(|i| {
                let row = &self.data()[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// For a 2-D `[n, c]` tensor, the column indices of the `k` largest
    /// entries per row, in descending order of value.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `k` exceeds the row width.
    pub fn topk_rows(&self, k: usize) -> Vec<Vec<usize>> {
        assert_eq!(self.shape().ndim(), 2, "topk_rows requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        assert!(k <= c, "k={k} exceeds row width {c}");
        // Per-row sorts are independent; fan out over fixed 64-row blocks
        // and flatten in block order (row order is preserved exactly).
        sb_runtime::map_chunks(n, 64, |rows| {
            rows.map(|i| {
                let row = &self.data()[i * c..(i + 1) * c];
                let mut idx: Vec<usize> = (0..c).collect();
                idx.sort_by(|&a, &b| {
                    row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                idx.truncate(k);
                idx
            })
            .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Sum over axis 0 of a 2-D tensor: `[n, c] → [c]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "sum_axis0 requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; c];
        for i in 0..n {
            for (o, &v) in out.iter_mut().zip(&self.data()[i * c..(i + 1) * c]) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[c]).expect("shape computed above")
    }

    /// Numerically stable row-wise softmax of a 2-D `[n, c]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "softmax_rows requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        for i in 0..n {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        out
    }

    /// Numerically stable row-wise log-softmax of a 2-D `[n, c]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn log_softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "log_softmax_rows requires 2-D input");
        let (n, c) = (self.dim(0), self.dim(1));
        let mut out = self.clone();
        for i in 0..n {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_z = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln() + m;
            for v in row.iter_mut() {
                *v -= log_z;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max_min() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 6.0]);
        assert_eq!(t.sum(), 8.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 9.0, 3.0], &[2, 2]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn topk_rows_descending() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.3], &[1, 4]).unwrap();
        assert_eq!(t.topk_rows(2), vec![vec![1, 2]]);
    }

    #[test]
    fn sum_axis0_column_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_axis0().data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = t.softmax_rows();
        for i in 0..2 {
            let row_sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.offset(100.0);
        let (sa, sb) = (a.softmax_rows(), b.softmax_rows());
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.5, 2.0], &[1, 3]).unwrap();
        let ls = t.log_softmax_rows();
        let s = t.softmax_rows();
        for (l, p) in ls.data().iter().zip(s.data()) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1000.0], &[1, 2]).unwrap();
        let s = t.softmax_rows();
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }
}
