use sb_json::json_struct;
use std::fmt;

/// An owned, validated tensor shape (row-major dimension list).
///
/// `Shape` is a thin wrapper around `Vec<usize>` that precomputes the
/// element count and offers stride arithmetic. It exists so that shape
/// handling logic (broadcast checks, flat indexing) lives in one audited
/// place rather than being re-derived in every kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

json_struct!(Shape { dims });

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// Zero-sized dimensions are allowed (they denote empty tensors); the
    /// empty dimension list denotes a scalar.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    ///
    /// The last dimension has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut offset = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} with size {d}");
            offset += i * strides[axis];
        }
        offset
    }

    /// Size of one axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn zero_dim_is_empty() {
        assert_eq!(Shape::new(&[0, 4]).numel(), 0);
    }
}
