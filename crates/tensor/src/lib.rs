#![warn(missing_docs)]

//! Dense `f32` tensor substrate for `shrinkbench-rs`.
//!
//! This crate provides the numerical foundation that the neural-network
//! stack ([`sb-nn`]) is built on: a contiguous, row-major, n-dimensional
//! [`Tensor`] with the algebra needed to train and prune convolutional
//! networks on a CPU — elementwise operations, matrix multiplication,
//! `im2col`/`col2im` convolution lowering, reductions, and deterministic
//! random initialization.
//!
//! The design goal is *auditability over peak speed*: every kernel is a
//! straightforward loop nest that can be verified against the reference
//! formula, because the experiments built on top (the ShrinkBench
//! reproduction) care about correctness of gradients and pruning masks, not
//! about GPU-class throughput.
//!
//! # Example
//!
//! ```
//! use sb_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), sb_tensor::TensorError>(())
//! ```
//!
//! [`sb-nn`]: https://docs.rs/sb-nn

mod conv;
mod error;
mod init;
mod linalg;
mod ops;
mod reduce;
mod shape;
mod sparse;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use init::Rng;
pub use shape::Shape;
pub use sparse::SparseMatrix;
pub use tensor::Tensor;
