//! Bench-backed checks that compiled sparse formats deliver *realized*
//! speedup, not just a better multiply-add ratio.
//!
//! These are wall-clock assertions, so the margins are deliberately
//! generous: release-mode runs show ~10× (CSR at 16×) and ~4× (shrunk
//! at 4× structured); we only assert the compiled model is clearly
//! faster than its dense-compiled twin on the same batch. Medians of
//! several runs reject scheduler noise.

mod common;

use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_metrics::RealizedProfile;
use sb_tensor::{Rng, Tensor};

fn compile_pair(model: &sb_nn::models::Model, force: Option<ExecFormat>) -> (CompiledModel, CompiledModel) {
    let candidate = CompiledModel::compile(
        model,
        &CompileOptions {
            force_format: force,
            ..CompileOptions::default()
        },
    );
    let baseline = CompiledModel::compile(
        model,
        &CompileOptions {
            force_format: Some(ExecFormat::Dense),
            ..CompileOptions::default()
        },
    );
    (candidate, baseline)
}

fn measured_speedup(candidate: &CompiledModel, baseline: &CompiledModel, x: &Tensor) -> f64 {
    let profile = RealizedProfile::measure(
        5,
        candidate.storage_bytes(),
        || {
            std::hint::black_box(candidate.forward(x));
        },
        || {
            std::hint::black_box(baseline.forward(x));
        },
    );
    assert!(profile.latency_us > 0.0 && profile.baseline_latency_us > 0.0);
    profile.realized_speedup
}

#[test]
fn csr_compiled_linear_model_beats_dense_at_16x() {
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    common::prune_global_magnitude(&mut model, 16.0);

    let (candidate, baseline) = compile_pair(&model, Some(ExecFormat::Csr));
    assert!(
        candidate.plans().iter().any(|p| p.format == ExecFormat::Csr),
        "16x-pruned linear layers should compile to CSR"
    );
    let x = Tensor::rand_normal(&[32, 256], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&candidate, &baseline, &x);
    assert!(
        speedup > 1.3,
        "CSR at 16x unstructured should clearly beat dense, got {speedup:.2}x"
    );
}

#[test]
fn shrunk_dense_structured_model_beats_dense_at_4x() {
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    common::prune_filters_l1(&mut model, 4.0);

    // Default cost-model compilation: structured masks should engage the
    // shrunk-dense path on their own.
    let (candidate, baseline) = compile_pair(&model, None);
    assert!(
        candidate
            .plans()
            .iter()
            .any(|p| p.format == ExecFormat::ShrunkDense),
        "4x filter-pruned convs should compile to shrunk-dense"
    );
    let x = Tensor::rand_normal(&[32, 1, 16, 16], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&candidate, &baseline, &x);
    assert!(
        speedup > 1.2,
        "shrunk-dense at 4x structured should clearly beat dense, got {speedup:.2}x"
    );
}
