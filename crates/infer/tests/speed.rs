//! Bench-backed checks that compiled sparse formats deliver *realized*
//! speedup, not just a better multiply-add ratio.
//!
//! These are wall-clock assertions, so the margins are deliberately
//! generous: release-mode runs show ~10× (CSR at 16×) and ~4× (shrunk
//! at 4× structured); we only assert the compiled model is clearly
//! faster than its dense-compiled twin on the same batch. Medians of
//! several runs reject scheduler noise.

mod common;

use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_metrics::RealizedProfile;
use sb_tensor::{Rng, Tensor};
use std::sync::Mutex;

/// Wall-clock tests must not time-share the CPU with each other: the
/// test harness runs `#[test]`s on parallel threads, and a measurement
/// taken while a sibling saturates the pool is noise. Every test body
/// takes this lock first.
static SERIAL: Mutex<()> = Mutex::new(());

fn compile_pair(model: &sb_nn::models::Model, force: Option<ExecFormat>) -> (CompiledModel, CompiledModel) {
    let candidate = CompiledModel::compile(
        model,
        &CompileOptions {
            force_format: force,
            ..CompileOptions::default()
        },
    );
    let baseline = CompiledModel::compile(
        model,
        &CompileOptions {
            force_format: Some(ExecFormat::Dense),
            ..CompileOptions::default()
        },
    );
    (candidate, baseline)
}

fn measured_speedup(candidate: &CompiledModel, baseline: &CompiledModel, x: &Tensor) -> f64 {
    let profile = RealizedProfile::measure(
        5,
        candidate.storage_bytes(),
        || {
            std::hint::black_box(candidate.forward(x));
        },
        || {
            std::hint::black_box(baseline.forward(x));
        },
    );
    assert!(profile.latency_us > 0.0 && profile.baseline_latency_us > 0.0);
    profile.realized_speedup
}

#[test]
fn csr_compiled_linear_model_beats_dense_at_16x() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    common::prune_global_magnitude(&mut model, 16.0);

    let (candidate, baseline) = compile_pair(&model, Some(ExecFormat::Csr));
    assert!(
        candidate.plans().iter().any(|p| p.format == ExecFormat::Csr),
        "16x-pruned linear layers should compile to CSR"
    );
    let x = Tensor::rand_normal(&[32, 256], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&candidate, &baseline, &x);
    assert!(
        speedup > 1.3,
        "CSR at 16x unstructured should clearly beat dense, got {speedup:.2}x"
    );
}

#[test]
fn bsr_compiled_conv_model_beats_dense_at_16x() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    common::prune_global_magnitude(&mut model, 16.0);

    let (candidate, baseline) = compile_pair(&model, Some(ExecFormat::Bsr));
    assert!(
        candidate.plans().iter().any(|p| p.format == ExecFormat::Bsr),
        "16x-pruned conv layers should compile to BSR when forced"
    );
    let x = Tensor::rand_normal(&[32, 1, 16, 16], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&candidate, &baseline, &x);
    assert!(
        speedup > 1.3,
        "BSR conv path at 16x unstructured should clearly beat dense, got {speedup:.2}x"
    );
}

/// The format-crossover claim from the `format-crossover` artifact,
/// pinned as a regression floor: at 2× unstructured (≈50% density) the
/// BSR conv kernels beat the CSR conv kernels on wall-clock — CSR pays
/// an index load per stored nonzero while BSR streams vector lanes.
/// Release runs show ~1.4×; the floor is generous for shared hosts.
///
/// Optimized-build only: the advantage *is* vectorization. At 50%
/// density a random mask leaves ~94% of 4-wide blocks live, so BSR
/// multiplies nearly every lane while CSR touches half — unoptimized,
/// raw multiply count wins and the comparison inverts. `scripts/ci.sh`
/// runs this suite in release so the floor still gates merges.
#[test]
#[cfg_attr(debug_assertions, ignore = "BSR's vector-lane win over CSR only exists optimized")]
fn bsr_beats_csr_on_conv_model_at_2x() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    common::prune_global_magnitude(&mut model, 2.0);

    let bsr = CompiledModel::compile(
        &model,
        &CompileOptions {
            force_format: Some(ExecFormat::Bsr),
            ..CompileOptions::default()
        },
    );
    let csr = CompiledModel::compile(
        &model,
        &CompileOptions {
            force_format: Some(ExecFormat::Csr),
            ..CompileOptions::default()
        },
    );
    let x = Tensor::rand_normal(&[32, 1, 16, 16], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&bsr, &csr, &x);
    assert!(
        speedup > 1.05,
        "BSR should beat CSR on a conv model at 2x unstructured, got {speedup:.2}x"
    );
}

#[test]
fn shrunk_dense_structured_model_beats_dense_at_4x() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    common::prune_filters_l1(&mut model, 4.0);

    // Default cost-model compilation: structured masks should engage the
    // shrunk-dense path on their own.
    let (candidate, baseline) = compile_pair(&model, None);
    assert!(
        candidate
            .plans()
            .iter()
            .any(|p| p.format == ExecFormat::ShrunkDense),
        "4x filter-pruned convs should compile to shrunk-dense"
    );
    let x = Tensor::rand_normal(&[32, 1, 16, 16], 0.0, 1.0, &mut rng);
    let speedup = measured_speedup(&candidate, &baseline, &x);
    assert!(
        speedup > 1.2,
        "shrunk-dense at 4x structured should clearly beat dense, got {speedup:.2}x"
    );
}
