//! Shared fixtures for the sb-infer integration suites: the model zoo
//! and minimal in-repo pruning helpers.
//!
//! The pruning helpers reimplement (in ~30 lines) the two strategies the
//! engine specializes for — global magnitude (unstructured) and filter-L1
//! (structured) — so these suites do not need the full `shrinkbench`
//! strategy machinery, which lives downstream of this crate.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use sb_nn::{models, models::Model, Network, ParamKind};
use sb_tensor::{Rng, Tensor};

/// Fresh instances of every architecture in `sb_nn::models`, sized small
/// enough that the full parity matrix stays fast.
pub fn zoo() -> Vec<(&'static str, Model)> {
    let mut rng = Rng::seed_from(0xBEEF);
    vec![
        ("lenet_300_100", models::lenet_300_100(256, 10, &mut rng)),
        ("lenet5", models::lenet5(1, 16, 10, &mut rng)),
        ("cifar_vgg", models::cifar_vgg(3, 16, 10, 4, &mut rng)),
        (
            "cifar_vgg_variant",
            models::cifar_vgg_variant(3, 16, 10, 4, &mut rng),
        ),
        ("resnet8", models::resnet_cifar(8, 3, 16, 10, 4, &mut rng)),
        ("resnet18", models::resnet18(3, 16, 10, 4, &mut rng)),
        ("mlp", models::mlp(64, &[48, 24], 10, &mut rng)),
    ]
}

/// A deterministic input batch matching the model's expected shape.
pub fn input_for(model: &Model, n: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    let spec = model.spec();
    let dims = match sb_infer::CompiledModel::compile_specs(
        &spec,
        model.num_classes(),
        &sb_infer::CompileOptions::default(),
    )
    .input_shape()
    {
        sb_infer::FeatureShape::Flat { d } => vec![n, d],
        sb_infer::FeatureShape::Image { c, h, w } => vec![n, c, h, w],
    };
    Tensor::rand_normal(&dims, 0.0, 1.0, &mut rng)
}

/// Global magnitude pruning at `ratio`: keeps the largest-|w| fraction
/// `1/ratio` of all prunable weights, across layers.
pub fn prune_global_magnitude(model: &mut Model, ratio: f64) {
    if ratio <= 1.0 {
        return;
    }
    let mut mags: Vec<f32> = Vec::new();
    model.visit_params_ref(&mut |p| {
        if p.kind().prunable_by_default() {
            mags.extend(p.value().data().iter().map(|v| v.abs()));
        }
    });
    mags.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let keep = ((mags.len() as f64 / ratio).round() as usize).clamp(1, mags.len());
    let threshold = mags[mags.len() - keep];
    model.visit_params(&mut |p| {
        if p.kind().prunable_by_default() {
            let mask = p.value().map(|v| if v.abs() >= threshold { 1.0 } else { 0.0 });
            p.set_mask(mask);
        }
    });
}

/// Filter-L1 structured pruning at `ratio`: per conv layer, zeroes whole
/// weight rows (filters), keeping the `1/ratio` fraction with the largest
/// L1 norm (always at least one).
pub fn prune_filters_l1(model: &mut Model, ratio: f64) {
    if ratio <= 1.0 {
        return;
    }
    model.visit_params(&mut |p| {
        if p.kind() != ParamKind::ConvWeight {
            return;
        }
        let (rows, cols) = (p.value().dim(0), p.value().dim(1));
        let data = p.value().data();
        let mut by_l1: Vec<usize> = (0..rows).collect();
        by_l1.sort_by(|&a, &b| {
            let la: f32 = data[a * cols..(a + 1) * cols].iter().map(|v| v.abs()).sum();
            let lb: f32 = data[b * cols..(b + 1) * cols].iter().map(|v| v.abs()).sum();
            la.partial_cmp(&lb).expect("finite weights")
        });
        let keep = ((rows as f64 / ratio).round() as usize).clamp(1, rows);
        let mut mask = vec![1.0f32; rows * cols];
        for &r in &by_l1[..rows - keep] {
            mask[r * cols..(r + 1) * cols].fill(0.0);
        }
        p.set_mask(Tensor::from_vec(mask, &[rows, cols]).expect("mask shape"));
    });
}

/// Asserts two logit tensors agree within `tol` everywhere and produce
/// identical argmax classes.
pub fn assert_logits_close(dense: &Tensor, compiled: &Tensor, tol: f32, context: &str) {
    assert_eq!(dense.dims(), compiled.dims(), "{context}: logit shapes");
    for (i, (&a, &b)) in dense.data().iter().zip(compiled.data()).enumerate() {
        assert!(
            (a - b).abs() <= tol,
            "{context}: logit {i} diverged: dense {a} vs compiled {b}"
        );
    }
    assert_eq!(
        sb_infer::predicted_classes(dense),
        sb_infer::predicted_classes(compiled),
        "{context}: predicted classes diverged"
    );
}
