//! Property and regression suite for the BSR and bitmap weight formats,
//! on the in-repo `sb-check` harness (every failure message carries an
//! `SB_CHECK_SEED` that replays the exact case).
//!
//! Three contracts are pinned here:
//!
//! 1. **Conversion is exact.** `from_dense` → `to_dense` reproduces the
//!    source matrix verbatim for both formats, and the structural
//!    accounting (block counts, stored lanes, set bits) matches what a
//!    direct scan of the dense matrix says it should be.
//! 2. **The kernels compute the same product.** `matmul_rows` agrees
//!    with a scalar dense reference within accumulation tolerance,
//!    including all-zero rows (which must still emit their bias),
//!    single-live-block rows, and right-edge partial blocks.
//! 3. **The cost model flips formats at the right crossovers.** A
//!    synthetic single-layer sweep pins the regime structure: unpruned →
//!    Dense, extreme sparsity → CSR, short-row mid sparsity → Bitmap,
//!    block-clustered or high-occupancy sparsity → BSR, and a
//!    fully-pruned layer falls back to Dense rather than emitting an
//!    empty blocked/bitmap kernel.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng};
use sb_infer::formats::{BitmapMatrix, BsrMatrix, BSR_BLOCK_W};
use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_nn::{models::Model, Linear, Network, ParamKind, Sequential};
use sb_tensor::Tensor;

/// Pinned suite seed (sb-check convention: one suite constant per crate
/// area; the exec-format suite owns `_000A`).
const SUITE: u64 = 0x7E45_000A;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// Random weight data whose rows mix sparse, fully-zero, fully-dense,
/// and block-clustered regimes — everything the two formats specialize
/// for.
fn weight_data(rng: &mut Rng, rows: usize, cols: usize) -> Vec<f32> {
    let density = rng.uniform(0.0, 1.0) as f64;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        // 1 = fully-zero row, 2 = fully-dense row, 3 = block-clustered
        // row (whole aligned 4-blocks live or dead), else random density.
        let regime = rng.below(5);
        match regime {
            3 => {
                let mut c = 0;
                while c < cols {
                    let live = rng.coin(density);
                    for _ in 0..BSR_BLOCK_W.min(cols - c) {
                        data.push(if live { rng.uniform(-10.0, 10.0) } else { 0.0 });
                    }
                    c += BSR_BLOCK_W;
                }
            }
            _ => {
                for _ in 0..cols {
                    let v = match regime {
                        1 => 0.0,
                        2 => rng.uniform(-10.0, 10.0),
                        _ => {
                            if rng.coin(density) {
                                rng.uniform(-10.0, 10.0)
                            } else {
                                0.0
                            }
                        }
                    };
                    data.push(v);
                }
            }
        }
    }
    data
}

fn tensor_of(data: &[f32], rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(data.to_vec(), &[rows, cols]).expect("weight shape")
}

/// Scalar reference for `y = x · Wᵀ + bias` over row-major `x`.
fn dense_matmul_rows(w: &Tensor, x: &[f32], bias: &[f32]) -> Vec<f32> {
    let (rows, cols) = (w.dim(0), w.dim(1));
    let wd = w.data();
    let n = x.len() / cols;
    let mut y = vec![0.0f32; n * rows];
    for (xr, yr) in x.chunks_exact(cols).zip(y.chunks_exact_mut(rows)) {
        for (j, o) in yr.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (&wv, &xv) in wd[j * cols..(j + 1) * cols].iter().zip(xr) {
                acc += wv * xv;
            }
            *o = acc + bias[j];
        }
    }
    y
}

#[test]
fn bsr_roundtrip_is_exact_and_blocks_are_conserved() {
    check(
        "formats::bsr_roundtrip_is_exact_and_blocks_are_conserved",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(19) + 1; // exercises right-edge blocks
            (rows, cols, weight_data(rng, rows, cols))
        },
        |(rows, cols, data)| {
            let w = tensor_of(data, *rows, *cols);
            let bsr = BsrMatrix::from_dense(&w, BSR_BLOCK_W);
            prop_assert_eq!(bsr.to_dense(), w.clone());
            // Block count conservation: exactly the aligned 4-column
            // chunks that contain a nonzero, no more, no fewer.
            let expected_blocks: usize = (0..*rows)
                .map(|r| {
                    data[r * cols..(r + 1) * cols]
                        .chunks(BSR_BLOCK_W)
                        .filter(|b| b.iter().any(|&v| v != 0.0))
                        .count()
                })
                .sum();
            prop_assert_eq!(bsr.num_blocks(), expected_blocks);
            prop_assert_eq!(bsr.stored_lanes(), expected_blocks * BSR_BLOCK_W);
            let nnz = data.iter().filter(|&&v| v != 0.0).count();
            prop_assert_eq!(bsr.nnz(), nnz);
            prop_assert!(bsr.storage_bytes() >= bsr.stored_lanes() * 4);
            Ok(())
        },
    );
}

#[test]
fn bitmap_roundtrip_is_exact_and_counts_set_bits() {
    check(
        "formats::bitmap_roundtrip_is_exact_and_counts_set_bits",
        cfg(),
        |rng| {
            let rows = rng.below(8) + 1;
            let cols = rng.below(150) + 1; // crosses the 64-bit word edge
            (rows, cols, weight_data(rng, rows, cols))
        },
        |(rows, cols, data)| {
            let w = tensor_of(data, *rows, *cols);
            let bitmap = BitmapMatrix::from_dense(&w);
            prop_assert_eq!(bitmap.to_dense(), w.clone());
            let nnz = data.iter().filter(|&&v| v != 0.0).count();
            prop_assert_eq!(bitmap.nnz(), nnz);
            prop_assert_eq!(bitmap.words_per_row(), cols.div_ceil(64));
            // Dense values plus the mask: strictly more than dense alone
            // (the storage-for-compute tradeoff, reported honestly).
            prop_assert!(bitmap.storage_bytes() > rows * cols * 4);
            Ok(())
        },
    );
}

#[test]
fn format_kernels_match_dense_reference() {
    check(
        "formats::format_kernels_match_dense_reference",
        cfg(),
        |rng| {
            let rows = rng.below(6) + 1;
            let cols = rng.below(19) + 1;
            let n = rng.below(4) + 1;
            let w = weight_data(rng, rows, cols);
            let x: Vec<f32> = (0..n * cols).map(|_| rng.uniform(-5.0, 5.0)).collect();
            let bias: Vec<f32> = (0..rows).map(|_| rng.uniform(-2.0, 2.0)).collect();
            ((rows, cols), w, x, bias)
        },
        |((rows, cols), wdata, x, bias)| {
            let w = tensor_of(wdata, *rows, *cols);
            let expected = dense_matmul_rows(&w, x, bias);
            let bsr = BsrMatrix::from_dense(&w, BSR_BLOCK_W);
            let mut y = vec![0.0f32; expected.len()];
            bsr.matmul_rows(x, bias, &mut y);
            for (i, (&e, &g)) in expected.iter().zip(&y).enumerate() {
                prop_assert!(
                    (e - g).abs() <= 1e-4 * (1.0 + e.abs()),
                    "bsr output {} diverged: {} vs {}",
                    i,
                    e,
                    g
                );
            }
            let bitmap = BitmapMatrix::from_dense(&w);
            y.fill(0.0);
            bitmap.matmul_rows(x, bias, &mut y);
            for (i, (&e, &g)) in expected.iter().zip(&y).enumerate() {
                prop_assert!(
                    (e - g).abs() <= 1e-4 * (1.0 + e.abs()),
                    "bitmap output {} diverged: {} vs {}",
                    i,
                    e,
                    g
                );
            }
            Ok(())
        },
    );
}

// --- Degenerate cases -------------------------------------------------

#[test]
fn all_zero_weight_stores_nothing_and_emits_bias() {
    let w = Tensor::zeros(&[3, 10]);
    let bsr = BsrMatrix::from_dense(&w, BSR_BLOCK_W);
    assert_eq!(bsr.num_blocks(), 0);
    assert_eq!(bsr.stored_lanes(), 0);
    let bitmap = BitmapMatrix::from_dense(&w);
    assert_eq!(bitmap.nnz(), 0);
    let x = vec![1.0f32; 20];
    let bias = vec![0.5f32, -1.5, 2.0];
    let mut y = vec![9.0f32; 6];
    bsr.matmul_rows(&x, &bias, &mut y);
    assert_eq!(y, vec![0.5, -1.5, 2.0, 0.5, -1.5, 2.0]);
    y.fill(9.0);
    bitmap.matmul_rows(&x, &bias, &mut y);
    assert_eq!(y, vec![0.5, -1.5, 2.0, 0.5, -1.5, 2.0]);
}

#[test]
fn single_live_block_at_right_edge() {
    // cols = 10 means the last block is a 2-wide partial; put the only
    // nonzero there to hit the peel path with n == 1.
    let mut data = vec![0.0f32; 10];
    data[9] = 3.0;
    let w = tensor_of(&data, 1, 10);
    let bsr = BsrMatrix::from_dense(&w, BSR_BLOCK_W);
    assert_eq!(bsr.num_blocks(), 1);
    assert_eq!(bsr.stored_lanes(), BSR_BLOCK_W);
    assert_eq!(bsr.nnz(), 1);
    let x: Vec<f32> = (0..10).map(|i| i as f32).collect();
    let mut y = vec![0.0f32];
    bsr.matmul_rows(&x, &[1.0], &mut y);
    assert_eq!(y, vec![3.0 * 9.0 + 1.0]);
    assert_eq!(bsr.to_dense(), w);
}

/// One linear layer wrapped as a model, with `mask` applied to the
/// weight — the cost model's unit of decision.
fn single_linear_model(rows: usize, cols: usize, mask: impl Fn(usize, usize) -> bool) -> Model {
    let mut rng = sb_tensor::Rng::seed_from(0xF0);
    let body = Sequential::new().push(Linear::new("fc", cols, rows, &mut rng));
    let mut model = Model::from_sequential("synthetic", body, rows);
    model.visit_params(&mut |p| {
        if p.kind() == ParamKind::LinearWeight {
            let m = Tensor::from_fn(&[rows, cols], |i| {
                if mask(i / cols, i % cols) {
                    1.0
                } else {
                    0.0
                }
            });
            p.set_mask(m);
        }
    });
    model
}

fn chosen_format(model: &Model) -> ExecFormat {
    let compiled = CompiledModel::compile(model, &CompileOptions::default());
    compiled.plans()[0].format
}

#[test]
fn fully_pruned_layer_falls_back_to_dense_not_empty_kernel() {
    let model = single_linear_model(8, 32, |_, _| false);
    for force in [Some(ExecFormat::Bsr), Some(ExecFormat::Bitmap)] {
        let compiled = CompiledModel::compile(
            &model,
            &CompileOptions {
                force_format: force,
                ..CompileOptions::default()
            },
        );
        assert_eq!(
            compiled.plans()[0].format,
            ExecFormat::Dense,
            "fully-pruned layer must fall back to Dense under {force:?}"
        );
        // The fallback still runs: an all-zero layer yields the bias.
        let x = Tensor::zeros(&[2, 32]);
        let y = compiled.forward(&x);
        assert_eq!(y.dims(), &[2, 8]);
    }
}

// --- Cost-model crossover regression ---------------------------------
//
// The constants in compile.rs were calibrated on the `realized` bench's
// conv-row kernels; these pins freeze the *regime structure* so a future
// constant tweak that flips a regime fails loudly.

#[test]
fn crossover_unpruned_layer_stays_dense() {
    let model = single_linear_model(32, 64, |_, _| true);
    assert_eq!(chosen_format(&model), ExecFormat::Dense);
}

#[test]
fn crossover_extreme_sparsity_picks_csr() {
    // ~1% density on long rows: pure-nonzero cost wins, the bitmap pays
    // its word-scan floor and BSR its occupancy blow-up.
    let model = single_linear_model(32, 1024, |r, c| (r * 1024 + c) % 97 == 0);
    assert_eq!(chosen_format(&model), ExecFormat::Csr);
}

#[test]
fn crossover_short_row_mid_sparsity_picks_bitmap() {
    // 25% density on 32-wide rows: one mask word per row undercuts
    // CSR's per-row ramp-up.
    let model = single_linear_model(32, 32, |_, c| c % 4 == 0);
    assert_eq!(chosen_format(&model), ExecFormat::Bitmap);
}

#[test]
fn crossover_block_clustered_sparsity_picks_bsr() {
    // 12.5% density but aligned to 4-wide blocks: BSR stores exactly the
    // nonzeros and streams them at vector-lane speed.
    let model = single_linear_model(16, 256, |_, c| c < 32);
    assert_eq!(chosen_format(&model), ExecFormat::Bsr);
}

#[test]
fn crossover_high_occupancy_unstructured_picks_bsr() {
    // ~67% unstructured density: every block is live, so BSR approaches
    // dense streaming at half the scalar lane cost — this is the regime
    // where the vector-lane kernel wins without any mask structure.
    let model = single_linear_model(16, 200, |r, c| (r * 200 + c) % 3 != 0);
    assert_eq!(chosen_format(&model), ExecFormat::Bsr);
}
