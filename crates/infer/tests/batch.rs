//! `forward_batch_into` regression: the scratch-reusing entry point the
//! serving batcher sits on must be **bitwise** equal to the allocating
//! `forward` path — across models, pruning styles, repeated pool reuse,
//! and varying batch sizes on one pool (the shapes a micro-batcher
//! actually produces).

mod common;

use common::{input_for, prune_filters_l1, prune_global_magnitude, zoo};
use sb_infer::{CompileOptions, CompiledModel, ExecFormat};

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn forward_batch_into_is_bitwise_equal_to_forward() {
    for (name, mut model) in zoo() {
        prune_global_magnitude(&mut model, 4.0);
        prune_filters_l1(&mut model, 2.0);
        for force in [None, Some(ExecFormat::Csr), Some(ExecFormat::Bsr)] {
            let compiled = CompiledModel::compile(
                &model,
                &CompileOptions {
                    force_format: force,
                    ..CompileOptions::default()
                },
            );
            let scratch = compiled.scratch();
            let mut out = Vec::new();
            // Varying batch sizes on ONE reused pool: partial blocks, a
            // batch crossing the block boundary, then a single sample —
            // stale scratch contents from the larger batches must never
            // leak into the smaller ones.
            for (round, n) in [13usize, 9, 16, 1, 13].into_iter().enumerate() {
                let x = input_for(&model, n, 71 + round as u64);
                let reference = compiled.forward(&x);
                let got_n = compiled.forward_batch_into(&x, &mut out, &scratch);
                assert_eq!(got_n, n, "{name} round {round}: returned batch size");
                assert_eq!(
                    bits(&out),
                    bits(reference.data()),
                    "{name} round {round} (force={force:?}): scratch-reusing \
                     path diverged from forward()"
                );
            }
        }
    }
}

#[test]
fn forward_batch_into_handles_empty_batch() {
    let (_, model) = zoo().remove(0);
    let compiled = CompiledModel::compile(&model, &CompileOptions::default());
    let scratch = compiled.scratch();
    let mut out = vec![1.0f32; 7]; // stale content must be cleared
    let x = input_for(&model, 0, 3);
    assert_eq!(compiled.forward_batch_into(&x, &mut out, &scratch), 0);
    assert!(out.is_empty());
}
