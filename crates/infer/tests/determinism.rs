//! Thread-count independence: compiled forward passes must be
//! byte-identical for any worker count, per the sb-runtime contract.
//!
//! Kept in its own test binary because it flips the process-global
//! thread override.

mod common;

use common::{input_for, prune_filters_l1, prune_global_magnitude, zoo};
use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_runtime::set_thread_override;

/// One test function (not several) because the thread override is
/// process-global and `#[test]`s in a binary run concurrently.
#[test]
fn forward_is_byte_identical_across_thread_counts() {
    // Cost-model compiles plus every forced sparse format: the BSR and
    // bitmap kernels run per batch block, so any cross-block state would
    // show up as thread-count-dependent bits here.
    let variants: [(&str, Option<ExecFormat>); 4] = [
        ("auto", None),
        ("csr", Some(ExecFormat::Csr)),
        ("bsr", Some(ExecFormat::Bsr)),
        ("bitmap", Some(ExecFormat::Bitmap)),
    ];
    for (name, mut model) in zoo() {
        prune_global_magnitude(&mut model, 4.0);
        prune_filters_l1(&mut model, 2.0);
        let x = input_for(&model, 13, 71);
        for (label, force) in variants {
            let compiled = CompiledModel::compile(
                &model,
                &CompileOptions {
                    force_format: force,
                    ..CompileOptions::default()
                },
            );
            let mut reference: Option<Vec<u32>> = None;
            for threads in [1usize, 2, 3, 4] {
                set_thread_override(Some(threads));
                let bits: Vec<u32> = compiled
                    .forward(&x)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(
                        r, &bits,
                        "{name} ({label}): logits changed between 1 and {threads} threads"
                    ),
                }
            }
            set_thread_override(None);
        }
    }
}
