//! Thread-count independence: compiled forward passes must be
//! byte-identical for any worker count, per the sb-runtime contract.
//!
//! Kept in its own test binary because it flips the process-global
//! thread override.

mod common;

use common::{input_for, prune_filters_l1, prune_global_magnitude, zoo};
use sb_infer::{CompileOptions, CompiledModel};
use sb_runtime::set_thread_override;

#[test]
fn forward_is_byte_identical_across_thread_counts() {
    for (name, mut model) in zoo() {
        prune_global_magnitude(&mut model, 4.0);
        prune_filters_l1(&mut model, 2.0);
        let compiled = CompiledModel::compile(&model, &CompileOptions::default());
        let x = input_for(&model, 13, 71);
        let mut reference: Option<Vec<u32>> = None;
        for threads in [1usize, 2, 3, 4] {
            set_thread_override(Some(threads));
            let bits: Vec<u32> = compiled
                .forward(&x)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r, &bits,
                    "{name}: logits changed between 1 and {threads} threads"
                ),
            }
        }
        set_thread_override(None);
    }
}
