//! Compiled-vs-dense parity: the engine's correctness contract.
//!
//! Every architecture in the zoo, at unstructured compression ratios
//! {1, 2, 4, 16} and structured ratios {2, 4}, must produce logits within
//! 1e-4 of eval-mode `Model::forward` and identical predicted classes —
//! for the cost-model's own format choices and for each forced format
//! (CSR, BSR, and bitmap on unstructured masks; shrunk-dense, BSR, and
//! bitmap on structured masks, where empty filter rows also exercise the
//! formats' bias-only row paths).

mod common;

use common::{
    assert_logits_close, input_for, prune_filters_l1, prune_global_magnitude, zoo,
};
use sb_infer::{CompileOptions, CompiledModel, ExecFormat, FeatureShape};
use sb_nn::{models, Mode, Network, ParamKind};
use sb_tensor::{Conv2dGeometry, Rng, Tensor};

fn forced(format: ExecFormat) -> CompileOptions {
    CompileOptions {
        force_format: Some(format),
        ..CompileOptions::default()
    }
}

#[test]
fn dense_compiled_matches_eval_bitwise() {
    for (name, mut model) in zoo() {
        let x = input_for(&model, 5, 11);
        let dense = model.forward(&x, Mode::Eval);
        let compiled = CompiledModel::compile(&model, &CompileOptions::default());
        let fast = compiled.forward(&x);
        assert_eq!(dense.dims(), fast.dims(), "{name}: logit shapes");
        for (i, (&a, &b)) in dense.data().iter().zip(fast.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: logit {i} not bit-identical: {a} vs {b}"
            );
        }
    }
}

#[test]
fn unstructured_parity_across_zoo_and_ratios() {
    for (name, mut model) in zoo() {
        for ratio in [1.0, 2.0, 4.0, 16.0] {
            prune_global_magnitude(&mut model, ratio);
            let x = input_for(&model, 5, 23);
            let dense = model.forward(&x, Mode::Eval);
            for opts in [
                CompileOptions::default(),
                forced(ExecFormat::Csr),
                forced(ExecFormat::Bsr),
                forced(ExecFormat::Bitmap),
            ] {
                let compiled = CompiledModel::compile(&model, &opts);
                let fast = compiled.forward(&x);
                let ctx = format!("{name} at {ratio}x ({:?})", opts.force_format);
                assert_logits_close(&dense, &fast, 1e-4, &ctx);
            }
        }
    }
}

#[test]
fn structured_parity_across_zoo_and_ratios() {
    for (name, mut model) in zoo() {
        for ratio in [2.0, 4.0] {
            prune_filters_l1(&mut model, ratio);
            let x = input_for(&model, 5, 37);
            let dense = model.forward(&x, Mode::Eval);
            for opts in [
                CompileOptions::default(),
                forced(ExecFormat::ShrunkDense),
                forced(ExecFormat::Bsr),
                forced(ExecFormat::Bitmap),
            ] {
                let compiled = CompiledModel::compile(&model, &opts);
                let fast = compiled.forward(&x);
                let ctx = format!("{name} structured {ratio}x ({:?})", opts.force_format);
                assert_logits_close(&dense, &fast, 1e-4, &ctx);
            }
        }
    }
}

#[test]
fn shrunk_format_engages_on_structured_conv_models() {
    let (_, mut model) = zoo().remove(2); // cifar_vgg
    prune_filters_l1(&mut model, 4.0);
    let compiled = CompiledModel::compile(&model, &forced(ExecFormat::ShrunkDense));
    let shrunk = compiled
        .plans()
        .iter()
        .filter(|p| p.format == ExecFormat::ShrunkDense)
        .count();
    assert!(
        shrunk >= 2,
        "expected several shrunk conv layers, plans: {:?}",
        compiled.plans()
    );
    assert!(
        compiled.effective_macs() < compiled.dense_macs() / 2,
        "structured 4x should cut compiled MACs at least in half"
    );
}

#[test]
fn cost_model_picks_csr_at_high_unstructured_compression() {
    let (_, mut model) = zoo().remove(0); // lenet_300_100
    prune_global_magnitude(&mut model, 16.0);
    let compiled = CompiledModel::compile(&model, &CompileOptions::default());
    assert!(
        compiled
            .plans()
            .iter()
            .any(|p| p.format == ExecFormat::Csr),
        "16x unstructured should push at least one layer to CSR, plans: {:?}",
        compiled.plans()
    );
    let dense_storage =
        CompiledModel::compile(&model, &forced(ExecFormat::Dense)).storage_bytes();
    assert!(
        compiled.storage_bytes() < dense_storage,
        "CSR storage should beat dense at 16x"
    );
}

/// A padding-free convnet with deliberately nonzero biases and batch-norm
/// statistics: dropped filters then carry *nonzero* constants downstream,
/// exercising the exact bias-folding path (into an unpadded conv and,
/// after flatten, into a linear layer).
fn pad0_convnet(rng: &mut Rng) -> models::Model {
    let body = sb_nn::Sequential::new()
        .push(sb_nn::Conv2d::new(
            "c1",
            8,
            Conv2dGeometry::square(2, 10, 10, 3, 1, 0),
            rng,
        ))
        .push(sb_nn::BatchNorm2d::new("bn1", 8))
        .push(sb_nn::ReLU::new())
        .push(sb_nn::Conv2d::new(
            "c2",
            6,
            Conv2dGeometry::square(8, 8, 8, 3, 1, 0),
            rng,
        ))
        .push(sb_nn::ReLU::new())
        .push(sb_nn::Flatten::new())
        .push(sb_nn::Linear::new("fc", 6 * 6 * 6, 10, rng));
    models::Model::from_sequential("pad0-convnet", body, 10)
}

#[test]
fn shrink_folds_nonzero_constants_exactly() {
    let mut rng = Rng::seed_from(0x5EED);
    let mut model = pad0_convnet(&mut rng);
    // Perturb biases and BN state so dropped channels emit nonzero
    // constants (fresh layers would give exactly zero everywhere).
    model.visit_params(&mut |p| {
        let n = p.numel();
        match p.kind() {
            ParamKind::Bias | ParamKind::BnShift => {
                *p.value_mut() = Tensor::rand_normal(&[n], 0.3, 0.5, &mut rng);
            }
            ParamKind::BnRunningStat => {
                let positive = Tensor::rand_normal(&[n], 1.0, 0.2, &mut rng)
                    .map(|v| v.abs() + 0.1);
                *p.value_mut() = positive;
            }
            _ => {}
        }
    });
    // Zero half the filters of each conv by hand.
    model.visit_params(&mut |p| {
        if p.kind() == ParamKind::ConvWeight {
            let (rows, cols) = (p.value().dim(0), p.value().dim(1));
            let mut mask = vec![1.0f32; rows * cols];
            for r in 0..rows / 2 {
                mask[r * cols..(r + 1) * cols].fill(0.0);
            }
            p.set_mask(Tensor::from_vec(mask, &[rows, cols]).expect("mask shape"));
        }
    });
    let x = input_for(&model, 7, 41);
    let dense = model.forward(&x, Mode::Eval);
    let compiled = CompiledModel::compile(&model, &forced(ExecFormat::ShrunkDense));
    let shrunk = compiled
        .plans()
        .iter()
        .filter(|p| p.format == ExecFormat::ShrunkDense)
        .count();
    assert_eq!(shrunk, 2, "both convs should shrink, plans: {:?}", compiled.plans());
    let fast = compiled.forward(&x);
    assert_logits_close(&dense, &fast, 1e-4, "pad0 constant folding");
}

#[test]
fn padded_conv_consumer_rejects_nonzero_constants() {
    // lenet5's convs are padded; give the first conv a nonzero bias so a
    // dropped filter would carry a nonzero constant into a padded conv —
    // the shrink must fall back to Dense rather than mis-fold.
    let mut rng = Rng::seed_from(3);
    let mut model = models::lenet5(1, 16, 10, &mut rng);
    model.visit_params(&mut |p| {
        if p.kind() == ParamKind::Bias {
            let n = p.numel();
            *p.value_mut() = Tensor::rand_normal(&[n], 0.5, 0.1, &mut rng);
        }
    });
    prune_filters_l1(&mut model, 4.0);
    let x = input_for(&model, 5, 53);
    let dense = model.forward(&x, Mode::Eval);
    let compiled = CompiledModel::compile(&model, &forced(ExecFormat::ShrunkDense));
    assert!(
        compiled
            .plans()
            .iter()
            .take(1)
            .all(|p| p.format == ExecFormat::Dense),
        "first conv must not shrink into a padded consumer with nonzero \
         constants, plans: {:?}",
        compiled.plans()
    );
    let fast = compiled.forward(&x);
    assert_logits_close(&dense, &fast, 1e-4, "padded fallback");
}

#[test]
fn empty_batch_and_single_sample_shapes() {
    let (_, model) = zoo().remove(1); // lenet5
    let compiled = CompiledModel::compile(&model, &CompileOptions::default());
    let empty = compiled.forward(&Tensor::zeros(&[0, 1, 16, 16]));
    assert_eq!(empty.dims(), &[0, 10]);
    let one = compiled.forward(&input_for(&model, 1, 61));
    assert_eq!(one.dims(), &[1, 10]);
    assert_eq!(compiled.input_shape(), FeatureShape::Image { c: 1, h: 16, w: 16 });
    assert_eq!(compiled.classes(), 10);
}
