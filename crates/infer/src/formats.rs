//! Blocked-sparse (BSR) and bitmap weight storage.
//!
//! Both formats attack the same measured problem from different ends:
//! the CSR kernel pays an indirect column load per stored nonzero, which
//! the `latency-attribution` artifact showed costs conv layers ~6× their
//! FLOP count. [`BsrMatrix`] amortizes that index overhead across a
//! fixed-width block of contiguous lanes (one column index per
//! [`BSR_BLOCK_W`] multiply-adds, and the matching input lanes are
//! contiguous in the im2col patch row, so the block inner loop
//! vectorizes like a dense kernel). [`BitmapMatrix`] keeps the values
//! dense and adds a per-row occupancy bitmask; its inner loop walks set
//! bits with `trailing_zeros`, so mid-sparsity rows skip zeros without
//! loading an index array at all.
//!
//! Both conversions are exact: `from_dense` → `to_dense` reproduces the
//! input values verbatim (zeros inside a stored BSR block are stored as
//! zeros, and the bitmap keeps the whole dense value array), which the
//! `formats.rs` property suite pins. Both kernels use a fixed,
//! input-independent reduction order — the bitmap pops bits in ascending
//! column order like the CSR kernel; BSR keeps one accumulator per block
//! lane and folds them pairwise at the end of each row — so parity stays
//! within the engine's 1e-4 contract and execution is byte-identical at
//! any thread count.

use sb_tensor::Tensor;

/// Fixed BSR block width (columns per block).
///
/// Tuned on the `realized` bench: 4 lanes amortize the per-block index
/// to a quarter of CSR's per-nonzero cost while keeping the occupancy
/// blow-up of *random* (unstructured) sparsity tolerable — at 16×
/// pruning (~6% density) a 4-wide block is live with probability ~22%,
/// so the kernel still skips ~78% of the dense work.
pub const BSR_BLOCK_W: usize = 4;

/// Block-compressed sparse rows with a fixed block width.
///
/// Each stored block covers `block_w` contiguous columns of one row and
/// is stored densely (zeros inside a live block are kept), so one column
/// index serves `block_w` multiply-adds. Blocks are stored in ascending
/// column order per row; rows with no live blocks store nothing and the
/// kernel still emits their bias (an all-zero row never becomes an
/// "empty" output).
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    block_w: usize,
    /// Prefix block counts, `rows + 1` entries.
    row_ptr: Vec<u32>,
    /// Starting column of each block (a multiple of `block_w`).
    block_starts: Vec<u32>,
    /// `num_blocks() * block_w` values; lanes past the right matrix edge
    /// are zero-padded.
    values: Vec<f32>,
}

impl BsrMatrix {
    /// Extracts every block (of `block_w` contiguous columns) containing
    /// at least one nonzero from a `[rows, cols]` dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D or `block_w` is zero.
    pub fn from_dense(dense: &Tensor, block_w: usize) -> BsrMatrix {
        assert!(block_w > 0, "BSR block width must be positive");
        assert_eq!(dense.shape().ndim(), 2, "BSR source must be 2-D");
        let (rows, cols) = (dense.dim(0), dense.dim(1));
        let data = dense.data();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut block_starts = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut start = 0usize;
            while start < cols {
                let end = (start + block_w).min(cols);
                if row[start..end].iter().any(|&v| v != 0.0) {
                    block_starts.push(start as u32);
                    values.extend_from_slice(&row[start..end]);
                    // Right-edge blocks are zero-padded to full width so
                    // every block's value slice has the same length.
                    values.extend(std::iter::repeat(0.0).take(block_w - (end - start)));
                }
                start += block_w;
            }
            row_ptr.push(block_starts.len() as u32);
        }
        BsrMatrix {
            rows,
            cols,
            block_w,
            row_ptr,
            block_starts,
            values,
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block width this matrix was extracted with.
    pub fn block_w(&self) -> usize {
        self.block_w
    }

    /// Number of stored (live) blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_starts.len()
    }

    /// Multiply-add lanes the kernel executes: every stored block runs
    /// all `block_w` lanes, zeros included.
    pub fn stored_lanes(&self) -> usize {
        self.num_blocks() * self.block_w
    }

    /// Stored nonzero values (excludes zero lanes inside live blocks).
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0.0).count()
    }

    /// Bytes of the compressed representation.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.block_starts.len() * 4 + self.row_ptr.len() * 4
    }

    /// The `(block starts, values)` slices of one row.
    pub fn row_blocks(&self, r: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
        (
            &self.block_starts[lo..hi],
            &self.values[lo * self.block_w..hi * self.block_w],
        )
    }

    /// Exact reconstruction of the source matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let (starts, vals) = self.row_blocks(r);
            for (bi, &s) in starts.iter().enumerate() {
                let s = s as usize;
                let w = self.block_w.min(self.cols - s);
                data[r * self.cols + s..r * self.cols + s + w]
                    .copy_from_slice(&vals[bi * self.block_w..bi * self.block_w + w]);
            }
        }
        Tensor::from_vec(data, &[self.rows, self.cols]).expect("BSR dense shape")
    }

    /// `y[r] = x[r] · Wᵀ + bias` over `x.len() / cols` rows.
    ///
    /// The hot path keeps one accumulator per block lane and folds the
    /// [`BSR_BLOCK_W`] partial sums pairwise at the end of each output
    /// row, so the block loop is a single widening multiply-add per block
    /// with no horizontal reduction inside it — that is what lets the
    /// compiler keep the whole inner loop in vector registers. The
    /// reduction order is fixed (blocks ascending, lanes folded
    /// pairwise, right-edge tail last), so results are bit-deterministic
    /// at any thread count and within the engine's 1e-4 accumulation
    /// tolerance of the dense kernel.
    pub fn matmul_rows(&self, x: &[f32], bias: &[f32], y: &mut [f32]) {
        debug_assert_eq!(bias.len(), self.rows, "BSR bias length");
        debug_assert_eq!(x.len() % self.cols, 0, "BSR input row length");
        if self.block_w == BSR_BLOCK_W {
            self.matmul_rows_w4(x, bias, y);
        } else {
            self.matmul_rows_generic(x, bias, y);
        }
    }

    /// Vector-lane hot path for the engine's fixed block width.
    fn matmul_rows_w4(&self, x: &[f32], bias: &[f32], y: &mut [f32]) {
        const W: usize = BSR_BLOCK_W;
        let cols = self.cols;
        for (xr, yr) in x.chunks_exact(cols).zip(y.chunks_exact_mut(self.rows)) {
            for (j, o) in yr.iter_mut().enumerate() {
                let (starts, vals) = self.row_blocks(j);
                // Only the last block of a row can overhang the right
                // edge (blocks are ascending); peel it so the main loop
                // reads full-width input slices unconditionally.
                let mut n = starts.len();
                let mut tail = 0.0f32;
                if n > 0 {
                    let s = starts[n - 1] as usize;
                    if s + W > cols {
                        n -= 1;
                        for (l, &wv) in vals[n * W..n * W + (cols - s)].iter().enumerate() {
                            tail += wv * xr[s + l];
                        }
                    }
                }
                let mut lanes = [0.0f32; W];
                for (&s, block) in starts[..n].iter().zip(vals.chunks_exact(W)) {
                    let xb = &xr[s as usize..s as usize + W];
                    for l in 0..W {
                        lanes[l] += block[l] * xb[l];
                    }
                }
                *o = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail + bias[j];
            }
        }
    }

    /// Straightforward path for non-default block widths.
    fn matmul_rows_generic(&self, x: &[f32], bias: &[f32], y: &mut [f32]) {
        let (cols, bw) = (self.cols, self.block_w);
        for (xr, yr) in x.chunks_exact(cols).zip(y.chunks_exact_mut(self.rows)) {
            for (j, o) in yr.iter_mut().enumerate() {
                let (starts, vals) = self.row_blocks(j);
                let mut acc = 0.0f32;
                for (bi, &s) in starts.iter().enumerate() {
                    let s = s as usize;
                    let block = &vals[bi * bw..(bi + 1) * bw];
                    let live = bw.min(cols - s);
                    for (l, &wv) in block[..live].iter().enumerate() {
                        acc += wv * xr[s + l];
                    }
                }
                *o = acc + bias[j];
            }
        }
    }
}

/// Dense values plus a per-row occupancy bitmask.
///
/// The value array is the full dense matrix (conversion is trivially
/// exact and zero-copyable back out); the mask — one bit per column,
/// packed into 64-bit words per row — is what the kernel iterates. The
/// inner loop pops set bits with `trailing_zeros`, so a row costs its
/// nonzero count plus one word load per 64 columns: no per-nonzero
/// column-index array, no branch on individual values. That makes it
/// the mid-sparsity format — cheaper than CSR per nonzero, with a small
/// fixed word-scan floor that CSR undercuts only at extreme sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapMatrix {
    rows: usize,
    cols: usize,
    /// 64-bit mask words per row (`ceil(cols / 64)`).
    words_per_row: usize,
    /// `rows * words_per_row` occupancy words, LSB = lowest column.
    masks: Vec<u64>,
    /// The dense `[rows, cols]` values, kept verbatim.
    values: Vec<f32>,
}

impl BitmapMatrix {
    /// Builds the bitmask over a `[rows, cols]` dense matrix (bit set
    /// where the value is nonzero) and keeps the values verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D.
    pub fn from_dense(dense: &Tensor) -> BitmapMatrix {
        assert_eq!(dense.shape().ndim(), 2, "bitmap source must be 2-D");
        let (rows, cols) = (dense.dim(0), dense.dim(1));
        let words_per_row = cols.div_ceil(64);
        let data = dense.data();
        let mut masks = vec![0u64; rows * words_per_row];
        for r in 0..rows {
            for c in 0..cols {
                if data[r * cols + c] != 0.0 {
                    masks[r * words_per_row + c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        BitmapMatrix {
            rows,
            cols,
            words_per_row,
            masks,
            values: data.to_vec(),
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mask words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Set bits — the multiply-adds the kernel performs.
    pub fn nnz(&self) -> usize {
        self.masks.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bytes of the representation: the dense values *plus* the mask.
    /// Bitmap trades a little storage for mid-sparsity compute; the cost
    /// model selects on compute and `storage_bytes` reports honestly.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4 + self.masks.len() * 8
    }

    /// Exact reconstruction: masked-off entries read as zero (they were
    /// zero in the source by construction).
    pub fn to_dense(&self) -> Tensor {
        let mut data = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let (mrow, vrow) = self.row(r);
            for (wi, &word) in mrow.iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let c = wi * 64 + m.trailing_zeros() as usize;
                    data[r * self.cols + c] = vrow[c];
                    m &= m - 1;
                }
            }
        }
        Tensor::from_vec(data, &[self.rows, self.cols]).expect("bitmap dense shape")
    }

    /// The `(mask words, dense values)` slices of one row.
    pub fn row(&self, r: usize) -> (&[u64], &[f32]) {
        (
            &self.masks[r * self.words_per_row..(r + 1) * self.words_per_row],
            &self.values[r * self.cols..(r + 1) * self.cols],
        )
    }

    /// `y[r] = x[r] · Wᵀ + bias` over `x.len() / cols` rows.
    ///
    /// Bits pop in ascending column order, so the accumulation order
    /// matches the dense and CSR kernels and is thread-count invariant.
    pub fn matmul_rows(&self, x: &[f32], bias: &[f32], y: &mut [f32]) {
        let cols = self.cols;
        debug_assert_eq!(bias.len(), self.rows, "bitmap bias length");
        debug_assert_eq!(x.len() % cols, 0, "bitmap input row length");
        for (xr, yr) in x.chunks_exact(cols).zip(y.chunks_exact_mut(self.rows)) {
            for (j, o) in yr.iter_mut().enumerate() {
                let (mrow, vrow) = self.row(j);
                let mut acc = 0.0f32;
                for (wi, &word) in mrow.iter().enumerate() {
                    let base = wi * 64;
                    let mut m = word;
                    while m != 0 {
                        let c = base + m.trailing_zeros() as usize;
                        acc += vrow[c] * xr[c];
                        m &= m - 1;
                    }
                }
                *o = acc + bias[j];
            }
        }
    }
}
