#![warn(missing_docs)]

//! Forward-only inference engine for `shrinkbench-rs`.
//!
//! The training stack (`sb-nn`) executes pruned models by multiplying
//! dense weights that happen to contain zeros — masked weights cost
//! exactly as much as unmasked ones. That gap between *theoretical*
//! speedup (the FLOP ratio `sb-metrics` reports) and *realized* speedup
//! (wall-clock) is a central theme of *"What is the State of Neural
//! Network Pruning?"* (Blalock et al., MLSys 2020): compression numbers
//! only translate into latency when an execution engine exploits the
//! zeros. This crate is that engine.
//!
//! [`CompiledModel::compile`] lowers a trained + pruned model's
//! eval-mode [`sb_nn::LayerSpec`] chain into per-layer kernels, picking a
//! storage format per weight-bearing layer with a cost model:
//!
//! * [`ExecFormat::Dense`] — verbatim copy; the baseline and the fallback.
//! * [`ExecFormat::Csr`] — compressed sparse rows, profitable once
//!   unstructured pruning pushes density below the CSR break-even point.
//! * [`ExecFormat::ShrunkDense`] — rows zeroed by *structured* (filter)
//!   pruning are physically dropped and the shrink propagates into the
//!   next layer's columns, turning channel sparsity into plain smaller
//!   dense matrices. Dropped channels still emit their bias constant;
//!   the compiler tracks those constants through batch norm / ReLU /
//!   pooling and folds them into the consumer's bias exactly.
//! * [`ExecFormat::Bsr`] — blocked-sparse rows
//!   ([`formats::BsrMatrix`], fixed block width
//!   [`formats::BSR_BLOCK_W`]): one column index per block of contiguous
//!   lanes, so the per-nonzero index overhead that dominates CSR conv
//!   layers is amortized and the block inner loop streams like dense.
//! * [`ExecFormat::Bitmap`] — dense values plus a per-row occupancy
//!   bitmask ([`formats::BitmapMatrix`]): a branch-free set-bit loop for
//!   the mid-sparsity regime where CSR loses to dense streaming.
//!
//! Execution is batched, parallelized over batch blocks via
//! `sb-runtime`, reuses preplanned scratch buffers (no allocation in the
//! forward loop, no gradient state), and is **bit-identical for any
//! `SB_RUNTIME_THREADS`**. A dense-compiled model replicates the exact
//! floating-point operation order of `Model::forward` in eval mode, so
//! compiled-vs-dense parity is a hard testable contract rather than an
//! aspiration.
//!
//! # Example
//!
//! ```
//! use sb_infer::{CompileOptions, CompiledModel};
//! use sb_nn::{models, Mode, Network};
//! use sb_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(7);
//! let mut net = models::lenet_300_100(256, 10, &mut rng);
//! let compiled = CompiledModel::compile(&net, &CompileOptions::default());
//! let x = Tensor::rand_normal(&[4, 256], 0.0, 1.0, &mut rng);
//! let dense = net.forward(&x, Mode::Eval);
//! let fast = compiled.forward(&x);
//! assert_eq!(dense.dims(), fast.dims());
//! ```

mod compile;
mod exec;
pub mod formats;
mod plan;

pub use compile::{CompileOptions, CompiledModel};
pub use exec::ForwardScratch;
pub use plan::{ExecFormat, FeatureShape, LayerPlan};

/// Row-wise argmax over `[n, classes]` logits — the predicted classes.
///
/// Ties resolve to the lowest class index, matching the convention used
/// by `sb-nn` evaluation.
pub fn predicted_classes(logits: &sb_tensor::Tensor) -> Vec<usize> {
    let (n, c) = (logits.dim(0), logits.dim(1));
    let data = logits.data();
    (0..n)
        .map(|i| {
            let row = &data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}
