//! Lowering from [`LayerSpec`] chains to executable step plans.
//!
//! The compiler walks the model's eval-mode spec once, carrying a
//! [`Carry`] that records structured shrink decisions: when a layer's
//! weight rows are entirely zero (the footprint left by filter pruning)
//! *and* the downstream consumer can absorb the missing channels, the
//! rows are dropped and the consumer's columns are restricted to match.
//!
//! Dropped channels are not silently discarded — structured pruning masks
//! only the convolution weight rows, so a dropped filter still emits its
//! (constant) bias, which batch norm, ReLU, and pooling transform
//! per-channel downstream. The carry therefore tracks one constant per
//! dropped channel and either folds it into the consumer's bias (exact
//! for linear consumers and unpadded convolutions) or requires it to be
//! exactly zero (padded convolutions, where padding pixels and dropped
//! channels would need different constants).

use crate::plan::{ExecFormat, FeatureShape, Kernel, LayerPlan, Planned, Step};
use sb_nn::{models::Model, LayerSpec, Network};
use sb_tensor::{Conv2dGeometry, SparseMatrix, Tensor};

// Cost-model constants: relative cost of each format's unit of work
// against one dense lane (one scalar multiply-add of the reference
// dense kernel, ~0.6 ns on the calibration host). The values are
// measured on the `realized` bench's conv-row kernels
// (`cargo bench -p sb-bench --bench realized`, "conv-row-kernels" group)
// and sanity-pinned by the crossover regression test in
// `crates/infer/tests/formats.rs`; see DESIGN.md for the derivation.
// Per-row fits drift ±20% between runs on a shared host, so the
// constants are rounded, not exact — the regression test pins the
// *regime structure*, not the third decimal.

/// Relative per-MAC cost of the CSR kernel vs. a dense lane: the
/// indirect column load and the serial accumulate make a stored nonzero
/// ~1.3× a dense lane on the calibration host.
const CSR_MAC_COST: f64 = 1.3;

/// Fixed per-output-row overhead (row-pointer loads, short-row ramp-up,
/// bias) charged to CSR. This is what bitmap undercuts on short rows.
const CSR_ROW_COST: f64 = 5.0;

/// Per-lane cost of a stored BSR block lane. The block inner loop keeps
/// per-lane vector accumulators (no horizontal reduction per block), so
/// a stored lane runs ~2× *faster* than the order-pinned scalar dense
/// kernel — which is why BSR can win even at moderate occupancy.
const BSR_LANE_COST: f64 = 0.5;

/// Per-block overhead of the BSR kernel: one column-index load and the
/// input-slice setup, amortized across [`crate::formats::BSR_BLOCK_W`]
/// lanes.
const BSR_BLOCK_COST: f64 = 0.4;

/// Fixed per-output-row overhead (block-pointer loads, lane fold,
/// right-edge peel, bias) for BSR.
const BSR_ROW_COST: f64 = 4.0;

/// Per-set-bit cost of the bitmap kernel: `trailing_zeros` + clear +
/// two indexed loads. Slightly over a dense lane, but with no index
/// array to stream — the win over CSR comes from the row terms.
const BITMAP_MAC_COST: f64 = 1.1;

/// Per-64-column-word scan cost of the bitmap kernel; this fixed floor
/// (one word load + test per 64 columns, even when empty) is what lets
/// CSR win back the extreme-sparsity regime.
const BITMAP_WORD_COST: f64 = 3.0;

/// Fixed per-output-row overhead (mask row setup, bias) for bitmap.
const BITMAP_ROW_COST: f64 = 0.5;

/// Per-lane cost credited to a shrunk-dense lane. The kernel itself is
/// the scalar dense loop (1.0), but shrinking a layer's rows also
/// deletes the matching *columns of its consumer* — a cross-layer saving
/// the per-layer comparison cannot see. The credit keeps structured
/// layers on the shrunk path, where that propagation actually happens,
/// instead of letting BSR (which keeps the full input width) undercut
/// them layer-locally.
const SHRUNK_LANE_COST: f64 = 0.5;

/// Knobs for [`CompiledModel::compile`](crate::CompiledModel::compile).
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Bypass the cost model and force every weight-bearing layer into one
    /// format. `ShrunkDense` still falls back to `Dense` where shrinking
    /// is ineligible (no zero rows, or the consumer cannot absorb them).
    pub force_format: Option<ExecFormat>,
    /// Samples per parallel batch block. Each block runs on one worker
    /// with its own scratch buffers; results are bit-identical for any
    /// block size and worker count because per-sample arithmetic never
    /// crosses block boundaries.
    pub batch_block: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            force_format: None,
            batch_block: 8,
        }
    }
}

/// A forward-only, format-specialized execution plan for one model.
///
/// Built by [`CompiledModel::compile`]; run with
/// [`CompiledModel::forward`](crate::CompiledModel::forward).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    pub(crate) steps: Vec<Planned>,
    pub(crate) input_shape: FeatureShape,
    pub(crate) classes: usize,
    pub(crate) batch_block: usize,
    /// Largest per-sample activation any step reads or writes.
    pub(crate) max_act: usize,
    /// Largest per-sample im2col patch matrix any conv needs.
    pub(crate) max_patch: usize,
    /// Largest per-sample `[oh·ow, out_c]` row matrix any conv needs.
    pub(crate) max_rows: usize,
    plans: Vec<LayerPlan>,
}

impl CompiledModel {
    /// Compiles a model's eval-mode spec into an execution plan.
    ///
    /// # Panics
    ///
    /// Panics if the spec contains a layer the planner does not know, or
    /// if the first weight-bearing layer cannot anchor the input shape.
    pub fn compile(model: &Model, opts: &CompileOptions) -> CompiledModel {
        CompiledModel::compile_specs(&model.spec(), model.num_classes(), opts)
    }

    /// Compiles a raw spec chain (the [`Model`]-independent entry point).
    pub fn compile_specs(
        specs: &[LayerSpec],
        classes: usize,
        opts: &CompileOptions,
    ) -> CompiledModel {
        assert!(opts.batch_block > 0, "batch_block must be positive");
        let flat = flatten(specs);
        let input_shape = infer_input_shape(&flat);
        let mut compiler = Compiler {
            opts,
            plans: Vec::new(),
            max_act: input_shape.numel(),
            max_patch: 0,
            max_rows: 0,
            pending_label: None,
        };
        let (steps, out_shape, carry) = compiler.chain(&flat, input_shape);
        assert!(
            carry.is_none(),
            "structured shrink carried past the final layer"
        );
        assert_eq!(
            out_shape,
            FeatureShape::Flat { d: classes },
            "compiled model must end in [classes] logits"
        );
        CompiledModel {
            steps,
            input_shape,
            classes,
            batch_block: opts.batch_block,
            max_act: compiler.max_act,
            max_patch: compiler.max_patch,
            max_rows: compiler.max_rows,
            plans: compiler.plans,
        }
    }

    /// Per-layer format decisions and cost accounting, in layer order.
    pub fn plans(&self) -> &[LayerPlan] {
        &self.plans
    }

    /// Logit count the plan produces per sample.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample input shape the plan expects.
    pub fn input_shape(&self) -> FeatureShape {
        self.input_shape
    }

    /// Total bytes of compiled parameters (weights, biases, norm vectors).
    pub fn storage_bytes(&self) -> usize {
        fn steps_bytes(steps: &[Planned]) -> usize {
            steps
                .iter()
                .map(|p| match &p.step {
                    Step::Matmul { kernel, bias } | Step::Conv { kernel, bias, .. } => {
                        kernel.param_bytes() + bias.len() * 4
                    }
                    Step::BatchNorm { gamma, .. } => gamma.len() * 4 * 4,
                    Step::Residual { main, shortcut } => {
                        steps_bytes(main) + steps_bytes(shortcut)
                    }
                    _ => 0,
                })
                .sum()
        }
        steps_bytes(&self.steps)
    }

    /// Dense MACs per sample of the original model — the theoretical-
    /// speedup denominator shared with `sb-metrics` flop accounting.
    pub fn dense_macs(&self) -> u64 {
        self.plans.iter().map(|p| p.dense_macs).sum()
    }

    /// MACs per sample the compiled plan actually performs.
    pub fn effective_macs(&self) -> u64 {
        self.plans.iter().map(|p| p.effective_macs).sum()
    }
}

/// Inlines nested `Sequential`s into one flat chain.
fn flatten(specs: &[LayerSpec]) -> Vec<LayerSpec> {
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec {
            LayerSpec::Sequential(inner) => out.extend(flatten(inner)),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Derives the per-sample input shape from the first anchoring layer.
fn infer_input_shape(specs: &[LayerSpec]) -> FeatureShape {
    for spec in specs {
        match spec {
            LayerSpec::Conv2d { geom, .. } => {
                return FeatureShape::Image {
                    c: geom.in_channels,
                    h: geom.in_h,
                    w: geom.in_w,
                }
            }
            LayerSpec::Linear { weight, .. } => {
                return FeatureShape::Flat { d: weight.dim(1) }
            }
            LayerSpec::BatchNorm2d { .. } | LayerSpec::Residual { .. } => break,
            _ => continue,
        }
    }
    panic!("cannot infer input shape: no leading Linear or Conv2d layer")
}

/// Structured-shrink state flowing between a producer and its consumer.
///
/// `kept`/`dropped` index *original* output channels (or flat features
/// once past a `Flatten`), so downstream per-channel parameters are
/// looked up by original index while physical buffers hold only `kept`.
#[derive(Debug, Clone)]
struct Carry {
    /// Surviving original indices, ascending.
    kept: Vec<usize>,
    /// Original (unshrunk) width, for consumer-side shape checks.
    full: usize,
    /// `(original index, constant activation value)` of dropped channels,
    /// ascending by index. Updated in place as transparent ops transform it.
    dropped: Vec<(usize, f32)>,
}

struct Compiler<'a> {
    opts: &'a CompileOptions,
    plans: Vec<LayerPlan>,
    max_act: usize,
    max_patch: usize,
    max_rows: usize,
    /// Trace label staged by `lower_linear`/`lower_conv` for the step the
    /// next `push` records.
    pending_label: Option<String>,
}

impl Compiler<'_> {
    /// Lowers one flat spec chain, threading shape and shrink state.
    fn chain(
        &mut self,
        specs: &[LayerSpec],
        in_shape: FeatureShape,
    ) -> (Vec<Planned>, FeatureShape, Option<Carry>) {
        let mut steps = Vec::new();
        let mut shape = in_shape;
        let mut carry: Option<Carry> = None;
        for (idx, spec) in specs.iter().enumerate() {
            let rest = &specs[idx + 1..];
            match spec {
                LayerSpec::Identity => {}
                LayerSpec::Flatten => {
                    if let FeatureShape::Image { c, h, w } = shape {
                        shape = FeatureShape::Flat { d: c * h * w };
                        if let Some(carry) = &mut carry {
                            flatten_carry(carry, h * w);
                        }
                    }
                }
                LayerSpec::ReLU => {
                    if let Some(carry) = &mut carry {
                        for (_, c) in &mut carry.dropped {
                            *c = c.max(0.0);
                        }
                    }
                    self.push(&mut steps, Step::Relu, shape, shape);
                }
                LayerSpec::BatchNorm2d {
                    gamma,
                    beta,
                    running_mean,
                    running_var,
                    eps,
                } => {
                    let step = self.lower_batchnorm(
                        gamma,
                        beta,
                        running_mean,
                        running_var,
                        *eps,
                        &mut carry,
                    );
                    self.push(&mut steps, step, shape, shape);
                }
                LayerSpec::MaxPool2d { kernel, stride } => {
                    let out = pooled_shape(shape, *kernel, *stride);
                    // A dropped channel is spatially constant, so pooling
                    // any window of it returns the same constant: the
                    // carry passes through untouched.
                    self.push(
                        &mut steps,
                        Step::MaxPool {
                            kernel: *kernel,
                            stride: *stride,
                        },
                        shape,
                        out,
                    );
                    shape = out;
                }
                LayerSpec::AvgPool2d { kernel, stride } => {
                    let out = pooled_shape(shape, *kernel, *stride);
                    self.push(
                        &mut steps,
                        Step::AvgPool {
                            kernel: *kernel,
                            stride: *stride,
                        },
                        shape,
                        out,
                    );
                    shape = out;
                }
                LayerSpec::Linear { name, weight, bias } => {
                    let (step, out) =
                        self.lower_linear(name, weight, bias, shape, &mut carry, rest);
                    self.push(&mut steps, step, shape, out);
                    shape = out;
                }
                LayerSpec::Conv2d {
                    name,
                    weight,
                    bias,
                    out_channels,
                    geom,
                } => {
                    let (step, out) = self.lower_conv(
                        name,
                        weight,
                        bias,
                        *out_channels,
                        geom,
                        shape,
                        &mut carry,
                        rest,
                    );
                    self.push(&mut steps, step, shape, out);
                    shape = out;
                }
                LayerSpec::Residual { main, shortcut } => {
                    assert!(
                        carry.is_none(),
                        "shrink eligibility must stop at residual blocks"
                    );
                    let (main_steps, main_out, main_carry) = self.chain(main, shape);
                    assert!(main_carry.is_none(), "residual main chain ended shrunk");
                    let (short_steps, short_out, short_carry) = if shortcut.is_empty() {
                        (Vec::new(), shape, None)
                    } else {
                        self.chain(shortcut, shape)
                    };
                    assert!(short_carry.is_none(), "residual shortcut ended shrunk");
                    assert_eq!(
                        main_out, short_out,
                        "residual main and shortcut shapes diverge"
                    );
                    self.push(
                        &mut steps,
                        Step::Residual {
                            main: main_steps,
                            shortcut: short_steps,
                        },
                        shape,
                        main_out,
                    );
                    shape = main_out;
                }
                LayerSpec::Sequential(_) => unreachable!("flattened before compile"),
            }
        }
        (steps, shape, carry)
    }

    fn push(
        &mut self,
        steps: &mut Vec<Planned>,
        step: Step,
        in_shape: FeatureShape,
        out_shape: FeatureShape,
    ) {
        self.max_act = self.max_act.max(in_shape.numel()).max(out_shape.numel());
        steps.push(Planned {
            step,
            in_shape,
            out_shape,
            label: self.pending_label.take().unwrap_or_default(),
        });
    }

    /// Batch norm: select surviving channels' parameters, and push the
    /// dropped channels' constants through the eval-mode transform using
    /// their *original* per-channel statistics.
    fn lower_batchnorm(
        &mut self,
        gamma: &Tensor,
        beta: &Tensor,
        mean: &Tensor,
        var: &Tensor,
        eps: f32,
        carry: &mut Option<Carry>,
    ) -> Step {
        let select = |t: &Tensor| -> Vec<f32> {
            match &*carry {
                Some(c) => c.kept.iter().map(|&i| t.data()[i]).collect(),
                None => t.data().to_vec(),
            }
        };
        let step = Step::BatchNorm {
            gamma: select(gamma),
            beta: select(beta),
            mean: select(mean),
            var: select(var),
            eps,
        };
        if let Some(carry) = carry {
            for (idx, c) in &mut carry.dropped {
                let istd = 1.0 / (var.data()[*idx] + eps).sqrt();
                *c = gamma.data()[*idx] * (*c - mean.data()[*idx]) * istd + beta.data()[*idx];
            }
        }
        step
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_linear(
        &mut self,
        name: &str,
        weight: &Tensor,
        bias: &Tensor,
        shape: FeatureShape,
        carry: &mut Option<Carry>,
        rest: &[LayerSpec],
    ) -> (Step, FeatureShape) {
        let (out_f, full_in) = (weight.dim(0), weight.dim(1));
        let (w, b, in_cols) = restrict_linear(weight, bias, carry.take());
        assert_eq!(
            shape.numel(),
            in_cols,
            "linear '{name}' input shape mismatch"
        );
        let dense_macs = (out_f * full_in) as u64;
        let choice = self.choose(&w, &b, rest);
        let format = choice.format;
        let (kernel, bias_vec, new_carry, effective) = build_kernel(choice, w, b, out_f);
        *carry = new_carry;
        let plan_out = kernel.out_features();
        self.record_plan(name, format, &kernel, &bias_vec, dense_macs, effective, 1);
        self.pending_label = Some(format!("{name}:{}", format.label()));
        (
            Step::Matmul {
                kernel,
                bias: bias_vec,
            },
            FeatureShape::Flat { d: plan_out },
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_conv(
        &mut self,
        name: &str,
        weight: &Tensor,
        bias: &Tensor,
        out_channels: usize,
        geom: &Conv2dGeometry,
        shape: FeatureShape,
        carry: &mut Option<Carry>,
        rest: &[LayerSpec],
    ) -> (Step, FeatureShape) {
        let full_patch = geom.patch_len();
        assert_eq!(weight.dim(0), out_channels, "conv weight rows");
        assert_eq!(weight.dim(1), full_patch, "conv weight cols");
        let (w, b, geom) = restrict_conv(weight, bias, geom, carry.take());
        assert_eq!(
            shape,
            FeatureShape::Image {
                c: geom.in_channels,
                h: geom.in_h,
                w: geom.in_w
            },
            "conv '{name}' input shape mismatch"
        );
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let spatial = oh * ow;
        let dense_macs = (out_channels * full_patch * spatial) as u64;
        let choice = self.choose(&w, &b, rest);
        let format = choice.format;
        let (kernel, bias_vec, new_carry, effective) = build_kernel(choice, w, b, out_channels);
        *carry = new_carry;
        let out_c = kernel.out_features();
        self.record_plan(name, format, &kernel, &bias_vec, dense_macs, effective, spatial);
        self.pending_label = Some(format!("{name}:{}", format.label()));
        self.max_patch = self.max_patch.max(spatial * geom.patch_len());
        self.max_rows = self.max_rows.max(spatial * out_c);
        let out = FeatureShape::Image {
            c: out_c,
            h: oh,
            w: ow,
        };
        (
            Step::Conv {
                kernel,
                bias: bias_vec,
                geom,
                out_c,
            },
            out,
        )
    }

    /// Cost-model format choice over the (column-restricted) weight data.
    ///
    /// The costs are per output pixel, so a conv's spatial extent scales
    /// every candidate equally and is omitted. The crossover structure
    /// (pinned by `crates/infer/tests/formats.rs`): unpruned → Dense (the
    /// bit-exact reference path is never displaced when there is nothing
    /// to skip), extreme sparsity → CSR (the bitmap word-scan floor and
    /// the BSR occupancy blow-up both lose to CSR's pure-nonzero cost),
    /// short-row mid sparsity → Bitmap (CSR's per-row ramp-up dominates
    /// short rows), high occupancy or block-clustered sparsity → BSR
    /// (vector-lane blocks run ~2× the scalar dense speed), structured
    /// zero rows → ShrunkDense (the only format whose saving propagates
    /// into the consumer's columns).
    fn choose(&self, w: &Tensor, bias: &[f32], rest: &[LayerSpec]) -> Choice {
        let (out_f, in_cols) = (w.dim(0), w.dim(1));
        let data = w.data();
        let nnz = data.iter().filter(|&&v| v != 0.0).count();
        let mut zero_rows = Vec::new();
        let mut kept = Vec::new();
        let mut live_blocks = 0usize;
        for r in 0..out_f {
            let row = &data[r * in_cols..(r + 1) * in_cols];
            if row.iter().all(|&v| v == 0.0) {
                zero_rows.push(r);
            } else {
                kept.push(r);
            }
            live_blocks += row
                .chunks(crate::formats::BSR_BLOCK_W)
                .filter(|b| b.iter().any(|&v| v != 0.0))
                .count();
        }
        let dropped: Vec<(usize, f32)> = zero_rows.iter().map(|&r| (r, bias[r])).collect();
        let eligible =
            !zero_rows.is_empty() && !kept.is_empty() && shrink_eligible(rest, &dropped);
        let cost_dense = (out_f * in_cols) as f64;
        let cost_csr = nnz as f64 * CSR_MAC_COST + out_f as f64 * CSR_ROW_COST;
        let cost_shrunk = (kept.len() * in_cols) as f64 * SHRUNK_LANE_COST;
        let cost_bsr = (live_blocks * crate::formats::BSR_BLOCK_W) as f64 * BSR_LANE_COST
            + live_blocks as f64 * BSR_BLOCK_COST
            + out_f as f64 * BSR_ROW_COST;
        let cost_bitmap = nnz as f64 * BITMAP_MAC_COST
            + (out_f * in_cols.div_ceil(64)) as f64 * BITMAP_WORD_COST
            + out_f as f64 * BITMAP_ROW_COST;
        let format = match self.opts.force_format {
            Some(ExecFormat::Dense) => ExecFormat::Dense,
            Some(ExecFormat::Csr) => ExecFormat::Csr,
            Some(ExecFormat::ShrunkDense) => {
                if eligible {
                    ExecFormat::ShrunkDense
                } else {
                    ExecFormat::Dense
                }
            }
            // A fully-pruned weight has no live blocks and no set bits;
            // rather than emit an empty blocked/bitmap kernel, fall back
            // to Dense (the degenerate-case contract in tests/formats.rs).
            Some(ExecFormat::Bsr) => {
                if nnz > 0 {
                    ExecFormat::Bsr
                } else {
                    ExecFormat::Dense
                }
            }
            Some(ExecFormat::Bitmap) => {
                if nnz > 0 {
                    ExecFormat::Bitmap
                } else {
                    ExecFormat::Dense
                }
            }
            None if nnz == out_f * in_cols => {
                // An unpruned layer has nothing to skip: no format can
                // drop work, and dense-compiled execution is the
                // bit-exact reference path. Never displace it.
                ExecFormat::Dense
            }
            None => {
                // Fixed evaluation order; strict `<` means ties resolve
                // to the earlier (simpler) format, Dense first.
                let mut best = (cost_dense, ExecFormat::Dense);
                if cost_csr < best.0 {
                    best = (cost_csr, ExecFormat::Csr);
                }
                if nnz > 0 && cost_bsr < best.0 {
                    best = (cost_bsr, ExecFormat::Bsr);
                }
                if nnz > 0 && cost_bitmap < best.0 {
                    best = (cost_bitmap, ExecFormat::Bitmap);
                }
                if eligible && cost_shrunk < best.0 {
                    best = (cost_shrunk, ExecFormat::ShrunkDense);
                }
                best.1
            }
        };
        Choice {
            format,
            kept,
            dropped,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_plan(
        &mut self,
        name: &str,
        format: ExecFormat,
        kernel: &Kernel,
        bias: &[f32],
        dense_macs: u64,
        effective_macs: u64,
        spatial: usize,
    ) {
        self.plans.push(LayerPlan {
            name: name.to_string(),
            format,
            dense_macs,
            effective_macs: effective_macs * spatial as u64,
            storage_bytes: kernel.param_bytes() + bias.len() * 4,
        });
    }
}

/// Materializes the chosen kernel and the carry it hands downstream.
///
/// Returns `(kernel, bias, carry, effective MACs per output pixel)`.
fn build_kernel(
    choice: Choice,
    w: Tensor,
    bias: Vec<f32>,
    out_f: usize,
) -> (Kernel, Vec<f32>, Option<Carry>, u64) {
    let in_cols = w.dim(1);
    match choice.format {
        ExecFormat::Dense => {
            let effective = (out_f * in_cols) as u64;
            (Kernel::Dense(w), bias, None, effective)
        }
        ExecFormat::Csr => {
            let sparse = SparseMatrix::from_dense(&w);
            let effective = sparse.nnz() as u64;
            (Kernel::Csr(sparse), bias, None, effective)
        }
        ExecFormat::Bsr => {
            let blocked = crate::formats::BsrMatrix::from_dense(&w, crate::formats::BSR_BLOCK_W);
            // BSR executes every stored lane, zeros inside live blocks
            // included — that is its honest effective-MAC count.
            let effective = blocked.stored_lanes() as u64;
            (Kernel::Bsr(blocked), bias, None, effective)
        }
        ExecFormat::Bitmap => {
            let bitmap = crate::formats::BitmapMatrix::from_dense(&w);
            let effective = bitmap.nnz() as u64;
            (Kernel::Bitmap(bitmap), bias, None, effective)
        }
        ExecFormat::ShrunkDense => {
            let kept = choice.kept;
            let data = w.data();
            let mut small = Vec::with_capacity(kept.len() * in_cols);
            for &r in &kept {
                small.extend_from_slice(&data[r * in_cols..(r + 1) * in_cols]);
            }
            let small =
                Tensor::from_vec(small, &[kept.len(), in_cols]).expect("shrunk kernel shape");
            let small_bias: Vec<f32> = kept.iter().map(|&r| bias[r]).collect();
            let effective = (kept.len() * in_cols) as u64;
            // A dropped row's weight is all zero, so its output is exactly
            // `bias_r` for every sample — the constant the carry tracks.
            let carry = Carry {
                kept,
                full: out_f,
                dropped: choice.dropped,
            };
            (Kernel::Dense(small), small_bias, Some(carry), effective)
        }
    }
}

struct Choice {
    format: ExecFormat,
    kept: Vec<usize>,
    /// `(row, bias)` of all-zero rows — the constants a shrink would carry.
    dropped: Vec<(usize, f32)>,
}

/// Whether a producer's zero output rows can be dropped.
///
/// A dropped channel still emits its bias — a per-channel constant that
/// downstream transparent ops transform. This walks the remaining chain
/// simulating those constants (`(original index, value)` pairs) until it
/// reaches a consumer that can absorb them:
///
/// * `Linear` — always absorbs (the constant folds into its bias exactly);
/// * unpadded `Conv2d` — absorbs the same way;
/// * padded `Conv2d` — absorbs only if every constant is exactly `0.0`,
///   because padding pixels read zero while a folded constant would have
///   to apply at every patch position;
/// * `Residual` (or chain end) — barrier: the producer stays unshrunk.
fn shrink_eligible(rest: &[LayerSpec], dropped: &[(usize, f32)]) -> bool {
    let mut consts: Vec<(usize, f32)> = dropped.to_vec();
    for spec in rest {
        match spec {
            LayerSpec::Identity
            | LayerSpec::Flatten
            | LayerSpec::MaxPool2d { .. }
            | LayerSpec::AvgPool2d { .. } => {}
            LayerSpec::ReLU => {
                for (_, c) in &mut consts {
                    *c = c.max(0.0);
                }
            }
            LayerSpec::BatchNorm2d {
                gamma,
                beta,
                running_mean,
                running_var,
                eps,
            } => {
                for (idx, c) in &mut consts {
                    let istd = 1.0 / (running_var.data()[*idx] + eps).sqrt();
                    *c = gamma.data()[*idx] * (*c - running_mean.data()[*idx]) * istd
                        + beta.data()[*idx];
                }
            }
            LayerSpec::Linear { .. } => return true,
            LayerSpec::Conv2d { geom, .. } => {
                return (geom.padding_h == 0 && geom.padding_w == 0)
                    || consts.iter().all(|&(_, c)| c == 0.0)
            }
            LayerSpec::Residual { .. } | LayerSpec::Sequential(_) => return false,
        }
    }
    false
}

/// Restricts a linear layer to the carried kept columns and folds the
/// dropped channels' constants into the bias (exactly: each dropped input
/// feature is the same constant for every sample).
fn restrict_linear(weight: &Tensor, bias: &Tensor, carry: Option<Carry>) -> (Tensor, Vec<f32>, usize) {
    let (out_f, full_in) = (weight.dim(0), weight.dim(1));
    let mut b = bias.data().to_vec();
    let Some(carry) = carry else {
        return (weight.clone(), b, full_in);
    };
    assert_eq!(carry.full, full_in, "linear carry width mismatch");
    let data = weight.data();
    for &(d, c) in &carry.dropped {
        if c != 0.0 {
            for (i, bi) in b.iter_mut().enumerate() {
                *bi += data[i * full_in + d] * c;
            }
        }
    }
    let in_cols = carry.kept.len();
    let mut w = Vec::with_capacity(out_f * in_cols);
    for i in 0..out_f {
        let row = &data[i * full_in..(i + 1) * full_in];
        w.extend(carry.kept.iter().map(|&k| row[k]));
    }
    let w = Tensor::from_vec(w, &[out_f, in_cols]).expect("restricted linear shape");
    (w, b, in_cols)
}

/// Restricts a conv layer to the carried kept input channels.
///
/// For padded convolutions the dropped constants must be exactly zero
/// (padding pixels read zero while a folded constant would have to apply
/// everywhere); unpadded convolutions fold `constant · Σ kernel-taps`
/// into the bias exactly.
fn restrict_conv(
    weight: &Tensor,
    bias: &Tensor,
    geom: &Conv2dGeometry,
    carry: Option<Carry>,
) -> (Tensor, Vec<f32>, Conv2dGeometry) {
    let out_c = weight.dim(0);
    let mut b = bias.data().to_vec();
    let Some(carry) = carry else {
        return (weight.clone(), b, *geom);
    };
    assert_eq!(carry.full, geom.in_channels, "conv carry width mismatch");
    let khkw = geom.kernel_h * geom.kernel_w;
    let full_patch = geom.patch_len();
    let data = weight.data();
    let padded = geom.padding_h > 0 || geom.padding_w > 0;
    for &(d, c) in &carry.dropped {
        if c == 0.0 {
            continue;
        }
        assert!(
            !padded,
            "cannot fold nonzero dropped-channel constant into a padded conv \
             (eligibility should have rejected this shrink)"
        );
        for (i, bi) in b.iter_mut().enumerate() {
            let block = &data[i * full_patch + d * khkw..i * full_patch + (d + 1) * khkw];
            let mut acc = 0.0f32;
            for &v in block {
                acc += v;
            }
            *bi += c * acc;
        }
    }
    let in_cols = carry.kept.len() * khkw;
    let mut w = Vec::with_capacity(out_c * in_cols);
    for i in 0..out_c {
        let row = &data[i * full_patch..(i + 1) * full_patch];
        for &k in &carry.kept {
            w.extend_from_slice(&row[k * khkw..(k + 1) * khkw]);
        }
    }
    let w = Tensor::from_vec(w, &[out_c, in_cols]).expect("restricted conv shape");
    let mut g = *geom;
    g.in_channels = carry.kept.len();
    (w, b, g)
}

/// Expands a channel carry across spatial positions after `Flatten`.
fn flatten_carry(carry: &mut Carry, hw: usize) {
    let kept = std::mem::take(&mut carry.kept);
    let dropped = std::mem::take(&mut carry.dropped);
    carry.kept = kept
        .iter()
        .flat_map(|&c| (0..hw).map(move |s| c * hw + s))
        .collect();
    carry.dropped = dropped
        .iter()
        .flat_map(|&(c, v)| (0..hw).map(move |s| (c * hw + s, v)))
        .collect();
    carry.full *= hw;
}

fn pooled_shape(shape: FeatureShape, kernel: usize, stride: usize) -> FeatureShape {
    let FeatureShape::Image { c, h, w } = shape else {
        panic!("pooling requires image features");
    };
    let ext = |e: usize| {
        assert!(e >= kernel, "pool window does not fit input of size {e}");
        (e - kernel) / stride + 1
    };
    FeatureShape::Image {
        c,
        h: ext(h),
        w: ext(w),
    }
}
