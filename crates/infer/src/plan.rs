//! Compiled-model intermediate representation.
//!
//! Compilation lowers an eval-mode [`sb_nn::LayerSpec`] chain into a flat
//! list of [`Planned`] steps. Each step records the per-sample feature
//! shape flowing in and out, so the executor can preplan every scratch
//! buffer once and never allocate inside the forward loop. Weight-bearing
//! steps carry a [`Kernel`] in the storage format the cost model picked;
//! the public [`LayerPlan`] mirrors that decision for reporting.

use sb_tensor::{Conv2dGeometry, SparseMatrix, Tensor};

/// Per-sample feature shape between two compiled steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureShape {
    /// Channel-major image features `[c, h, w]`.
    Image {
        /// Channel count (physical — shrunk layers reduce this).
        c: usize,
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
    },
    /// Flat features of dimension `d`.
    Flat {
        /// Feature dimension.
        d: usize,
    },
}

impl FeatureShape {
    /// Elements per sample.
    pub fn numel(&self) -> usize {
        match *self {
            FeatureShape::Image { c, h, w } => c * h * w,
            FeatureShape::Flat { d } => d,
        }
    }
}

/// Storage format the cost model picked for a weight-bearing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFormat {
    /// Row-major dense weights, copied verbatim from the model.
    Dense,
    /// Compressed sparse rows ([`SparseMatrix`]); wins when unstructured
    /// pruning leaves few enough nonzeros to beat dense streaming.
    Csr,
    /// Physically smaller dense weights: rows zeroed by structured pruning
    /// are dropped and the shrink propagates into the next layer's columns.
    ShrunkDense,
    /// Block-compressed sparse rows ([`crate::formats::BsrMatrix`]) with a
    /// fixed block width: one column index per block of contiguous lanes,
    /// amortizing CSR's per-nonzero index overhead and keeping the input
    /// loads contiguous across each im2col patch row.
    Bsr,
    /// Dense values plus a per-row occupancy bitmask
    /// ([`crate::formats::BitmapMatrix`]); the branch-free set-bit loop
    /// wins at mid sparsity where CSR's per-nonzero overhead loses to
    /// dense streaming.
    Bitmap,
}

impl ExecFormat {
    /// Short label used by plans, reports, trace spans, and benches.
    pub fn label(&self) -> &'static str {
        match self {
            ExecFormat::Dense => "dense",
            ExecFormat::Csr => "csr",
            ExecFormat::ShrunkDense => "shrunk",
            ExecFormat::Bsr => "bsr",
            ExecFormat::Bitmap => "bitmap",
        }
    }

    /// Every concrete format, in cost-model evaluation order.
    pub const ALL: [ExecFormat; 5] = [
        ExecFormat::Dense,
        ExecFormat::Csr,
        ExecFormat::ShrunkDense,
        ExecFormat::Bsr,
        ExecFormat::Bitmap,
    ];
}

/// A weight matrix in its chosen storage format.
///
/// Both variants describe the same logical `[out, in_cols]` operator;
/// `ShrunkDense` layers use a `Dense` kernel that simply has fewer rows
/// and/or columns than the original layer.
#[derive(Debug, Clone)]
pub(crate) enum Kernel {
    /// Row-major `[out, in_cols]` matrix.
    Dense(Tensor),
    /// CSR `[out, in_cols]` matrix.
    Csr(SparseMatrix),
    /// Blocked-sparse `[out, in_cols]` matrix with fixed block width.
    Bsr(crate::formats::BsrMatrix),
    /// Dense values + per-row occupancy bitmask, `[out, in_cols]`.
    Bitmap(crate::formats::BitmapMatrix),
}

impl Kernel {
    pub(crate) fn out_features(&self) -> usize {
        match self {
            Kernel::Dense(t) => t.dim(0),
            Kernel::Csr(s) => s.rows(),
            Kernel::Bsr(b) => b.rows(),
            Kernel::Bitmap(m) => m.rows(),
        }
    }

    /// Multiply-accumulates one input row costs in this format (a conv
    /// kernel's "row" is one output pixel's im2col patch). BSR counts
    /// every stored lane — the kernel multiplies zeros inside live
    /// blocks — while bitmap counts exactly its set bits.
    pub(crate) fn macs(&self) -> u64 {
        match self {
            Kernel::Dense(t) => (t.dim(0) * t.dim(1)) as u64,
            Kernel::Csr(s) => s.nnz() as u64,
            Kernel::Bsr(b) => b.stored_lanes() as u64,
            Kernel::Bitmap(m) => m.nnz() as u64,
        }
    }

    /// Bytes needed to store the weight itself (excluding bias).
    pub(crate) fn param_bytes(&self) -> usize {
        match self {
            Kernel::Dense(t) => t.data().len() * 4,
            Kernel::Csr(s) => s.storage_bytes(),
            Kernel::Bsr(b) => b.storage_bytes(),
            Kernel::Bitmap(m) => m.storage_bytes(),
        }
    }
}

/// One executable operation.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// `y = x · Wᵀ + b` on flat features.
    Matmul { kernel: Kernel, bias: Vec<f32> },
    /// im2col → `rows · Wᵀ + b` → NCHW reorder.
    Conv {
        kernel: Kernel,
        bias: Vec<f32>,
        geom: Conv2dGeometry,
        out_c: usize,
    },
    /// Eval-mode batch norm with per-(physical-)channel parameters.
    BatchNorm {
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        var: Vec<f32>,
        eps: f32,
    },
    /// In-place `max(0, x)`.
    Relu,
    /// Square-window max pooling.
    MaxPool { kernel: usize, stride: usize },
    /// Square-window average pooling.
    AvgPool { kernel: usize, stride: usize },
    /// `relu(main(x) + shortcut(x))`; empty shortcut means identity.
    Residual {
        main: Vec<Planned>,
        shortcut: Vec<Planned>,
    },
}

/// A step plus the feature shapes flowing through it.
#[derive(Debug, Clone)]
pub(crate) struct Planned {
    pub step: Step,
    pub in_shape: FeatureShape,
    pub out_shape: FeatureShape,
    /// `"{name}:{format}"` for weight-bearing steps (the trace span
    /// label), empty for activations/pools/norms.
    pub label: String,
}

/// Public compile report for one weight-bearing layer.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Parameter base name (e.g. `"fc1"`, `"conv2"`).
    pub name: String,
    /// Storage format the cost model picked.
    pub format: ExecFormat,
    /// Multiply-accumulates per sample a dense execution of the *original*
    /// layer would perform — the denominator of theoretical speedup.
    pub dense_macs: u64,
    /// Multiply-accumulates per sample the chosen format actually performs
    /// (CSR counts stored nonzeros; shrunk counts surviving rows/columns).
    pub effective_macs: u64,
    /// Bytes the compiled weight + bias occupy.
    pub storage_bytes: usize,
}
