//! Batched, allocation-reused execution of compiled plans.
//!
//! [`CompiledModel::forward`] splits the batch into fixed-size blocks and
//! runs each block on one `sb-runtime` worker with its own preplanned
//! [`Scratch`] buffers. Per-sample arithmetic never crosses block
//! boundaries and every kernel visits its inputs in a fixed index order,
//! so the logits are byte-identical for any `SB_RUNTIME_THREADS` value.
//!
//! Each kernel replicates the floating-point operation order of the
//! corresponding eval-mode layer in `sb-nn` (im2col unfold order, k-
//! ascending dot products, bias added after the full accumulation,
//! unfused batch-norm arithmetic), so a dense-compiled model reproduces
//! `Model::forward` exactly, not just approximately.

use crate::compile::CompiledModel;
use crate::plan::{FeatureShape, Kernel, Planned, Step};
use sb_tensor::{Conv2dGeometry, Tensor};
use std::sync::Mutex;

/// Per-worker scratch: activation ping-pong buffers, a residual stash,
/// and conv im2col/row staging, all sized once for the worst-case layer.
struct Scratch {
    cur: Vec<f32>,
    tmp: Vec<f32>,
    res: Vec<f32>,
    patch: Vec<f32>,
    rows: Vec<f32>,
}

impl Scratch {
    fn new(block: usize, m: &CompiledModel) -> Scratch {
        Scratch {
            cur: vec![0.0; block * m.max_act],
            tmp: vec![0.0; block * m.max_act],
            res: vec![0.0; block * m.max_act],
            patch: vec![0.0; block * m.max_patch],
            rows: vec![0.0; block * m.max_rows],
        }
    }
}

/// Reusable scratch for [`CompiledModel::forward_batch_into`]: a pool of
/// per-block activation buffers checked out by whichever worker runs each
/// batch block and returned afterwards, so steady-state callers (the
/// serving batcher, latency benchmarks) allocate nothing per forward.
///
/// Every pooled buffer is sized for a full `batch_block`, the worst case
/// any chunk needs; kernels only ever read regions they first wrote, so
/// stale contents from a previous batch are never observable and reusing
/// scratch is bitwise-equivalent to fresh allocation.
pub struct ForwardScratch {
    slots: Mutex<Vec<Scratch>>,
}

impl ForwardScratch {
    fn checkout(&self, m: &CompiledModel) -> Scratch {
        self.slots
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| Scratch::new(m.batch_block, m))
    }

    fn checkin(&self, s: Scratch) {
        self.slots.lock().expect("scratch pool poisoned").push(s);
    }
}

impl CompiledModel {
    /// A fresh scratch pool sized for this plan, for
    /// [`forward_batch_into`](CompiledModel::forward_batch_into).
    pub fn scratch(&self) -> ForwardScratch {
        ForwardScratch {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Runs the compiled plan over a batch, returning `[n, classes]`
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s shape does not match the plan's input shape.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let scratch = self.scratch();
        let mut out = Vec::new();
        let n = self.forward_batch_into(x, &mut out, &scratch);
        Tensor::from_vec(out, &[n, self.classes]).expect("logit shape")
    }

    /// Runs the compiled plan over a batch into a caller-owned logit
    /// buffer, reusing `scratch` across calls: after the first call on a
    /// given pool no activation memory is allocated, which is what keeps
    /// the serving batcher's steady state allocation-free. Returns the
    /// batch size `n`; `out` is resized to `n * classes` logits in the
    /// same row-major order [`forward`](CompiledModel::forward) produces.
    ///
    /// The computation is bitwise-identical to
    /// [`forward`](CompiledModel::forward) — same block decomposition,
    /// same kernels, same operation order — regardless of how often the
    /// scratch pool has been reused.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s shape does not match the plan's input shape.
    pub fn forward_batch_into(
        &self,
        x: &Tensor,
        out: &mut Vec<f32>,
        scratch: &ForwardScratch,
    ) -> usize {
        let n = if x.shape().ndim() == 0 { 0 } else { x.dim(0) };
        match self.input_shape {
            FeatureShape::Flat { d } => assert_eq!(
                x.dims(),
                &[n, d],
                "compiled model expects flat [n, {d}] input"
            ),
            FeatureShape::Image { c, h, w } => assert_eq!(
                x.dims(),
                &[n, c, h, w],
                "compiled model expects image [n, {c}, {h}, {w}] input"
            ),
        }
        let in_numel = self.input_shape.numel();
        let classes = self.classes;
        out.clear();
        out.resize(n * classes, 0.0);
        if out.is_empty() {
            return n;
        }
        let xd = x.data();
        let block = self.batch_block;
        // Per-layer spans opened inside the blocks re-parent under this
        // span (the chunk tasks carry the submitter's path), so traced
        // inference aggregates identically at any thread count.
        let _fwd = sb_trace::span("infer");
        sb_runtime::for_each_chunk_mut(out, block * classes, |ci, out_block| {
            let s0 = ci * block;
            let b = out_block.len() / classes;
            let mut s = scratch.checkout(self);
            s.cur[..b * in_numel]
                .copy_from_slice(&xd[s0 * in_numel..(s0 + b) * in_numel]);
            let Scratch {
                cur,
                tmp,
                res,
                patch,
                rows,
            } = &mut s;
            apply_chain(&self.steps, b, cur, tmp, res, patch, rows);
            out_block.copy_from_slice(&cur[..b * classes]);
            scratch.checkin(s);
        });
        n
    }
}

/// Applies a step chain to `cur` in place (via ping-pong with `tmp`).
fn apply_chain(
    steps: &[Planned],
    b: usize,
    cur: &mut Vec<f32>,
    tmp: &mut Vec<f32>,
    res: &mut Vec<f32>,
    patch: &mut Vec<f32>,
    rows: &mut Vec<f32>,
) {
    for p in steps {
        apply_step(p, b, cur, tmp, res, patch, rows);
    }
}

fn apply_step(
    p: &Planned,
    b: usize,
    cur: &mut Vec<f32>,
    tmp: &mut Vec<f32>,
    res: &mut Vec<f32>,
    patch: &mut Vec<f32>,
    rows: &mut Vec<f32>,
) {
    match &p.step {
        Step::Relu => {
            for v in &mut cur[..b * p.out_shape.numel()] {
                *v = v.max(0.0);
            }
        }
        Step::BatchNorm {
            gamma,
            beta,
            mean,
            var,
            eps,
        } => {
            let FeatureShape::Image { c, h, w } = p.in_shape else {
                panic!("batch norm requires image features");
            };
            let spatial = h * w;
            for ci in 0..c {
                let m = mean[ci];
                let istd = 1.0 / (var[ci] + eps).sqrt();
                let g = gamma[ci];
                let bb = beta[ci];
                for ni in 0..b {
                    let base = (ni * c + ci) * spatial;
                    for v in &mut cur[base..base + spatial] {
                        *v = g * (*v - m) * istd + bb;
                    }
                }
            }
        }
        Step::Matmul { kernel, bias } => {
            let _layer = sb_trace::span_with(|| format!("layer:{}", p.label));
            sb_trace::add(sb_trace::CounterId::Flops, kernel.macs() * b as u64);
            sb_trace::add(sb_trace::CounterId::BytesMoved, kernel.param_bytes() as u64);
            let in_d = p.in_shape.numel();
            let out_d = p.out_shape.numel();
            matmul_rows(kernel, bias, &cur[..b * in_d], in_d, &mut tmp[..b * out_d]);
            std::mem::swap(cur, tmp);
        }
        Step::Conv {
            kernel,
            bias,
            geom,
            out_c,
        } => {
            let (oh, ow) = (geom.out_h(), geom.out_w());
            let spatial = oh * ow;
            let _layer = sb_trace::span_with(|| format!("layer:{}", p.label));
            sb_trace::add(sb_trace::CounterId::Flops, kernel.macs() * (b * spatial) as u64);
            sb_trace::add(sb_trace::CounterId::BytesMoved, kernel.param_bytes() as u64);
            let plen = geom.patch_len();
            im2col_block(&cur[..b * geom.in_channels * geom.in_h * geom.in_w], b, geom, &mut patch[..b * spatial * plen]);
            matmul_rows(
                kernel,
                bias,
                &patch[..b * spatial * plen],
                plen,
                &mut rows[..b * spatial * out_c],
            );
            rows_to_nchw(
                &rows[..b * spatial * out_c],
                b,
                *out_c,
                spatial,
                &mut tmp[..b * out_c * spatial],
            );
            std::mem::swap(cur, tmp);
        }
        Step::MaxPool { kernel, stride } => {
            pool_block(p, b, cur, tmp, *kernel, *stride, true);
            std::mem::swap(cur, tmp);
        }
        Step::AvgPool { kernel, stride } => {
            pool_block(p, b, cur, tmp, *kernel, *stride, false);
            std::mem::swap(cur, tmp);
        }
        Step::Residual { main, shortcut } => {
            let in_len = b * p.in_shape.numel();
            let out_len = b * p.out_shape.numel();
            // Stash the block input; residual bodies contain no nested
            // residual (the compiler guarantees it), so `res` is free to
            // serve as the shortcut's activation buffer.
            let mut short = std::mem::take(res);
            short[..in_len].copy_from_slice(&cur[..in_len]);
            apply_chain(main, b, cur, tmp, res, patch, rows);
            apply_chain(shortcut, b, &mut short, tmp, res, patch, rows);
            for (o, &sv) in cur[..out_len].iter_mut().zip(&short[..out_len]) {
                *o = (*o + sv).max(0.0);
            }
            *res = short;
        }
    }
}

/// `y[r] = x[r] · Wᵀ + bias` over `rows = len/in_d` rows, k-ascending.
fn matmul_rows(kernel: &Kernel, bias: &[f32], x: &[f32], in_d: usize, y: &mut [f32]) {
    let out_d = bias.len();
    match kernel {
        Kernel::Dense(w) => {
            let wd = w.data();
            for (xr, yr) in x.chunks_exact(in_d).zip(y.chunks_exact_mut(out_d)) {
                for (j, o) in yr.iter_mut().enumerate() {
                    let wr = &wd[j * in_d..(j + 1) * in_d];
                    let mut acc = 0.0f32;
                    for (&xv, &wv) in xr.iter().zip(wr) {
                        acc += xv * wv;
                    }
                    *o = acc + bias[j];
                }
            }
        }
        Kernel::Csr(s) => {
            for (xr, yr) in x.chunks_exact(in_d).zip(y.chunks_exact_mut(out_d)) {
                for (j, o) in yr.iter_mut().enumerate() {
                    let (cols, vals) = s.row(j);
                    let mut acc = 0.0f32;
                    for (&ci, &v) in cols.iter().zip(vals) {
                        acc += v * xr[ci as usize];
                    }
                    *o = acc + bias[j];
                }
            }
        }
        Kernel::Bsr(b) => {
            debug_assert_eq!(b.cols(), in_d, "BSR kernel input width");
            b.matmul_rows(x, bias, y);
        }
        Kernel::Bitmap(m) => {
            debug_assert_eq!(m.cols(), in_d, "bitmap kernel input width");
            m.matmul_rows(x, bias, y);
        }
    }
}

/// Unfolds `b` contiguous `[c, h, w]` samples into `[b·oh·ow, patch]`
/// rows — the same element order as `sb_tensor::im2col`.
fn im2col_block(x: &[f32], b: usize, geom: &Conv2dGeometry, patch: &mut [f32]) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let (kh, kw) = (geom.kernel_h, geom.kernel_w);
    let plen = geom.patch_len();
    let stride = geom.stride;
    let (pad_y, pad_x) = (geom.padding_h as isize, geom.padding_w as isize);
    patch.fill(0.0);
    let sample_block = oh * ow * plen;
    for ni in 0..b {
        let sample = &mut patch[ni * sample_block..(ni + 1) * sample_block];
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * plen;
                let base_y = (oy * stride) as isize - pad_y;
                let base_x = (ox * stride) as isize - pad_x;
                for ci in 0..c {
                    let chan = (ni * c + ci) * h * w;
                    for ky in 0..kh {
                        let iy = base_y + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // stays zero (padding)
                        }
                        let src_row = chan + iy as usize * w;
                        let dst = row + (ci * kh + ky) * kw;
                        for kx in 0..kw {
                            let ix = base_x + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            sample[dst + kx] = x[src_row + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Reorders `[b·spatial, c]` rows into `[b, c, spatial]` images.
fn rows_to_nchw(rows: &[f32], b: usize, c: usize, spatial: usize, out: &mut [f32]) {
    for ni in 0..b {
        for p in 0..spatial {
            let row = (ni * spatial + p) * c;
            for ci in 0..c {
                out[(ni * c + ci) * spatial + p] = rows[row + ci];
            }
        }
    }
}

/// Square-window pooling over `b` samples; `max` picks max vs. average.
fn pool_block(
    p: &Planned,
    b: usize,
    cur: &[f32],
    tmp: &mut [f32],
    kernel: usize,
    stride: usize,
    max: bool,
) {
    let FeatureShape::Image { c, h, w } = p.in_shape else {
        panic!("pooling requires image features");
    };
    let FeatureShape::Image { h: oh, w: ow, .. } = p.out_shape else {
        panic!("pooling produces image features");
    };
    let norm = 1.0 / (kernel * kernel) as f32;
    for nc in 0..b * c {
        let in_base = nc * h * w;
        let out_base = nc * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let acc = if max {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..kernel {
                        let iy = oy * stride + ky;
                        for kx in 0..kernel {
                            let ix = ox * stride + kx;
                            let v = cur[in_base + iy * w + ix];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    best
                } else {
                    let mut acc = 0.0f32;
                    for ky in 0..kernel {
                        let iy = oy * stride + ky;
                        for kx in 0..kernel {
                            acc += cur[in_base + iy * w + ox * stride + kx];
                        }
                    }
                    acc * norm
                };
                tmp[out_base + oy * ow + ox] = acc;
            }
        }
    }
}
