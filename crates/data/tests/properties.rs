//! Property-based tests for dataset determinism and loader correctness.

use proptest::prelude::*;
use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_tensor::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_sample_is_deterministic(seed in 0u64..1000, idx in 0usize..64) {
        let spec = DatasetSpec::cifar_like(seed).scaled_down(16);
        let a = SyntheticVision::new(spec.clone());
        let b = SyntheticVision::new(spec);
        prop_assert_eq!(a.sample(Split::Train, idx), b.sample(Split::Train, idx));
        prop_assert_eq!(a.sample(Split::Val, idx % 16), b.sample(Split::Val, idx % 16));
    }

    #[test]
    fn labels_always_in_range(seed in 0u64..1000, idx in 0usize..64) {
        let data = SyntheticVision::new(DatasetSpec::mnist_like(seed).scaled_down(16));
        let (_, label) = data.sample(Split::Train, idx);
        prop_assert!(label < data.spec().classes);
    }

    #[test]
    fn batches_partition_the_split(seed in 0u64..500, batch in 1usize..40) {
        let data = SyntheticVision::new(DatasetSpec::mnist_like(seed).scaled_down(16));
        let batches = batches_of(&data, Split::Val, batch, None, false);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        prop_assert_eq!(total, data.len(Split::Val));
        for (x, labels) in &batches {
            prop_assert_eq!(x.dim(0), labels.len());
            prop_assert!(labels.len() <= batch);
            prop_assert!(!x.has_non_finite());
        }
    }

    #[test]
    fn shuffled_batches_preserve_label_multiset(seed in 0u64..500, shuffle_seed in 0u64..500) {
        let data = SyntheticVision::new(DatasetSpec::cifar_like(seed).scaled_down(16));
        let mut rng = Rng::seed_from(shuffle_seed);
        let shuffled = batches_of(&data, Split::Train, 16, Some(&mut rng), false);
        let plain = batches_of(&data, Split::Train, 16, None, false);
        let collect = |bs: &[(sb_tensor::Tensor, Vec<usize>)]| {
            let mut v: Vec<usize> = bs.iter().flat_map(|(_, l)| l.clone()).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(collect(&shuffled), collect(&plain));
    }

    #[test]
    fn flattened_batches_match_image_batches(seed in 0u64..200) {
        let data = SyntheticVision::new(DatasetSpec::mnist_like(seed).scaled_down(16));
        let flat = batches_of(&data, Split::Val, 8, None, true);
        let img = batches_of(&data, Split::Val, 8, None, false);
        prop_assert_eq!(flat.len(), img.len());
        for ((xf, lf), (xi, li)) in flat.iter().zip(&img) {
            prop_assert_eq!(lf, li);
            prop_assert_eq!(xf.data(), xi.data());
        }
    }

    #[test]
    fn batch_rows_equal_individual_samples(seed in 0u64..200, batch in 2usize..16) {
        let data = SyntheticVision::new(DatasetSpec::cifar_like(seed).scaled_down(16));
        let batches = batches_of(&data, Split::Train, batch, None, false);
        let (x, labels) = &batches[0];
        let feat = x.numel() / x.dim(0);
        for (row, &label) in labels.iter().enumerate() {
            let (img, l) = data.sample(Split::Train, row);
            prop_assert_eq!(l, label);
            prop_assert_eq!(&x.data()[row * feat..(row + 1) * feat], img.data());
        }
    }
}
