//! Property-based tests for dataset determinism and loader correctness,
//! on the in-repo `sb-check` harness.

use sb_check::{check, prop_assert, prop_assert_eq, Config};
use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_tensor::Rng;

/// Pinned suite seed for replayable failures.
const SUITE: u64 = 0x7E45_0003;

fn cfg() -> Config {
    Config::new(SUITE)
}

#[test]
fn any_sample_is_deterministic() {
    check(
        "data::any_sample_is_deterministic",
        cfg(),
        |rng| (rng.below(1000) as u64, rng.below(64)),
        |(seed, idx)| {
            let spec = DatasetSpec::cifar_like(*seed).scaled_down(16);
            let a = SyntheticVision::new(spec.clone());
            let b = SyntheticVision::new(spec);
            prop_assert_eq!(a.sample(Split::Train, *idx), b.sample(Split::Train, *idx));
            prop_assert_eq!(a.sample(Split::Val, idx % 16), b.sample(Split::Val, idx % 16));
            Ok(())
        },
    );
}

#[test]
fn labels_always_in_range() {
    check(
        "data::labels_always_in_range",
        cfg(),
        |rng| (rng.below(1000) as u64, rng.below(64)),
        |(seed, idx)| {
            let data = SyntheticVision::new(DatasetSpec::mnist_like(*seed).scaled_down(16));
            let (_, label) = data.sample(Split::Train, *idx);
            prop_assert!(label < data.spec().classes);
            Ok(())
        },
    );
}

#[test]
fn batches_partition_the_split() {
    check(
        "data::batches_partition_the_split",
        cfg(),
        |rng| (rng.below(500) as u64, rng.below(39) + 1),
        |(seed, batch)| {
            let data = SyntheticVision::new(DatasetSpec::mnist_like(*seed).scaled_down(16));
            let batches = batches_of(&data, Split::Val, *batch, None, false);
            let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
            prop_assert_eq!(total, data.len(Split::Val));
            for (x, labels) in &batches {
                prop_assert_eq!(x.dim(0), labels.len());
                prop_assert!(labels.len() <= *batch);
                prop_assert!(!x.has_non_finite());
            }
            Ok(())
        },
    );
}

#[test]
fn shuffled_batches_preserve_label_multiset() {
    check(
        "data::shuffled_batches_preserve_label_multiset",
        cfg(),
        |rng| (rng.below(500) as u64, rng.below(500) as u64),
        |(seed, shuffle_seed)| {
            let data = SyntheticVision::new(DatasetSpec::cifar_like(*seed).scaled_down(16));
            let mut rng = Rng::seed_from(*shuffle_seed);
            let shuffled = batches_of(&data, Split::Train, 16, Some(&mut rng), false);
            let plain = batches_of(&data, Split::Train, 16, None, false);
            let collect = |bs: &[(sb_tensor::Tensor, Vec<usize>)]| {
                let mut v: Vec<usize> = bs.iter().flat_map(|(_, l)| l.clone()).collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(collect(&shuffled), collect(&plain));
            Ok(())
        },
    );
}

#[test]
fn flattened_batches_match_image_batches() {
    check(
        "data::flattened_batches_match_image_batches",
        cfg(),
        |rng| rng.below(200) as u64,
        |&seed| {
            let data = SyntheticVision::new(DatasetSpec::mnist_like(seed).scaled_down(16));
            let flat = batches_of(&data, Split::Val, 8, None, true);
            let img = batches_of(&data, Split::Val, 8, None, false);
            prop_assert_eq!(flat.len(), img.len());
            for ((xf, lf), (xi, li)) in flat.iter().zip(&img) {
                prop_assert_eq!(lf, li);
                prop_assert_eq!(xf.data(), xi.data());
            }
            Ok(())
        },
    );
}

#[test]
fn batch_rows_equal_individual_samples() {
    check(
        "data::batch_rows_equal_individual_samples",
        cfg(),
        |rng| (rng.below(200) as u64, rng.below(14) + 2),
        |(seed, batch)| {
            let data = SyntheticVision::new(DatasetSpec::cifar_like(*seed).scaled_down(16));
            let batches = batches_of(&data, Split::Train, *batch, None, false);
            let (x, labels) = &batches[0];
            let feat = x.numel() / x.dim(0);
            for (row, &label) in labels.iter().enumerate() {
                let (img, l) = data.sample(Split::Train, row);
                prop_assert_eq!(l, label);
                prop_assert_eq!(&x.data()[row * feat..(row + 1) * feat], img.data());
            }
            Ok(())
        },
    );
}
