//! The procedural image generator.

use crate::spec::{DatasetSpec, Split};
use sb_tensor::{Rng, Tensor};

/// One class's generative template for one channel: two oriented
/// sinusoidal gratings plus a Gaussian blob.
#[derive(Debug, Clone)]
struct ChannelProto {
    // Grating A
    fa: (f32, f32),
    phase_a: f32,
    amp_a: f32,
    // Grating B
    fb: (f32, f32),
    phase_b: f32,
    amp_b: f32,
    // Blob
    center: (f32, f32),
    sigma: f32,
    amp_blob: f32,
}

impl ChannelProto {
    fn sample(rng: &mut Rng) -> Self {
        let freq = |rng: &mut Rng| {
            let f = rng.uniform(0.25, 1.3);
            let theta = rng.uniform(0.0, std::f32::consts::PI);
            (f * theta.cos(), f * theta.sin())
        };
        ChannelProto {
            fa: freq(rng),
            phase_a: rng.uniform(0.0, std::f32::consts::TAU),
            amp_a: rng.uniform(0.5, 1.0),
            fb: freq(rng),
            phase_b: rng.uniform(0.0, std::f32::consts::TAU),
            amp_b: rng.uniform(0.3, 0.8),
            center: (rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75)),
            sigma: rng.uniform(0.08, 0.2),
            amp_blob: rng.uniform(1.0, 2.0) * if rng.coin(0.5) { 1.0 } else { -1.0 },
        }
    }

    /// Pixel value at normalized coordinates, with per-sample jitter.
    fn eval(&self, x: f32, y: f32, jitter: &SampleJitter) -> f32 {
        let ga = self.amp_a
            * (self.fa.0 * x * std::f32::consts::TAU
                + self.fa.1 * y * std::f32::consts::TAU
                + self.phase_a
                + jitter.dphase_a)
                .sin();
        let gb = self.amp_b
            * (self.fb.0 * x * std::f32::consts::TAU
                + self.fb.1 * y * std::f32::consts::TAU
                + self.phase_b
                + jitter.dphase_b)
                .sin();
        let (cx, cy) = (
            self.center.0 + jitter.dcenter.0,
            self.center.1 + jitter.dcenter.1,
        );
        let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
        let blob = self.amp_blob * (-d2 / (2.0 * self.sigma * self.sigma)).exp();
        ga + gb + blob
    }
}

/// Per-sample structural perturbation.
#[derive(Debug, Clone)]
struct SampleJitter {
    dphase_a: f32,
    dphase_b: f32,
    dcenter: (f32, f32),
}

/// A deterministic, class-conditional synthetic image dataset.
///
/// Construction materializes the per-class generative templates; sample
/// images are generated on demand (and are pure functions of
/// `(spec.seed, split, index)`).
///
/// # Example
///
/// ```
/// use sb_data::{DatasetSpec, Split, SyntheticVision};
///
/// let data = SyntheticVision::new(DatasetSpec::cifar_like(0));
/// let (image, label) = data.sample(Split::Train, 0);
/// assert_eq!(image.dims(), &[3, 16, 16]);
/// assert!(label < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    spec: DatasetSpec,
    protos: Vec<Vec<ChannelProto>>, // [class][channel]
}

impl SyntheticVision {
    /// Creates the dataset, deriving class templates from `spec.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`DatasetSpec`]).
    pub fn new(spec: DatasetSpec) -> Self {
        spec.validate();
        let mut rng = Rng::seed_from(spec.seed ^ 0xC0FF_EE00);
        let protos = (0..spec.classes)
            .map(|_| (0..spec.channels).map(|_| ChannelProto::sample(&mut rng)).collect())
            .collect();
        SyntheticVision { spec, protos }
    }

    /// The dataset's specification.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of samples in `split`.
    pub fn len(&self, split: Split) -> usize {
        self.spec.split_size(split)
    }

    /// True if the split is empty (never, for a valid spec).
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Label of sample `index` in `split`. Labels are balanced
    /// round-robin, so every class appears `⌈len/classes⌉` or
    /// `⌊len/classes⌋` times.
    pub fn label(&self, split: Split, index: usize) -> usize {
        assert!(index < self.len(split), "sample index out of range");
        index % self.spec.classes
    }

    /// Generates sample `index` of `split`: a `[C, side, side]` image and
    /// its label. Deterministic for a fixed spec.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len(split)`.
    pub fn sample(&self, split: Split, index: usize) -> (Tensor, usize) {
        let label = self.label(split, index);
        let split_salt = match split {
            Split::Train => 0x7A31u64,
            Split::Val => 0x563Du64,
        };
        let mut rng = Rng::seed_from(
            self.spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(split_salt)
                .wrapping_add((index as u64).wrapping_mul(0xD134_2543_DE82_EF95)),
        );
        let jitter = SampleJitter {
            dphase_a: rng.normal_with(0.0, self.spec.jitter),
            dphase_b: rng.normal_with(0.0, self.spec.jitter),
            dcenter: (
                rng.normal_with(0.0, self.spec.jitter * 0.12),
                rng.normal_with(0.0, self.spec.jitter * 0.12),
            ),
        };
        let shift = self.spec.max_shift as isize;
        let (dx, dy) = if shift > 0 {
            (
                rng.below((2 * shift + 1) as usize) as isize - shift,
                rng.below((2 * shift + 1) as usize) as isize - shift,
            )
        } else {
            (0, 0)
        };
        let side = self.spec.side;
        let c = self.spec.channels;
        let inv = 1.0 / side as f32;
        let mut data = Vec::with_capacity(c * side * side);
        for ci in 0..c {
            let proto = &self.protos[label][ci];
            for py in 0..side as isize {
                for px in 0..side as isize {
                    // Toroidal shift keeps every pixel informative.
                    let sx = (px + dx).rem_euclid(side as isize) as f32 * inv;
                    let sy = (py + dy).rem_euclid(side as isize) as f32 * inv;
                    let v = proto.eval(sx, sy, &jitter) + rng.normal_with(0.0, self.spec.noise_std);
                    data.push(v * 0.5); // keep dynamic range ~unit
                }
            }
        }
        let image = Tensor::from_vec(data, &[c, side, side]).expect("sized above");
        (image, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let a = SyntheticVision::new(DatasetSpec::cifar_like(5));
        let b = SyntheticVision::new(DatasetSpec::cifar_like(5));
        for i in [0usize, 7, 100] {
            assert_eq!(a.sample(Split::Train, i), b.sample(Split::Train, i));
            assert_eq!(a.sample(Split::Val, i), b.sample(Split::Val, i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticVision::new(DatasetSpec::cifar_like(1));
        let b = SyntheticVision::new(DatasetSpec::cifar_like(2));
        assert_ne!(a.sample(Split::Train, 0).0, b.sample(Split::Train, 0).0);
    }

    #[test]
    fn train_and_val_are_disjoint_streams() {
        let d = SyntheticVision::new(DatasetSpec::cifar_like(3));
        assert_ne!(d.sample(Split::Train, 0).0, d.sample(Split::Val, 0).0);
    }

    #[test]
    fn labels_are_balanced() {
        let d = SyntheticVision::new(DatasetSpec::mnist_like(0));
        let mut counts = vec![0usize; 10];
        for i in 0..d.len(Split::Train) {
            counts[d.label(Split::Train, i)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn same_class_samples_correlate_more_than_cross_class() {
        let d = SyntheticVision::new(DatasetSpec::cifar_like(7));
        // Samples 0 and 10 share class 0; sample 1 is class 1.
        let (a, la) = d.sample(Split::Train, 0);
        let (b, lb) = d.sample(Split::Train, 10);
        let (c, lc) = d.sample(Split::Train, 1);
        assert_eq!(la, lb);
        assert_ne!(la, lc);
        let corr = |x: &Tensor, y: &Tensor| {
            let (mx, my) = (x.mean(), y.mean());
            let num: f32 = x
                .data()
                .iter()
                .zip(y.data())
                .map(|(&u, &v)| (u - mx) * (v - my))
                .sum();
            num / (x.data().iter().map(|&u| (u - mx) * (u - mx)).sum::<f32>()
                * y.data().iter().map(|&v| (v - my) * (v - my)).sum::<f32>())
            .sqrt()
        };
        assert!(
            corr(&a, &b) > corr(&a, &c),
            "same-class correlation {} should beat cross-class {}",
            corr(&a, &b),
            corr(&a, &c)
        );
    }

    #[test]
    fn images_have_bounded_range() {
        let d = SyntheticVision::new(DatasetSpec::imagenet_like(0));
        let (img, _) = d.sample(Split::Train, 3);
        assert!(!img.has_non_finite());
        assert!(img.max() < 10.0 && img.min() > -10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let d = SyntheticVision::new(DatasetSpec::mnist_like(0));
        d.sample(Split::Val, 100_000);
    }
}
