//! Dataset specifications and presets.

use sb_json::{json_enum, json_struct};

/// Which partition of a dataset to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training partition.
    Train,
    /// Held-out validation partition.
    Val,
}

json_enum!(Split { Train, Val });

/// Full description of a synthetic vision dataset. Two specs with equal
/// fields generate bit-identical data.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable dataset name (appears in experiment reports).
    pub name: String,
    /// Image channels (1 = grayscale, 3 = RGB-like).
    pub channels: usize,
    /// Square image side length in pixels.
    pub side: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Validation-set size.
    pub val_size: usize,
    /// Standard deviation of additive pixel noise (difficulty knob).
    pub noise_std: f32,
    /// Standard deviation of per-sample structural jitter (phase/position).
    pub jitter: f32,
    /// Maximum random spatial shift in pixels (built-in augmentation).
    pub max_shift: usize,
    /// Master seed; all sample generation derives from it.
    pub seed: u64,
}

json_struct!(DatasetSpec {
    name,
    channels,
    side,
    classes,
    train_size,
    val_size,
    noise_std,
    jitter,
    max_shift,
    seed,
});

impl DatasetSpec {
    /// MNIST stand-in: `1×16×16`, 10 classes, low noise. Deliberately
    /// easy — like MNIST it is "possible to classify with over 99%
    /// accuracy using simple models" (paper §4.2).
    pub fn mnist_like(seed: u64) -> Self {
        DatasetSpec {
            name: "mnist-like".to_string(),
            channels: 1,
            side: 16,
            classes: 10,
            train_size: 1024,
            val_size: 512,
            noise_std: 0.15,
            jitter: 0.1,
            max_shift: 1,
            seed,
        }
    }

    /// CIFAR-10 stand-in: `3×16×16`, 10 classes, moderate noise.
    pub fn cifar_like(seed: u64) -> Self {
        DatasetSpec {
            name: "cifar-like".to_string(),
            channels: 3,
            side: 16,
            classes: 10,
            train_size: 1024,
            val_size: 512,
            noise_std: 0.45,
            jitter: 0.35,
            max_shift: 2,
            seed,
        }
    }

    /// ImageNet stand-in: `3×24×24`, 60 classes, high noise; makes
    /// Top-5 vs Top-1 accuracy meaningfully different.
    pub fn imagenet_like(seed: u64) -> Self {
        DatasetSpec {
            name: "imagenet-like".to_string(),
            channels: 3,
            side: 24,
            classes: 60,
            train_size: 2048,
            val_size: 768,
            noise_std: 0.6,
            jitter: 0.4,
            max_shift: 2,
            seed,
        }
    }

    /// Shrinks train/val sizes by `factor` (for fast tests and criterion
    /// benches); sizes never drop below one batch worth of samples.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor > 0, "factor must be positive");
        self.train_size = (self.train_size / factor).max(self.classes.max(16));
        self.val_size = (self.val_size / factor).max(self.classes.max(16));
        self
    }

    /// Number of samples in a split.
    pub fn split_size(&self, split: Split) -> usize {
        match split {
            Split::Train => self.train_size,
            Split::Val => self.val_size,
        }
    }

    /// Validates invariants; called by the generator constructor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub(crate) fn validate(&self) {
        assert!(self.channels > 0, "channels must be positive");
        assert!(self.side >= 8, "side must be at least 8");
        assert!(self.classes >= 2, "need at least two classes");
        assert!(self.train_size >= self.classes, "train split smaller than class count");
        assert!(self.val_size >= self.classes, "val split smaller than class count");
        assert!(self.noise_std >= 0.0 && self.jitter >= 0.0);
        assert!(self.max_shift < self.side / 2, "shift too large for image side");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DatasetSpec::mnist_like(0).validate();
        DatasetSpec::cifar_like(0).validate();
        DatasetSpec::imagenet_like(0).validate();
    }

    #[test]
    fn scaled_down_shrinks_but_keeps_minimum() {
        let spec = DatasetSpec::cifar_like(0).scaled_down(100);
        assert_eq!(spec.train_size, 16);
        assert_eq!(spec.val_size, 16);
    }

    #[test]
    fn split_sizes() {
        let spec = DatasetSpec::mnist_like(1);
        assert_eq!(spec.split_size(Split::Train), 1024);
        assert_eq!(spec.split_size(Split::Val), 512);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let mut spec = DatasetSpec::mnist_like(0);
        spec.classes = 1;
        spec.validate();
    }

    #[test]
    fn json_round_trip() {
        let spec = DatasetSpec::imagenet_like(9);
        let json = sb_json::to_string(&spec).unwrap();
        let back: DatasetSpec = sb_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
