//! Batching utilities.

use crate::generator::SyntheticVision;
use crate::spec::Split;
use sb_tensor::{Rng, Tensor};

/// A labelled minibatch: stacked inputs (`[N, C, H, W]` or `[N, D]`) and
/// integer labels. Matches `sb_nn::Batch` structurally.
pub type Batch = (Tensor, Vec<usize>);

/// Materializes `split` into minibatches of (at most) `batch_size`.
///
/// * `shuffle`: when `Some(rng)`, the sample order is permuted (use a
///   per-epoch fork of the experiment RNG).
/// * `flatten`: when true, images are flattened to `[N, C·H·W]` for MLP
///   architectures.
///
/// The final batch may be smaller than `batch_size`; no sample is dropped.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn batches_of(
    data: &SyntheticVision,
    split: Split,
    batch_size: usize,
    shuffle: Option<&mut Rng>,
    flatten: bool,
) -> Vec<Batch> {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = data.len(split);
    let order: Vec<usize> = match shuffle {
        Some(rng) => rng.permutation(n),
        None => (0..n).collect(),
    };
    let spec = data.spec();
    let feature_len = spec.channels * spec.side * spec.side;
    let mut batches = Vec::with_capacity(n.div_ceil(batch_size));
    for chunk in order.chunks(batch_size) {
        let mut flat = Vec::with_capacity(chunk.len() * feature_len);
        let mut labels = Vec::with_capacity(chunk.len());
        for &idx in chunk {
            let (img, label) = data.sample(split, idx);
            flat.extend_from_slice(img.data());
            labels.push(label);
        }
        let dims: Vec<usize> = if flatten {
            vec![chunk.len(), feature_len]
        } else {
            vec![chunk.len(), spec.channels, spec.side, spec.side]
        };
        let x = Tensor::from_vec(flat, &dims).expect("sized above");
        batches.push((x, labels));
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn tiny() -> SyntheticVision {
        SyntheticVision::new(DatasetSpec::cifar_like(0).scaled_down(16))
    }

    #[test]
    fn covers_all_samples_without_duplicates() {
        let d = tiny();
        let batches = batches_of(&d, Split::Train, 7, None, false);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, d.len(Split::Train));
        // Unshuffled order is index order → labels are round-robin.
        assert_eq!(batches[0].1[0], 0);
        assert_eq!(batches[0].1[1], 1);
    }

    #[test]
    fn batch_shapes() {
        let d = tiny();
        let batches = batches_of(&d, Split::Val, 8, None, false);
        assert_eq!(batches[0].0.dims(), &[8, 3, 16, 16]);
        let flat = batches_of(&d, Split::Val, 8, None, true);
        assert_eq!(flat[0].0.dims(), &[8, 3 * 16 * 16]);
    }

    #[test]
    fn last_batch_keeps_remainder() {
        let d = tiny(); // 64 train samples
        let batches = batches_of(&d, Split::Train, 60, None, false);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].1.len(), d.len(Split::Train) - 60);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let d = tiny();
        let mut r1 = Rng::seed_from(42);
        let mut r2 = Rng::seed_from(42);
        let b1 = batches_of(&d, Split::Train, 16, Some(&mut r1), false);
        let b2 = batches_of(&d, Split::Train, 16, Some(&mut r2), false);
        assert_eq!(b1[0].1, b2[0].1);
        let mut r3 = Rng::seed_from(43);
        let b3 = batches_of(&d, Split::Train, 16, Some(&mut r3), false);
        assert_ne!(b1[0].1, b3[0].1);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_rejected() {
        batches_of(&tiny(), Split::Train, 0, None, false);
    }
}
