#![warn(missing_docs)]

//! Synthetic vision datasets for `shrinkbench-rs`.
//!
//! The paper's experiments run on MNIST, CIFAR-10, and ImageNet — none of
//! which are available in this environment. This crate provides the
//! substitution documented in DESIGN.md: [`SyntheticVision`], a
//! deterministic, class-conditional procedural image generator with three
//! presets that mirror the *roles* the real datasets play:
//!
//! * [`DatasetSpec::mnist_like`] — single-channel, 10 easy classes. Like
//!   MNIST, models saturate on it quickly, reproducing the paper's
//!   Section 4.2 argument that MNIST results do not discriminate methods.
//! * [`DatasetSpec::cifar_like`] — three-channel, 10 classes, moderate
//!   difficulty; the workhorse for the Figure 7–16 experiments.
//! * [`DatasetSpec::imagenet_like`] — three-channel, many classes, hard;
//!   makes Top-1 vs Top-5 accuracy meaningfully different (Figures 6,
//!   17, 18).
//!
//! Every image is a pure function of `(spec.seed, split, index)`:
//! regenerating a dataset is exact, which is the reproducibility property
//! the paper's recommendations demand.

mod generator;
mod loader;
mod spec;

pub use generator::SyntheticVision;
pub use loader::{batches_of, Batch};
pub use spec::{DatasetSpec, Split};
