//! Serving-layer properties under randomized workloads (suite seed
//! `0x7E45_000B`), plus the virtual-clock determinism contract.
//!
//! One test function (not several) because the determinism half flips
//! the process-global thread override, and `#[test]`s in one binary run
//! concurrently.

use sb_check::{check, Config, Shrink};
use sb_runtime::set_thread_override;
use sb_serve::{
    drain_sim, Completion, EchoEngine, Outcome, RejectReason, ServeConfig, Server, ServiceModel,
    SimClock,
};
use std::sync::Arc;

const CLASSES: usize = 10;

/// One client action at a virtual time.
#[derive(Debug, Clone)]
enum Op {
    /// Submit request number `i` (input `[i as f32]`), with an optional
    /// deadline this many µs after submission.
    Submit { deadline_rel: Option<u64> },
    /// Cancel the request submitted as number `target`.
    Cancel { target: u64 },
}

/// A randomized serving scenario: policy knobs, a service model, and a
/// timed script of submissions and cancellations.
#[derive(Debug, Clone)]
struct Workload {
    cfg: ServeConfig,
    service: ServiceModel,
    /// `(time_us, op)`, ascending in time.
    script: Vec<(u64, Op)>,
    submits: u64,
}

impl Shrink for Workload {}

fn gen_workload(rng: &mut sb_rng::Rng) -> Workload {
    let cfg = ServeConfig {
        max_batch: 1 + rng.below(8),
        max_wait_us: rng.below(2_000) as u64,
        queue_cap: 1 + rng.below(16),
        max_inflight: 1 + rng.below(3),
    };
    let service = ServiceModel {
        base_us: rng.below(500) as u64,
        per_sample_us: rng.below(100) as u64,
    };
    let n = 1 + rng.below(60);
    let mut events: Vec<(u64, Op)> = Vec::new();
    let mut t = 0u64;
    for i in 0..n {
        t += rng.below(800) as u64;
        // A third of requests carry a deadline, some so tight they are
        // dead on arrival (exercises the admission-time check).
        let deadline_rel = match rng.below(3) {
            0 => Some(rng.below(3_000) as u64),
            _ => None,
        };
        events.push((t, Op::Submit { deadline_rel }));
        if rng.below(5) == 0 {
            // Cancel an already-submitted request (possibly this one)
            // a little later; ids are assigned sequentially, so the
            // submit index is the id.
            let target = rng.below(i + 1) as u64;
            events.push((t + rng.below(1_500) as u64, Op::Cancel { target }));
        }
    }
    // Stable by time: simultaneous events keep script order.
    events.sort_by_key(|&(t, _)| t);
    Workload {
        cfg,
        service,
        script: events,
        submits: n as u64,
    }
}

/// Replays the workload on a fresh virtual-clock server and returns the
/// full completion stream. The server (and its `JobQueue`) is built
/// *inside* so the current thread override is honored.
fn run_scenario(w: &Workload) -> Vec<Completion> {
    let clock = Arc::new(SimClock::new());
    let engine = EchoEngine::new(1, CLASSES, w.service);
    let mut server = Server::new(engine, w.cfg.clone(), clock.clone());
    let mut out = Vec::new();
    let mut submitted = 0u64;
    for (t, op) in &w.script {
        while let Some(ev) = server.next_event_us() {
            if ev >= *t {
                break;
            }
            clock.advance_to(ev);
            server.pump();
        }
        clock.advance_to(*t);
        match op {
            Op::Submit { deadline_rel } => {
                server.submit(vec![submitted as f32], deadline_rel.map(|d| t + d));
                submitted += 1;
            }
            Op::Cancel { target } => {
                server.cancel(*target);
            }
        }
        out.append(&mut server.take_completions());
    }
    drain_sim(&mut server, &clock, &mut out);
    out
}

fn accountability(w: &Workload, done: &[Completion]) -> Result<(), String> {
    if done.len() as u64 != w.submits {
        return Err(format!(
            "{} submits but {} resolutions",
            w.submits,
            done.len()
        ));
    }
    let mut seen = vec![false; w.submits as usize];
    for c in done {
        let i = c.id as usize;
        if i >= seen.len() {
            return Err(format!("resolution for unknown id {i}"));
        }
        if seen[i] {
            return Err(format!("id {i} resolved twice"));
        }
        seen[i] = true;
        if c.done_us < c.submitted_us {
            return Err(format!("id {i} resolved before submission"));
        }
        match c.outcome {
            Outcome::Completed {
                predicted,
                batch_size,
                ..
            } => {
                if predicted != i % CLASSES {
                    return Err(format!(
                        "id {i}: predicted {predicted}, echo engine says {}",
                        i % CLASSES
                    ));
                }
                if batch_size == 0 || batch_size > w.cfg.max_batch {
                    return Err(format!(
                        "id {i}: batch size {batch_size} outside (0, {}]",
                        w.cfg.max_batch
                    ));
                }
            }
            Outcome::Rejected {
                reason: RejectReason::DeadlineExpired,
            } => {
                // Only requests that carried deadlines may expire; the
                // script indexes submits in order.
                let had_deadline = w
                    .script
                    .iter()
                    .filter_map(|(_, op)| match op {
                        Op::Submit { deadline_rel } => Some(deadline_rel),
                        Op::Cancel { .. } => None,
                    })
                    .nth(i)
                    .expect("submit exists")
                    .is_some();
                if !had_deadline {
                    return Err(format!("id {i} expired without a deadline"));
                }
            }
            Outcome::Rejected { .. } => {}
        }
    }
    Ok(())
}

fn serialize(done: &[Completion]) -> String {
    sb_json::to_string(&done.to_vec()).expect("completions serialize")
}

/// Regression: `submit` must sweep deadline-expired queue entries
/// *before* the `queue_cap` admission check. Before the fix, a queue
/// full of already-dead requests (deadlines passed with no intervening
/// pump) still counted as "full" and a live submit was shed with
/// `QueueFull` even though every occupant of the queue was dead.
#[test]
fn stale_queue_does_not_shed_live_submissions() {
    let clock = Arc::new(SimClock::new());
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: 50_000,
        queue_cap: 3,
        max_inflight: 1,
    };
    let service = ServiceModel {
        base_us: 100,
        per_sample_us: 10,
    };
    let mut server = Server::new(EchoEngine::new(1, CLASSES, service), cfg, clock.clone());
    // Fill the queue to its cap with short-deadline requests; the long
    // max_wait keeps them queued rather than batched.
    for i in 0..3 {
        server.submit(vec![i as f32], Some(400));
    }
    assert_eq!(server.queue_len(), 3, "queue at cap, nothing launched");
    // Every queued deadline passes without a pump.
    clock.advance_to(10_000);
    let live = server.submit(vec![7.0], Some(60_000));
    let resolved = server.take_completions();
    let live_rejection = resolved
        .iter()
        .find(|c| c.id == live && !c.is_completed());
    assert!(
        live_rejection.is_none(),
        "live request shed against a queue of dead entries: {:?}",
        live_rejection.map(|c| &c.outcome)
    );
    assert_eq!(server.queue_len(), 1, "the live request is queued");
    assert_eq!(
        resolved
            .iter()
            .filter(|c| c.outcome
                == Outcome::Rejected {
                    reason: RejectReason::DeadlineExpired,
                })
            .count(),
        3,
        "the stale occupants resolve as expired, exactly once each"
    );
    let mut out = Vec::new();
    drain_sim(&mut server, &clock, &mut out);
    assert!(
        out.iter().any(|c| c.id == live && c.is_completed()),
        "live request must complete"
    );
}

#[test]
fn serving_is_accountable_and_thread_count_invariant() {
    check(
        "serve_accountability_and_determinism",
        Config::new(0x7E45_000B).cases(40),
        gen_workload,
        |w| {
            set_thread_override(Some(1));
            let at_one = run_scenario(w);
            accountability(w, &at_one)?;
            set_thread_override(Some(4));
            let at_four = run_scenario(w);
            set_thread_override(None);
            if serialize(&at_one) != serialize(&at_four) {
                return Err(
                    "completion stream bytes differ between 1 and 4 worker threads".to_string(),
                );
            }
            Ok(())
        },
    );
    set_thread_override(None);
}
