//! Fault-tolerance suite (seed `0x7E45_000E`): panic isolation through
//! the public API, the breaker → fallback → probe recovery arc under a
//! seeded outage burst, and exactly-once accountability plus
//! thread-count byte-invariance with faults, retries, breakers, and
//! fallbacks all enabled.
//!
//! The property half lives in one test function (not several) because it
//! flips the process-global thread override, and `#[test]`s in one
//! binary run concurrently.

use sb_check::{check, Config, Shrink};
use sb_runtime::set_thread_override;
use sb_serve::{
    drain_sim, BackoffPolicy, BatchEngine, BreakerConfig, BreakerState, Completion, EchoEngine,
    FaultPlan, FaultSpec, Outcome, RejectReason, RetryPolicy, ServeConfig, ServedBy, Server,
    ServiceModel, SimClock,
};
use std::sync::Arc;

const CLASSES: usize = 10;

/// An engine that always panics. The driver-survival regression needs a
/// failure that reaches the harvest path through the public API with no
/// fault-injection machinery involved.
struct PanicEngine {
    service: ServiceModel,
}

impl BatchEngine for PanicEngine {
    fn sample_len(&self) -> usize {
        1
    }

    fn classes(&self) -> usize {
        CLASSES
    }

    fn run_batch(&self, _inputs: &[f32], _n: usize) -> Vec<usize> {
        panic!("engine always fails")
    }

    fn service_us(&self, n: usize) -> u64 {
        self.service.batch_us(n)
    }
}

/// Regression for the old harvest path, which joined batch jobs with
/// `.expect("batch jobs do not fail, retry, or cancel")`: one panicking
/// batch unwound the *driver* thread and lost every member's
/// resolution. The batch job is now the containment boundary — the
/// server survives and resolves each member as `EngineFailure`.
#[test]
fn panicking_batch_resolves_members_instead_of_killing_the_server() {
    let clock = Arc::new(SimClock::new());
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_us: 0,
        queue_cap: 16,
        max_inflight: 1,
    };
    let service = ServiceModel {
        base_us: 100,
        per_sample_us: 10,
    };
    let mut server = Server::new(PanicEngine { service }, cfg, clock.clone());
    let ids: Vec<u64> = (0..4).map(|i| server.submit(vec![i as f32], None)).collect();
    let mut out = Vec::new();
    drain_sim(&mut server, &clock, &mut out);
    assert_eq!(out.len(), 4, "every member resolves exactly once");
    for id in ids {
        let c = out.iter().find(|c| c.id == id).expect("id resolved");
        assert_eq!(
            c.outcome,
            Outcome::Rejected {
                reason: RejectReason::EngineFailure
            },
            "failed batch members resolve as EngineFailure"
        );
    }
    assert!(server.is_idle(), "the driver survives the panic");
}

/// The full degraded-mode arc under one seeded outage: a panic burst
/// confined to a batch-index window trips the breaker, traffic rides the
/// cheaper pruned-model stand-in (`served_by: Fallback`) with its tail
/// under the deadline, half-open probes keep finding the burst until it
/// ends, and the breaker recloses on clean probes.
#[test]
fn fault_burst_opens_breaker_fallback_holds_tail_and_probes_reclose() {
    let clock = Arc::new(SimClock::new());
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_us: 300,
        queue_cap: 64,
        max_inflight: 2,
    };
    // Primary prices like a dense model; the fallback like a 16×-pruned
    // one (cheaper per batch and per sample).
    let primary = ServiceModel {
        base_us: 200,
        per_sample_us: 60,
    };
    let fallback = ServiceModel {
        base_us: 80,
        per_sample_us: 10,
    };
    let spec = FaultSpec {
        panic_per_mille: 1_000,
        window_from: Some(8),
        window_until: Some(16),
        ..FaultSpec::none(0xB0057)
    };
    let deadline_rel = 25_000u64;
    let mut server = Server::new(EchoEngine::new(1, CLASSES, primary), cfg, clock.clone())
        .with_faults(FaultPlan::new(spec))
        .with_breaker(BreakerConfig {
            window: 8,
            min_samples: 4,
            error_threshold_per_mille: 500,
            open_us: 3_000,
            probe_batches: 2,
        })
        .with_fallback(EchoEngine::new(1, CLASSES, fallback));
    let total = 400u64;
    let mut out = Vec::new();
    for i in 0..total {
        let at = i * 150;
        while let Some(ev) = server.next_event_us() {
            if ev >= at {
                break;
            }
            clock.advance_to(ev);
            server.pump();
        }
        clock.advance_to(at);
        server.submit(vec![i as f32], Some(at + deadline_rel));
        out.append(&mut server.take_completions());
    }
    drain_sim(&mut server, &clock, &mut out);

    // Exactly-once accountability across the outage.
    assert_eq!(out.len() as u64, total, "every request resolves");
    let mut ids: Vec<u64> = out.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, total, "no id resolves twice");

    // The burst produced real failures, and the breaker walked the full
    // arc: closed → open, open → half-open, and a final reclose.
    let failures = out
        .iter()
        .filter(|c| {
            c.outcome
                == Outcome::Rejected {
                    reason: RejectReason::EngineFailure,
                }
        })
        .count();
    assert!(failures > 0, "the burst failed at least one batch");
    let events = server.take_breaker_events();
    assert!(
        events
            .iter()
            .any(|e| e.from == BreakerState::Closed && e.to == BreakerState::Open),
        "breaker tripped during the burst: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.from == BreakerState::Open && e.to == BreakerState::HalfOpen),
        "cooldown moved the breaker to half-open: {events:?}"
    );
    assert_eq!(
        events.last().map(|e| e.to),
        Some(BreakerState::Closed),
        "clean probes reclosed the breaker: {events:?}"
    );
    assert_eq!(server.breaker_state(), Some(BreakerState::Closed));

    // Degraded-mode service: the fallback carried real traffic while the
    // primary was out, and its completed tail stayed under the deadline.
    let mut fallback_lat: Vec<u64> = out
        .iter()
        .filter(|c| {
            matches!(
                c.outcome,
                Outcome::Completed {
                    served_by: ServedBy::Fallback,
                    ..
                }
            )
        })
        .map(|c| c.latency_us())
        .collect();
    assert!(
        fallback_lat.len() >= 10,
        "fallback served the outage window, got {} completions",
        fallback_lat.len()
    );
    fallback_lat.sort_unstable();
    let p99 = sb_metrics::percentile_us(&fallback_lat, 0.99);
    assert!(
        p99 <= deadline_rel,
        "fallback p99 {p99}µs blew the {deadline_rel}µs deadline"
    );

    // After the reclose the primary serves again.
    let last_completed = out
        .iter()
        .rev()
        .find_map(|c| match c.outcome {
            Outcome::Completed { served_by, .. } => Some(served_by),
            _ => None,
        })
        .expect("tail traffic completed");
    assert_eq!(
        last_completed,
        ServedBy::Primary,
        "recovered primary carries the tail of the run"
    );
}

/// One client action at a virtual time (submit only: cancellation is
/// covered by the base serving suite; this suite randomizes failures).
#[derive(Debug, Clone)]
struct FaultWorkload {
    cfg: ServeConfig,
    service: ServiceModel,
    fallback: Option<ServiceModel>,
    breaker: Option<BreakerConfig>,
    retry: RetryPolicy,
    fault: FaultSpec,
    /// `(time_us, deadline_rel)` per submission, ascending in time.
    script: Vec<(u64, Option<u64>)>,
}

impl Shrink for FaultWorkload {}

fn gen_fault_workload(rng: &mut sb_rng::Rng) -> FaultWorkload {
    let cfg = ServeConfig {
        max_batch: 1 + rng.below(8),
        max_wait_us: rng.below(2_000) as u64,
        queue_cap: 1 + rng.below(16),
        max_inflight: 1 + rng.below(3),
    };
    let service = ServiceModel {
        base_us: rng.below(500) as u64,
        per_sample_us: rng.below(100) as u64,
    };
    let fallback = (rng.below(2) == 0).then(|| ServiceModel {
        base_us: rng.below(200) as u64,
        per_sample_us: rng.below(40) as u64,
    });
    let breaker = (rng.below(2) == 0).then(|| BreakerConfig {
        window: 4 + rng.below(12),
        min_samples: 1 + rng.below(4),
        error_threshold_per_mille: 250 + rng.below(700) as u32,
        open_us: rng.below(30_000) as u64,
        probe_batches: 1 + rng.below(3) as u32,
    });
    let retry = RetryPolicy {
        max_attempts: 1 + rng.below(3) as u32,
        backoff: BackoffPolicy {
            base_us: rng.below(500) as u64,
            multiplier: 1 + rng.below(3) as u32,
            max_delay_us: 10_000,
        },
    };
    let fault = FaultSpec {
        seed: rng.below(1_000_000) as u64,
        panic_per_mille: rng.below(300) as u32,
        transient_per_mille: rng.below(300) as u32,
        slow_per_mille: rng.below(200) as u32,
        transient_attempts: 1 + rng.below(3) as u32,
        slow_factor: 2 + rng.below(6) as u32,
        window_from: None,
        window_until: None,
    };
    let n = 1 + rng.below(60);
    let mut t = 0u64;
    let script = (0..n)
        .map(|_| {
            t += rng.below(800) as u64;
            let deadline_rel = (rng.below(3) == 0).then(|| rng.below(5_000) as u64);
            (t, deadline_rel)
        })
        .collect();
    FaultWorkload {
        cfg,
        service,
        fallback,
        breaker,
        retry,
        fault,
        script,
    }
}

/// Replays the workload on a fresh virtual-clock server with the full
/// fault stack armed. Built *inside* so the thread override is honored.
fn run_fault_scenario(w: &FaultWorkload) -> Vec<Completion> {
    let clock = Arc::new(SimClock::new());
    let mut server = Server::new(
        EchoEngine::new(1, CLASSES, w.service),
        w.cfg.clone(),
        clock.clone(),
    )
    .with_faults(FaultPlan::new(w.fault))
    .with_retry(w.retry);
    if let Some(cfg) = w.breaker {
        server = server.with_breaker(cfg);
    }
    if let Some(fb) = w.fallback {
        server = server.with_fallback(EchoEngine::new(1, CLASSES, fb));
    }
    let mut out = Vec::new();
    let mut i = 0u64;
    for &(t, deadline_rel) in &w.script {
        while let Some(ev) = server.next_event_us() {
            if ev >= t {
                break;
            }
            clock.advance_to(ev);
            server.pump();
        }
        clock.advance_to(t);
        server.submit(vec![i as f32], deadline_rel.map(|d| t + d));
        i += 1;
        out.append(&mut server.take_completions());
    }
    drain_sim(&mut server, &clock, &mut out);
    out
}

fn fault_accountability(w: &FaultWorkload, done: &[Completion]) -> Result<(), String> {
    let submits = w.script.len();
    if done.len() != submits {
        return Err(format!("{submits} submits but {} resolutions", done.len()));
    }
    let mut seen = vec![false; submits];
    for c in done {
        let i = c.id as usize;
        if i >= seen.len() {
            return Err(format!("resolution for unknown id {i}"));
        }
        if seen[i] {
            return Err(format!("id {i} resolved twice"));
        }
        seen[i] = true;
        if c.done_us < c.submitted_us {
            return Err(format!("id {i} resolved before submission"));
        }
        match c.outcome {
            Outcome::Completed { predicted, .. } => {
                // Both routes are echo engines, so the prediction is
                // route-independent.
                if predicted != i % CLASSES {
                    return Err(format!(
                        "id {i}: predicted {predicted}, echo engine says {}",
                        i % CLASSES
                    ));
                }
            }
            Outcome::Rejected {
                reason: RejectReason::CircuitOpen,
            } => {
                if w.breaker.is_none() {
                    return Err(format!("id {i}: CircuitOpen without a breaker"));
                }
                if w.fallback.is_some() {
                    return Err(format!("id {i}: CircuitOpen despite a fallback engine"));
                }
            }
            Outcome::Rejected {
                reason: RejectReason::EngineFailure,
            } => {
                if w.fault.panic_per_mille == 0 && w.fault.transient_per_mille == 0 {
                    return Err(format!("id {i}: EngineFailure with no failure faults"));
                }
            }
            Outcome::Rejected { .. } => {}
        }
    }
    Ok(())
}

#[test]
fn faulted_serving_is_accountable_and_thread_count_invariant() {
    check(
        "fault_accountability_and_determinism",
        Config::new(0x7E45_000E).cases(40),
        gen_fault_workload,
        |w| {
            set_thread_override(Some(1));
            let at_one = run_fault_scenario(w);
            fault_accountability(w, &at_one)?;
            set_thread_override(Some(4));
            let at_four = run_fault_scenario(w);
            set_thread_override(None);
            let ser = |d: &[Completion]| sb_json::to_string(&d.to_vec()).expect("serialize");
            if ser(&at_one) != ser(&at_four) {
                return Err(
                    "fault-run completion bytes differ between 1 and 4 worker threads".to_string(),
                );
            }
            Ok(())
        },
    );
    set_thread_override(None);
}
