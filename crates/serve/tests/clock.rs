//! The `Clock` trait contract: monotonicity under out-of-order driver
//! advances for [`SimClock`], and a wall-time sanity bound for
//! [`WallClock`]. Everything downstream (server event loops, the
//! multi-tenant scheduler, the autotuner) leans on `now_us` never going
//! backwards — a driver that advances to an already-passed event time
//! must be a no-op, not a rewind.

use sb_serve::{Clock, SimClock, WallClock};
use std::sync::Arc;
use std::thread;

#[test]
fn sim_clock_ignores_backwards_advances() {
    let clock = SimClock::new();
    assert_eq!(clock.now_us(), 0);
    assert!(clock.is_virtual());

    clock.advance_to(500);
    assert_eq!(clock.now_us(), 500);
    // An out-of-order driver (stale next-event estimate) must not
    // rewind time.
    clock.advance_to(120);
    assert_eq!(clock.now_us(), 500);
    clock.advance_to(500);
    assert_eq!(clock.now_us(), 500);
    clock.advance_to(501);
    assert_eq!(clock.now_us(), 501);
    clock.advance(0);
    assert_eq!(clock.now_us(), 501);
    clock.advance(99);
    assert_eq!(clock.now_us(), 600);
}

#[test]
fn sim_clock_is_monotone_under_interleaved_advances() {
    // Two drivers racing advance_to with arbitrary targets: every
    // observation of now_us must be monotone non-decreasing, and the
    // final time must be the max target ever requested.
    let clock = Arc::new(SimClock::new());
    let targets_a: Vec<u64> = vec![10, 700, 30, 250, 9_000, 40, 8_999];
    let targets_b: Vec<u64> = vec![500, 20, 6_000, 10_000, 1, 9_999];
    let spawn = |targets: Vec<u64>, clock: Arc<SimClock>| {
        thread::spawn(move || {
            let mut last = 0u64;
            for t in targets {
                clock.advance_to(t);
                let now = clock.now_us();
                assert!(now >= last, "clock went backwards: {last} -> {now}");
                assert!(now >= t, "advance_to({t}) left the clock at {now}");
                last = now;
            }
            last
        })
    };
    let a = spawn(targets_a, clock.clone());
    let b = spawn(targets_b, clock.clone());
    a.join().expect("driver a");
    b.join().expect("driver b");
    assert_eq!(clock.now_us(), 10_000);
}

#[test]
fn wall_clock_smoke_sanity_bound() {
    let clock = WallClock::new();
    assert!(!clock.is_virtual());
    let t0 = clock.now_us();
    let t1 = clock.now_us();
    assert!(t1 >= t0, "wall clock went backwards: {t0} -> {t1}");
    thread::sleep(std::time::Duration::from_millis(5));
    let t2 = clock.now_us();
    let elapsed = t2 - t0;
    // Slept 5ms: at least that much must have passed, and nothing
    // remotely like a unit error (5ms measured as 5s) — a generous
    // bound that stays robust on a loaded CI box.
    assert!(elapsed >= 5_000, "slept 5ms but clock moved {elapsed}us");
    assert!(elapsed < 60_000_000, "5ms sleep measured as {elapsed}us");
}
