//! The `Clock` trait contract: monotonicity under out-of-order driver
//! advances for [`SimClock`], and a wall-time sanity bound for
//! [`WallClock`]. Everything downstream (server event loops, the
//! multi-tenant scheduler, the autotuner) leans on `now_us` never going
//! backwards — a driver that advances to an already-passed event time
//! must be a no-op, not a rewind.

use sb_serve::{
    BackoffPolicy, Clock, EchoEngine, FaultPlan, FaultSpec, RetryPolicy, ServeConfig, Server,
    ServiceModel, SimClock, WallClock,
};
use std::sync::Arc;
use std::thread;

#[test]
fn sim_clock_ignores_backwards_advances() {
    let clock = SimClock::new();
    assert_eq!(clock.now_us(), 0);
    assert!(clock.is_virtual());

    clock.advance_to(500);
    assert_eq!(clock.now_us(), 500);
    // An out-of-order driver (stale next-event estimate) must not
    // rewind time.
    clock.advance_to(120);
    assert_eq!(clock.now_us(), 500);
    clock.advance_to(500);
    assert_eq!(clock.now_us(), 500);
    clock.advance_to(501);
    assert_eq!(clock.now_us(), 501);
    clock.advance(0);
    assert_eq!(clock.now_us(), 501);
    clock.advance(99);
    assert_eq!(clock.now_us(), 600);
}

#[test]
fn sim_clock_is_monotone_under_interleaved_advances() {
    // Two drivers racing advance_to with arbitrary targets: every
    // observation of now_us must be monotone non-decreasing, and the
    // final time must be the max target ever requested.
    let clock = Arc::new(SimClock::new());
    let targets_a: Vec<u64> = vec![10, 700, 30, 250, 9_000, 40, 8_999];
    let targets_b: Vec<u64> = vec![500, 20, 6_000, 10_000, 1, 9_999];
    let spawn = |targets: Vec<u64>, clock: Arc<SimClock>| {
        thread::spawn(move || {
            let mut last = 0u64;
            for t in targets {
                clock.advance_to(t);
                let now = clock.now_us();
                assert!(now >= last, "clock went backwards: {last} -> {now}");
                assert!(now >= t, "advance_to({t}) left the clock at {now}");
                last = now;
            }
            last
        })
    };
    let a = spawn(targets_a, clock.clone());
    let b = spawn(targets_b, clock.clone());
    a.join().expect("driver a");
    b.join().expect("driver b");
    assert_eq!(clock.now_us(), 10_000);
}

#[test]
fn virtual_retry_backoff_saturates_at_the_clock_ceiling() {
    // A transient fault near the end of virtual time: the backoff charge
    // alone would overflow u64, so the virtual completion time must
    // saturate at u64::MAX rather than wrap to a time before submission
    // (a wrapped done_us would deadlock next_event_us-driven drivers or
    // resolve a request before it was submitted).
    let clock = Arc::new(SimClock::new());
    let cfg = ServeConfig {
        max_batch: 1,
        max_wait_us: 0,
        queue_cap: 4,
        max_inflight: 1,
    };
    let service = ServiceModel {
        base_us: 100,
        per_sample_us: 10,
    };
    let spec = FaultSpec {
        transient_per_mille: 1_000,
        transient_attempts: 2,
        ..FaultSpec::none(1)
    };
    let mut server = Server::new(EchoEngine::new(1, 10, service), cfg, clock.clone())
        .with_faults(FaultPlan::new(spec))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff: BackoffPolicy {
                base_us: u64::MAX / 2 + 1,
                multiplier: 2,
                max_delay_us: u64::MAX,
            },
        });
    clock.advance_to(u64::MAX - 10_000);
    let id = server.submit(vec![1.0], None);
    let ev = server.next_event_us().expect("batch inflight");
    assert_eq!(ev, u64::MAX, "overflowing backoff charge saturates");
    clock.advance_to(ev);
    server.pump();
    let done = server.take_completions();
    assert_eq!(done.len(), 1, "the request resolves exactly once");
    assert_eq!(done[0].id, id);
    assert!(done[0].is_completed(), "retries outlast the fault");
    assert!(
        done[0].done_us >= done[0].submitted_us,
        "saturation must not wrap completion before submission"
    );
}

#[test]
fn sim_clock_fault_schedule_replays_bit_identically() {
    // The fault plan is a pure function of (seed, tenant, batch index)
    // and the SimClock advances only under driver control, so the same
    // faulted workload must produce byte-identical completion streams
    // across runs — including which batches failed.
    let run = || {
        let clock = Arc::new(SimClock::new());
        let cfg = ServeConfig {
            max_batch: 2,
            max_wait_us: 0,
            queue_cap: 16,
            max_inflight: 1,
        };
        let service = ServiceModel {
            base_us: 100,
            per_sample_us: 10,
        };
        let spec = FaultSpec {
            panic_per_mille: 200,
            transient_per_mille: 200,
            slow_per_mille: 100,
            ..FaultSpec::none(0xC10C)
        };
        let mut server = Server::new(EchoEngine::new(1, 10, service), cfg, clock.clone())
            .with_faults(FaultPlan::new(spec))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff: BackoffPolicy {
                    base_us: 50,
                    multiplier: 2,
                    max_delay_us: 1_000,
                },
            });
        let mut out = Vec::new();
        for i in 0..40u64 {
            clock.advance_to(i * 130);
            server.pump();
            server.submit(vec![i as f32], None);
            out.append(&mut server.take_completions());
        }
        sb_serve::drain_sim(&mut server, &clock, &mut out);
        sb_json::to_string(&out).expect("completions serialize")
    };
    let first = run();
    assert!(
        first.contains("EngineFailure") && first.contains("completed"),
        "run produced both failures and completions"
    );
    assert_eq!(first, run(), "fault schedule must replay bit-identically");
}

#[test]
fn wall_clock_smoke_sanity_bound() {
    let clock = WallClock::new();
    assert!(!clock.is_virtual());
    let t0 = clock.now_us();
    let t1 = clock.now_us();
    assert!(t1 >= t0, "wall clock went backwards: {t0} -> {t1}");
    thread::sleep(std::time::Duration::from_millis(5));
    let t2 = clock.now_us();
    let elapsed = t2 - t0;
    // Slept 5ms: at least that much must have passed, and nothing
    // remotely like a unit error (5ms measured as 5s) — a generous
    // bound that stays robust on a loaded CI box.
    assert!(elapsed >= 5_000, "slept 5ms but clock moved {elapsed}us");
    assert!(elapsed < 60_000_000, "5ms sleep measured as {elapsed}us");
}
