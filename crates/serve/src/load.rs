//! Load generation: seeded arrival processes plus open- and closed-loop
//! drivers for both clock modes.
//!
//! * **Open loop** — requests arrive on a schedule that ignores server
//!   state (the textbook way to measure a latency/throughput curve:
//!   offered load keeps coming whether or not the server keeps up, so
//!   saturation shows up as rejections and queueing delay rather than as
//!   a silently throttled client).
//! * **Closed loop** — a fixed population of clients, each submitting,
//!   waiting for its answer, thinking, and submitting again; offered
//!   load self-limits to server capacity.
//!
//! Both drivers obey the single-driver discipline from
//! [`crate::server`]: one thread submits, pumps, and advances the clock.
//! Under a [`SimClock`] the driver advances time event-by-event —
//! `min(next arrival, next server event)` — so the full outcome stream
//! is a deterministic function of `(spec, seed)`.

use crate::clock::{Clock, SimClock};
use crate::engine::BatchEngine;
use crate::server::{Completion, Server};
use sb_rng::Rng;
use std::collections::HashMap;

/// A seeded request-arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Jittered-uniform arrivals: inter-arrival gaps drawn uniformly
    /// from `[0.5, 1.5) ·` mean, holding the offered rate on average.
    Uniform {
        /// Offered load, requests per second.
        rate_rps: f64,
    },
    /// Arrivals in bursts of `burst` back-to-back requests (1 µs apart),
    /// with jittered gaps between bursts sized to hold `rate_rps` on
    /// average. Stresses the micro-batcher's coalescing path.
    Bursty {
        /// Offered load, requests per second.
        rate_rps: f64,
        /// Requests per burst.
        burst: usize,
    },
    /// Offered rate ramps linearly from `start_rps` to `end_rps` across
    /// the horizon. Sweeps through the saturation knee in one run.
    Ramp {
        /// Offered load at time zero, requests per second.
        start_rps: f64,
        /// Offered load at the horizon, requests per second.
        end_rps: f64,
    },
}

/// Uniform `f64` in `[0, 1)` from the generator's top 53 bits.
fn unit(rng: &mut Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ArrivalProcess {
    /// The arrival timestamps (µs, ascending) this process offers over
    /// `[0, horizon_us)` with the given seed. Purely a function of its
    /// arguments.
    pub fn arrivals(&self, horizon_us: u64, seed: u64) -> Vec<u64> {
        let mut rng = Rng::seed_from(seed);
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Uniform { rate_rps } => {
                assert!(rate_rps > 0.0, "rate must be positive");
                let mean_us = 1.0e6 / rate_rps;
                let mut t = 0.0f64;
                loop {
                    t += mean_us * (0.5 + unit(&mut rng));
                    if t >= horizon_us as f64 {
                        break;
                    }
                    out.push(t as u64);
                }
            }
            ArrivalProcess::Bursty { rate_rps, burst } => {
                assert!(rate_rps > 0.0, "rate must be positive");
                assert!(burst > 0, "burst must be positive");
                let gap_us = 1.0e6 * burst as f64 / rate_rps;
                let mut t = 0.0f64;
                loop {
                    t += gap_us * (0.5 + unit(&mut rng));
                    if t >= horizon_us as f64 {
                        break;
                    }
                    for k in 0..burst as u64 {
                        out.push(t as u64 + k);
                    }
                }
            }
            ArrivalProcess::Ramp { start_rps, end_rps } => {
                assert!(
                    start_rps > 0.0 && end_rps > 0.0,
                    "rates must be positive"
                );
                let mut t = 0.0f64;
                loop {
                    let frac = t / horizon_us as f64;
                    let rate = start_rps + (end_rps - start_rps) * frac;
                    t += (1.0e6 / rate) * (0.5 + unit(&mut rng));
                    if t >= horizon_us as f64 {
                        break;
                    }
                    out.push(t as u64);
                }
            }
        }
        out
    }
}

/// An open-loop workload: an arrival schedule plus the per-request
/// deadline policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// How requests arrive.
    pub arrivals: ArrivalProcess,
    /// Offered-load window, µs; requests arriving at or past it do not
    /// exist. The drain after the horizon still runs to completion.
    pub horizon_us: u64,
    /// Seed for the arrival schedule.
    pub seed: u64,
    /// Relative deadline applied to every request (absolute deadline =
    /// arrival + this); None serves every request eventually.
    pub deadline_us: Option<u64>,
}

/// Runs `spec` open-loop against a **virtual-clock** server:
/// deterministic at any worker count. `make_input` supplies the sample
/// for the `i`-th arrival. Drains fully; returns every completion in
/// resolution order.
pub fn run_open_loop_sim<E: BatchEngine + 'static>(
    server: &mut Server<E>,
    clock: &SimClock,
    spec: &LoadSpec,
    mut make_input: impl FnMut(usize) -> Vec<f32>,
) -> Vec<Completion> {
    let arrivals = spec.arrivals.arrivals(spec.horizon_us, spec.seed);
    let mut out = Vec::new();
    for (i, &at) in arrivals.iter().enumerate() {
        // Let the server react to everything scheduled before this
        // arrival (batch timeouts, completions, deadline expiries).
        while let Some(ev) = server.next_event_us() {
            if ev >= at {
                break;
            }
            clock.advance_to(ev);
            server.pump();
        }
        clock.advance_to(at);
        server.submit(make_input(i), spec.deadline_us.map(|d| at + d));
        out.append(&mut server.take_completions());
    }
    drain_sim(server, clock, &mut out);
    out
}

/// Runs `spec` open-loop against a **wall-clock** server, spinning to
/// each arrival time. Measures the real machine; not deterministic.
/// `clock` must be the same [`WallClock`](crate::WallClock) the server
/// was built with (arrival times and deadlines are in its epoch), offset
/// so that "time zero" for the schedule is this call.
///
/// Latency is corrected for **coordinated omission**: every request is
/// accounted from its *scheduled* arrival, not from the moment the
/// driver actually managed to submit it. A single-threaded driver falls
/// behind schedule exactly when the server saturates, and measuring
/// from the late submit would silently erase the queueing delay that
/// the schedule says the client experienced. Concretely: deadlines are
/// `scheduled + deadline_us`, and each returned [`Completion`] has
/// `submitted_us` rewritten to the scheduled arrival, so
/// [`Completion::latency_us`] includes driver lag.
pub fn run_open_loop_wall<E: BatchEngine + 'static>(
    server: &mut Server<E>,
    clock: &dyn Clock,
    spec: &LoadSpec,
    mut make_input: impl FnMut(usize) -> Vec<f32>,
) -> Vec<Completion> {
    assert!(!clock.is_virtual(), "use run_open_loop_sim for SimClock");
    let arrivals = spec.arrivals.arrivals(spec.horizon_us, spec.seed);
    let epoch = clock.now_us();
    let mut scheduled: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    for (i, &at) in arrivals.iter().enumerate() {
        let due = epoch + at;
        while clock.now_us() < due {
            server.pump();
            std::hint::spin_loop();
        }
        let id = server.submit(make_input(i), spec.deadline_us.map(|d| due + d));
        scheduled.insert(id, due);
        out.append(&mut server.take_completions());
    }
    out.append(&mut server.drain_wall());
    for c in &mut out {
        if let Some(&due) = scheduled.get(&c.id) {
            // Rejections are stamped at the decision time, which can
            // precede a badly late submit's schedule; keep done >= submitted.
            c.submitted_us = due.min(c.done_us);
        }
    }
    out
}

/// Drives a virtual-clock server until idle, appending completions.
pub fn drain_sim<E: BatchEngine + 'static>(
    server: &mut Server<E>,
    clock: &SimClock,
    out: &mut Vec<Completion>,
) {
    server.begin_drain();
    out.append(&mut server.take_completions());
    while !server.is_idle() {
        let ev = server
            .next_event_us()
            .expect("a non-idle server always has a next event");
        clock.advance_to(ev);
        server.pump();
        out.append(&mut server.take_completions());
    }
}

/// Runs a **closed-loop** workload against a virtual-clock server:
/// `clients` virtual clients each submit, wait for their answer, think
/// for `think_us`, and repeat, `requests_per_client` times. Offered load
/// self-limits to capacity; deterministic at any worker count.
pub fn run_closed_loop_sim<E: BatchEngine + 'static>(
    server: &mut Server<E>,
    clock: &SimClock,
    clients: usize,
    think_us: u64,
    requests_per_client: usize,
    deadline_us: Option<u64>,
    mut make_input: impl FnMut(usize) -> Vec<f32>,
) -> Vec<Completion> {
    assert!(clients > 0, "need at least one client");
    // Per-client state: next submit time (None once out of credit) and
    // remaining submissions. `owner[id] = client` routes completions.
    let mut ready: Vec<Option<u64>> = vec![Some(0); clients];
    let mut credit: Vec<usize> = vec![requests_per_client; clients];
    let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut out = Vec::new();
    let mut submitted = 0usize;
    loop {
        // Earliest client submit, ties broken by client index.
        let next_client = ready
            .iter()
            .enumerate()
            .filter_map(|(c, t)| t.map(|t| (t, c)))
            .min();
        let next_server = server.next_event_us();
        let take_client = match (next_client, next_server) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((tc, _)), Some(ts)) => tc <= ts,
        };
        if take_client {
            let (tc, c) = next_client.expect("chosen arm has a client");
            clock.advance_to(tc);
            server.pump();
            let now = clock.now_us();
            let id = server.submit(make_input(submitted), deadline_us.map(|d| now + d));
            owner.insert(id, c);
            submitted += 1;
            ready[c] = None;
            credit[c] -= 1;
        } else {
            let ts = next_server.expect("chosen arm has a server event");
            clock.advance_to(ts);
            server.pump();
        }
        for done in server.take_completions() {
            if let Some(&c) = owner.get(&done.id) {
                if credit[c] > 0 {
                    ready[c] = Some(done.done_us + think_us);
                }
            }
            out.push(done);
        }
    }
    drain_sim(server, clock, &mut out);
    out
}

/// Summarizes a completion stream as an [`sb_metrics::ServeProfile`]:
/// completed requests feed the latency/batch distributions, rejections
/// feed the shed-load ledger.
pub fn profile(completions: &[Completion], horizon_us: u64) -> sb_metrics::ServeProfile {
    use crate::server::{Outcome, RejectReason, ServedBy};
    let mut completed: Vec<(u64, usize)> = Vec::new();
    let mut fallback = 0usize;
    let mut rejected = sb_metrics::RejectCounts::default();
    for c in completions {
        match c.outcome {
            Outcome::Completed {
                batch_size,
                served_by,
                ..
            } => {
                completed.push((c.latency_us(), batch_size));
                if served_by == ServedBy::Fallback {
                    fallback += 1;
                }
            }
            Outcome::Rejected { reason } => match reason {
                RejectReason::QueueFull => rejected.queue_full += 1,
                RejectReason::DeadlineExpired => rejected.deadline_expired += 1,
                RejectReason::Cancelled => rejected.cancelled += 1,
                RejectReason::ShuttingDown => rejected.shutting_down += 1,
                RejectReason::QuotaExceeded => rejected.quota_exceeded += 1,
                RejectReason::EngineFailure => rejected.engine_failure += 1,
                RejectReason::CircuitOpen => rejected.circuit_open += 1,
            },
        }
    }
    sb_metrics::ServeProfile::measure(&completed, rejected, horizon_us)
        .with_fallback_count(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EchoEngine, ServiceModel};
    use crate::server::{Outcome, ServeConfig};
    use std::sync::Arc;

    fn sim_server(cfg: ServeConfig, service: ServiceModel) -> (Server<EchoEngine>, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let server = Server::new(EchoEngine::new(1, 10, service), cfg, clock.clone());
        (server, clock)
    }

    #[test]
    fn arrival_processes_hold_their_offered_rate() {
        let horizon = 1_000_000; // 1 s
        for (proc_, expect) in [
            (ArrivalProcess::Uniform { rate_rps: 500.0 }, 500.0),
            (
                ArrivalProcess::Bursty {
                    rate_rps: 500.0,
                    burst: 8,
                },
                500.0,
            ),
            (
                ArrivalProcess::Ramp {
                    start_rps: 200.0,
                    end_rps: 800.0,
                },
                500.0,
            ),
        ] {
            let times = proc_.arrivals(horizon, 42);
            let rate = times.len() as f64;
            assert!(
                (rate - expect).abs() / expect < 0.25,
                "{proc_:?}: {rate} arrivals vs ~{expect}"
            );
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "ascending");
            assert!(*times.last().expect("nonempty") < horizon);
            assert_eq!(times, proc_.arrivals(horizon, 42), "seed-deterministic");
            assert_ne!(times, proc_.arrivals(horizon, 43), "seed-sensitive");
        }
    }

    #[test]
    fn open_loop_sim_answers_every_request_exactly_once() {
        let (mut server, clock) = sim_server(
            ServeConfig {
                max_batch: 8,
                max_wait_us: 2_000,
                queue_cap: 32,
                max_inflight: 2,
            },
            ServiceModel {
                base_us: 300,
                per_sample_us: 50,
            },
        );
        let spec = LoadSpec {
            arrivals: ArrivalProcess::Uniform { rate_rps: 2_000.0 },
            horizon_us: 100_000,
            seed: 7,
            deadline_us: Some(20_000),
        };
        let offered = spec.arrivals.arrivals(spec.horizon_us, spec.seed).len();
        let done = run_open_loop_sim(&mut server, &clock, &spec, |i| vec![i as f32]);
        assert_eq!(done.len(), offered, "every request resolves exactly once");
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), offered, "no id resolves twice");
        let p = profile(&done, spec.horizon_us);
        assert_eq!(p.requests, offered);
        assert!(p.completed > 0, "some traffic must be served");
        assert!(server.is_idle());
    }

    #[test]
    fn closed_loop_sim_self_limits_and_completes_all() {
        let (mut server, clock) = sim_server(
            ServeConfig {
                max_batch: 4,
                max_wait_us: 500,
                queue_cap: 16,
                max_inflight: 1,
            },
            ServiceModel {
                base_us: 100,
                per_sample_us: 25,
            },
        );
        let done = run_closed_loop_sim(&mut server, &clock, 3, 200, 5, None, |i| vec![i as f32]);
        assert_eq!(done.len(), 15, "3 clients x 5 requests");
        assert!(
            done.iter()
                .all(|c| matches!(c.outcome, Outcome::Completed { .. })),
            "closed loop with no deadline completes everything"
        );
    }
}
