//! The serving core: admission control, dynamic micro-batching, and
//! deadline/cancellation handling over a bounded request queue.
//!
//! # Queueing model
//!
//! ```text
//! submit ──▶ [bounded queue] ──▶ micro-batcher ──▶ JobQueue ──▶ pool
//!    │            │  │                │
//!    │ QueueFull  │  │ DeadlineExpired│ (checked at dequeue AND
//!    ▼            ▼  ▼  / Cancelled   ▼  again before execution)
//!  reject      reject              batch job → completions
//! ```
//!
//! The server is **driver-pumped**: one thread (the load generator, a
//! test, a CLI) calls [`Server::submit`] / [`Server::pump`] /
//! [`Server::cancel`], and every queueing decision happens on that
//! thread at a time it reads from the [`Clock`](crate::Clock). Batch
//! *execution* is the only concurrent part — each formed batch is
//! submitted to an `sb-runtime` [`JobQueue`] and harvested strictly in
//! submission order. Under a virtual clock the batch's completion time
//! comes from the engine's service model, so the entire observable
//! outcome stream is a pure function of the submitted workload — the
//! worker count can change *when* the arithmetic runs, never what the
//! driver observes. That is the property the serving suite pins at
//! `SB_RUNTIME_THREADS=1` vs `=4`.
//!
//! # Batching policy
//!
//! A batch closes when the queue holds `max_batch` requests, or when the
//! head request has waited `max_wait_us`, or immediately during drain.
//! At most `max_inflight` batches execute concurrently; when they are
//! all busy the queue keeps filling until admission control sheds load
//! with [`RejectReason::QueueFull`] — that bounded queue *is* the
//! backpressure.
//!
//! # Failure domains
//!
//! Batch execution is the server's only failure domain, and it is
//! contained: a batch job that panics or exhausts its retry budget
//! resolves every member to [`RejectReason::EngineFailure`] instead of
//! killing the driver, so the exactly-once ledger survives any engine
//! fault. Transient errors retry per a [`RetryPolicy`], with backoff
//! charged through the [`Clock`](crate::Clock) (deterministic under
//! `SimClock`). An optional per-server [`CircuitBreaker`] watches
//! primary outcomes: while open, traffic routes to a cheaper fallback
//! engine (provenance recorded as [`ServedBy::Fallback`]) or, with no
//! fallback, sheds fast with [`RejectReason::CircuitOpen`]; half-open
//! probe batches test the primary and re-close the breaker. Faults
//! themselves can be injected deterministically via
//! [`FaultPlan`] — fault `k` hits the `k`-th primary batch, a pure
//! function of the plan's seed, so fault runs replay byte-identically
//! at any worker count.

use crate::clock::Clock;
use crate::engine::{BatchEngine, FallbackEngine};
use sb_fault::{
    BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, Fault, FaultPlan, RetryPolicy,
};
use sb_json::{json_enum, json_struct, Json, ToJson};
use sb_runtime::{Backoff, JobHandle, JobQueue, JobSpec};
use sb_trace::CounterId;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch the micro-batcher will coalesce.
    pub max_batch: usize,
    /// Longest the queue head may wait before an under-filled batch is
    /// closed anyway (0 = batch whatever is queued, immediately).
    pub max_wait_us: u64,
    /// Admission bound: requests arriving while this many are queued are
    /// rejected with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// Batches allowed to execute concurrently; further batches wait in
    /// the queue (and eventually shed load through the admission bound).
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_cap: 64,
            max_inflight: 2,
        }
    }
}

/// Why a request was refused instead of answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was full at admission (backpressure).
    QueueFull,
    /// The request's deadline passed before execution started.
    DeadlineExpired,
    /// The client cancelled the request while it was still queued.
    Cancelled,
    /// The server was draining and no longer admits work.
    ShuttingDown,
    /// The submitter's token-bucket admission quota was exhausted
    /// (multi-tenant rate limiting — see `sb-sched`'s `TenantQuota`).
    QuotaExceeded,
    /// The batch carrying this request failed — the engine panicked, or
    /// a transient error survived the retry budget. The ledger resolves
    /// the members instead of orphaning them.
    EngineFailure,
    /// The engine's circuit breaker was open and no fallback engine was
    /// configured, so the request was shed fast rather than queued
    /// toward a known-failing engine.
    CircuitOpen,
}

json_enum!(RejectReason {
    QueueFull,
    DeadlineExpired,
    Cancelled,
    ShuttingDown,
    QuotaExceeded,
    EngineFailure,
    CircuitOpen
});

/// Which engine produced a completion: the primary model, or the
/// cheaper (typically pruned) fallback that serves while the primary's
/// circuit breaker is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The configured primary engine.
    Primary,
    /// The degraded-mode fallback engine.
    Fallback,
}

json_enum!(ServedBy { Primary, Fallback });

/// How a request resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The request executed in a batch of `batch_size`.
    Completed {
        /// Predicted class for the request's sample.
        predicted: usize,
        /// Size of the batch the request rode in.
        batch_size: usize,
        /// Which engine executed the batch (degraded-mode provenance).
        served_by: ServedBy,
    },
    /// The request never executed.
    Rejected {
        /// Why it was refused.
        reason: RejectReason,
    },
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        match self {
            Outcome::Completed {
                predicted,
                batch_size,
                served_by,
            } => Json::Obj(vec![
                ("status".to_string(), Json::Str("completed".to_string())),
                ("predicted".to_string(), Json::Int(*predicted as i128)),
                ("batch_size".to_string(), Json::Int(*batch_size as i128)),
                ("served_by".to_string(), served_by.to_json()),
            ]),
            Outcome::Rejected { reason } => Json::Obj(vec![
                ("status".to_string(), Json::Str("rejected".to_string())),
                ("reason".to_string(), reason.to_json()),
            ]),
        }
    }
}

/// One resolved request: every submitted request produces exactly one of
/// these, in a deterministic order under a virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The id [`Server::submit`] returned.
    pub id: u64,
    /// Clock time at submission.
    pub submitted_us: u64,
    /// Clock time at resolution (harvest for completions, the rejecting
    /// decision for rejections).
    pub done_us: u64,
    /// How the request resolved.
    pub outcome: Outcome,
}

json_struct!(serialize_only Completion {
    id,
    submitted_us,
    done_us,
    outcome
});

impl Completion {
    /// End-to-end latency: resolution minus submission.
    pub fn latency_us(&self) -> u64 {
        self.done_us.saturating_sub(self.submitted_us)
    }

    /// True for [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, Outcome::Completed { .. })
    }
}

struct Pending {
    id: u64,
    input: Vec<f32>,
    deadline_us: Option<u64>,
    submitted_us: u64,
    cancelled: bool,
}

struct Inflight {
    /// `(id, submitted_us)` per member, batch order.
    members: Vec<(u64, u64)>,
    /// Virtual completion time (service-model priced, including injected
    /// slowdowns and retry backoff); authoritative under a virtual
    /// clock, ignored under wall time.
    done_us: u64,
    /// Which engine is executing the batch.
    served_by: ServedBy,
    /// True for a half-open breaker probe (its outcome feeds
    /// `record_probe`, not the normal window).
    probe: bool,
    handle: JobHandle<(Vec<usize>, u64)>,
}

/// The dynamic-batching server. See the module docs for the model.
pub struct Server<E: BatchEngine + 'static> {
    engine: Arc<E>,
    cfg: ServeConfig,
    clock: Arc<dyn Clock>,
    jobs: JobQueue,
    queue: VecDeque<Pending>,
    inflight: VecDeque<Inflight>,
    completions: Vec<Completion>,
    next_id: u64,
    next_batch: u64,
    draining: bool,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    breaker: Option<CircuitBreaker>,
    fallback: Option<FallbackEngine>,
    /// Primary batches launched so far; index into the fault plan.
    primary_batches: u64,
}

impl<E: BatchEngine + 'static> Server<E> {
    /// A server over `engine` with the given policy and time source.
    pub fn new(engine: E, cfg: ServeConfig, clock: Arc<dyn Clock>) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        Server {
            engine: Arc::new(engine),
            cfg,
            clock,
            jobs: JobQueue::new(),
            queue: VecDeque::new(),
            inflight: VecDeque::new(),
            completions: Vec::new(),
            next_id: 0,
            next_batch: 0,
            draining: false,
            faults: None,
            retry: RetryPolicy::none(),
            breaker: None,
            fallback: None,
            primary_batches: 0,
        }
    }

    /// Injects deterministic faults into primary batch execution: fault
    /// `k` of the plan hits the `k`-th primary batch, so the whole fault
    /// run is a pure function of the plan's seed and the workload.
    /// Fallback batches are never faulted.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Bounded retry for transient engine errors. Backoff between
    /// attempts is charged into the batch's virtual completion time, so
    /// retries are deterministic under `SimClock`; under a wall clock
    /// the pool worker really sleeps.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts >= 1, "retry needs at least one attempt");
        self.retry = retry;
        self
    }

    /// Arms a circuit breaker over primary batch outcomes (see the
    /// module docs' failure-domain section for the state machine).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(CircuitBreaker::new(cfg));
        self
    }

    /// Routes traffic to `fallback` (typically a heavily pruned variant
    /// of the primary model) while the primary's breaker is open.
    /// Completions carry [`ServedBy`] provenance.
    ///
    /// # Panics
    ///
    /// Panics if the fallback's sample length or class count differs
    /// from the primary's.
    pub fn with_fallback(mut self, fallback: impl BatchEngine + 'static) -> Self {
        let primary: Arc<dyn BatchEngine> = self.engine.clone();
        self.fallback = Some(FallbackEngine::new(primary, Arc::new(fallback)));
        self
    }

    /// The engine being served.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The breaker's current state; `None` when no breaker is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state())
    }

    /// Drains recorded breaker state transitions, in occurrence order.
    pub fn take_breaker_events(&mut self) -> Vec<BreakerTransition> {
        self.breaker
            .as_mut()
            .map(|b| b.take_transitions())
            .unwrap_or_default()
    }

    /// Admits (or rejects) one single-sample request. Returns its id;
    /// the resolution arrives later via [`Server::take_completions`].
    /// `deadline_us`, when set, is the **absolute** clock time by which
    /// execution must have started.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not exactly one engine sample long.
    pub fn submit(&mut self, input: Vec<f32>, deadline_us: Option<u64>) -> u64 {
        assert_eq!(
            input.len(),
            self.engine.sample_len(),
            "request sample length"
        );
        let _admit = sb_trace::span("serve:admit");
        let now = self.clock.now_us();
        // Sweep dead occupants *before* the admission decision: entries
        // whose deadline has passed (or that were cancelled) since the
        // last pump are not load, and counting them against `queue_cap`
        // would shed a live request while every occupant of the "full"
        // queue is already dead.
        self.expire(now);
        let id = self.next_id;
        self.next_id += 1;
        let reject = if self.draining {
            Some(RejectReason::ShuttingDown)
        } else if self.shed_while_open(now) {
            Some(RejectReason::CircuitOpen)
        } else if self.queue.len() >= self.cfg.queue_cap {
            Some(RejectReason::QueueFull)
        } else if deadline_us.is_some_and(|d| d <= now) {
            Some(RejectReason::DeadlineExpired)
        } else {
            None
        };
        match reject {
            Some(reason) => {
                sb_trace::add(CounterId::RequestsRejected, 1);
                self.completions.push(Completion {
                    id,
                    submitted_us: now,
                    done_us: now,
                    outcome: Outcome::Rejected { reason },
                });
            }
            None => {
                sb_trace::add(CounterId::RequestsAdmitted, 1);
                self.queue.push_back(Pending {
                    id,
                    input,
                    deadline_us,
                    submitted_us: now,
                    cancelled: false,
                });
            }
        }
        self.advance();
        id
    }

    /// Cancels a request that is still queued. Returns true if the
    /// request was found (it then resolves
    /// [`RejectReason::Cancelled`]); false if it already left the queue
    /// — started executing, or already resolved — in which case its
    /// original resolution stands.
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(p) = self.queue.iter_mut().find(|p| p.id == id) else {
            return false;
        };
        p.cancelled = true;
        self.advance();
        true
    }

    /// Drives the server one step at the current clock time: harvests
    /// finished batches, expires deadlines, and forms/launches due
    /// batches. Call after advancing a virtual clock; under wall time,
    /// call in the driver loop.
    pub fn pump(&mut self) {
        self.advance();
    }

    /// Stops admitting new work and flushes everything queued into
    /// batches as capacity frees up. Subsequent [`Server::submit`] calls
    /// resolve [`RejectReason::ShuttingDown`].
    pub fn begin_drain(&mut self) {
        self.draining = true;
        self.advance();
    }

    /// True when nothing is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty()
    }

    /// Requests waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Batches currently executing.
    pub fn inflight_batches(&self) -> usize {
        self.inflight.len()
    }

    /// Drains accumulated resolutions, in resolution order.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// The next virtual time at which [`Server::pump`] could make
    /// progress (None when idle and nothing is due): the front in-flight
    /// batch's completion, the head-of-queue batch timeout, or the
    /// earliest queued deadline. Virtual-clock drivers advance the
    /// `SimClock` to this and pump; wall-clock drivers can ignore it.
    pub fn next_event_us(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(front) = self.inflight.front() {
            consider(front.done_us);
        }
        if !self.queue.is_empty() && self.inflight.len() < self.cfg.max_inflight {
            // The head request's batch timeout. (A full batch or a drain
            // launches inside `advance` immediately, so no event needed.)
            let head = &self.queue[0];
            consider(head.submitted_us + self.cfg.max_wait_us);
        }
        for p in &self.queue {
            if let Some(d) = p.deadline_us {
                consider(d);
            }
        }
        next
    }

    /// Drains and blocks until idle, returning every accumulated
    /// resolution. Only valid under a wall clock — virtual-clock drivers
    /// must advance time themselves (see
    /// [`drain_sim`](crate::load::drain_sim)).
    ///
    /// # Panics
    ///
    /// Panics under a virtual clock.
    pub fn drain_wall(&mut self) -> Vec<Completion> {
        assert!(
            !self.clock.is_virtual(),
            "drain_wall requires a wall clock; drive virtual servers to idle explicitly"
        );
        self.begin_drain();
        while !self.is_idle() {
            // Launch whatever fits, then block on the front batch: drain
            // makes progress without spinning.
            self.advance();
            if let Some(batch) = self.inflight.pop_front() {
                self.harvest_one(batch);
            }
        }
        self.take_completions()
    }

    // --- internals ----------------------------------------------------

    /// One full scheduling step at the current clock time.
    fn advance(&mut self) {
        let now = self.clock.now_us();
        self.harvest(now);
        self.expire(now);
        while self.can_form(now) {
            self.launch(now);
            self.harvest(now); // inline jobs (1 thread) finish instantly
        }
    }

    /// Resolves finished batches, strictly in launch order.
    fn harvest(&mut self, now: u64) {
        loop {
            let done = match self.inflight.front() {
                None => break,
                Some(front) => {
                    if self.clock.is_virtual() {
                        front.done_us <= now
                    } else {
                        front.handle.is_finished()
                    }
                }
            };
            if !done {
                break;
            }
            let batch = self.inflight.pop_front().expect("front exists");
            self.harvest_one(batch);
        }
    }

    /// Resolves one finished batch. The batch job is the panic
    /// containment boundary: the `JobQueue` catches panics and surfaces
    /// them as errors here, and a failed batch resolves every member to
    /// [`RejectReason::EngineFailure`] — the driver thread and the
    /// exactly-once ledger survive any engine fault.
    fn harvest_one(&mut self, batch: Inflight) {
        let virtual_done = batch.done_us;
        let size = batch.members.len();
        let result = batch.handle.join();
        let done_us = match &result {
            _ if self.clock.is_virtual() => virtual_done,
            Ok((_, finished_us)) => *finished_us,
            Err(_) => self.clock.now_us(),
        };
        // Only primary outcomes feed the breaker: the fallback serving
        // well says nothing about whether the primary has recovered.
        if batch.served_by == ServedBy::Primary {
            if let Some(b) = self.breaker.as_mut() {
                if batch.probe {
                    b.record_probe(done_us, result.is_ok());
                } else {
                    b.record(done_us, result.is_ok());
                }
            }
        }
        match result {
            Ok((preds, _)) => {
                debug_assert_eq!(preds.len(), size, "one prediction per member");
                for ((id, submitted_us), predicted) in batch.members.into_iter().zip(preds) {
                    self.completions.push(Completion {
                        id,
                        submitted_us,
                        done_us,
                        outcome: Outcome::Completed {
                            predicted,
                            batch_size: size,
                            served_by: batch.served_by,
                        },
                    });
                }
            }
            Err(_) => {
                sb_trace::add(CounterId::RequestsRejected, size as u64);
                for (id, submitted_us) in batch.members {
                    self.completions.push(Completion {
                        id,
                        submitted_us,
                        done_us,
                        outcome: Outcome::Rejected {
                            reason: RejectReason::EngineFailure,
                        },
                    });
                }
            }
        }
    }

    /// Dequeue-time policy: drops cancelled and deadline-expired
    /// requests from anywhere in the queue.
    fn expire(&mut self, now: u64) {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        for p in self.queue.drain(..) {
            let reason = if p.cancelled {
                Some(RejectReason::Cancelled)
            } else if p.deadline_us.is_some_and(|d| d <= now) {
                Some(RejectReason::DeadlineExpired)
            } else {
                None
            };
            match reason {
                None => kept.push_back(p),
                Some(reason) => {
                    sb_trace::add(CounterId::RequestsRejected, 1);
                    self.completions.push(Completion {
                        id: p.id,
                        submitted_us: p.submitted_us,
                        done_us: now,
                        outcome: Outcome::Rejected { reason },
                    });
                }
            }
        }
        self.queue = kept;
    }

    fn can_form(&self, now: u64) -> bool {
        if self.queue.is_empty() || self.inflight.len() >= self.cfg.max_inflight {
            return false;
        }
        self.draining
            || self.queue.len() >= self.cfg.max_batch
            || now.saturating_sub(self.queue[0].submitted_us) >= self.cfg.max_wait_us
    }

    /// Closes one batch off the queue head and submits it to the pool.
    fn launch(&mut self, now: u64) {
        let _batch_span = sb_trace::span("serve:batch");
        let take = self.queue.len().min(self.cfg.max_batch);
        let mut members = Vec::with_capacity(take);
        let mut inputs = Vec::with_capacity(take * self.engine.sample_len());
        for _ in 0..take {
            let p = self.queue.pop_front().expect("len checked");
            // Execution-time deadline re-check: a request can expire
            // between the dequeue-time sweep and batch formation (e.g.
            // it queued behind a full in-flight window).
            let reason = if p.cancelled {
                Some(RejectReason::Cancelled)
            } else if p.deadline_us.is_some_and(|d| d <= now) {
                Some(RejectReason::DeadlineExpired)
            } else {
                None
            };
            if let Some(reason) = reason {
                sb_trace::add(CounterId::RequestsRejected, 1);
                self.completions.push(Completion {
                    id: p.id,
                    submitted_us: p.submitted_us,
                    done_us: now,
                    outcome: Outcome::Rejected { reason },
                });
                continue;
            }
            members.push((p.id, p.submitted_us));
            inputs.extend_from_slice(&p.input);
        }
        if members.is_empty() {
            return;
        }

        // Route through the breaker: closed → primary, open → fallback
        // (or shed), half-open → a bounded number of primary probes with
        // the rest on the fallback path.
        let state = match self.breaker.as_mut() {
            Some(b) => b.poll(now),
            None => BreakerState::Closed,
        };
        let (served_by, probe) = match state {
            BreakerState::Closed => (ServedBy::Primary, false),
            BreakerState::HalfOpen => {
                if self.breaker.as_mut().expect("state implies breaker").try_probe() {
                    (ServedBy::Primary, true)
                } else if self.fallback.is_some() {
                    (ServedBy::Fallback, false)
                } else {
                    self.shed_members(members, now, RejectReason::CircuitOpen);
                    return;
                }
            }
            BreakerState::Open => {
                if self.fallback.is_some() {
                    (ServedBy::Fallback, false)
                } else {
                    self.shed_members(members, now, RejectReason::CircuitOpen);
                    return;
                }
            }
        };
        let engine: Arc<dyn BatchEngine> = match served_by {
            ServedBy::Primary => self.engine.clone(),
            ServedBy::Fallback => Arc::clone(
                self.fallback
                    .as_ref()
                    .expect("fallback routing checked")
                    .fallback(),
            ),
        };
        // Faults hit primary batches only, keyed by launch index.
        let fault = match served_by {
            ServedBy::Primary => {
                let idx = self.primary_batches;
                self.primary_batches += 1;
                self.faults
                    .map_or(Fault::None, |plan| plan.fault_for(0, idx))
            }
            ServedBy::Fallback => Fault::None,
        };

        let n = members.len();
        sb_trace::add(CounterId::BatchesExecuted, 1);
        sb_trace::add(CounterId::BatchOccupancy, n as u64);
        let clock = Arc::clone(&self.clock);
        let seq = self.next_batch;
        self.next_batch += 1;
        let service_us = engine.service_us(n);
        // Virtual completion prices the fault in: a slow batch takes
        // factor× the service time; a transient failure pays one service
        // time per attempt plus the backoff waits between them.
        let done_us = match fault {
            Fault::None | Fault::Panic => now + service_us,
            Fault::Slow { factor } => {
                now.saturating_add(service_us.saturating_mul(factor as u64))
            }
            Fault::Transient { failing_attempts } => {
                let attempts = (failing_attempts + 1).min(self.retry.max_attempts);
                now.saturating_add(service_us.saturating_mul(attempts as u64))
                    .saturating_add(self.retry.backoff.total_delay_us(attempts - 1))
            }
        };
        let mut spec = JobSpec::new().label(format!("batch-{seq}"));
        if matches!(fault, Fault::Transient { .. }) && self.retry.max_attempts > 1 {
            spec = spec.retries(self.retry.max_attempts - 1);
            // Real inter-attempt sleeps only make sense on a wall
            // clock; under a virtual clock the backoff is already
            // charged into `done_us` and sleeping would just stall the
            // pool worker at wall speed.
            if !self.clock.is_virtual() {
                let b = self.retry.backoff;
                spec = spec.backoff(Backoff {
                    base: Duration::from_micros(b.base_us),
                    multiplier: b.multiplier,
                    max_delay: Duration::from_micros(b.max_delay_us),
                });
            }
        }
        let handle = self.jobs.submit(spec, move |ctx| {
            let _exec = sb_trace::span("serve:exec");
            match fault {
                Fault::Panic => panic!("injected engine panic (batch {seq})"),
                Fault::Transient { failing_attempts } if ctx.attempt() <= failing_attempts => {
                    Err(format!("injected transient engine fault (batch {seq})"))
                }
                _ => {
                    let preds = engine.run_batch(&inputs, n);
                    Ok((preds, clock.now_us()))
                }
            }
        });
        self.inflight.push_back(Inflight {
            members,
            done_us,
            served_by,
            probe,
            handle,
        });
    }

    /// True when the breaker is open and no fallback exists to serve
    /// degraded traffic: new work is shed at admission rather than
    /// queued toward a known-failing engine.
    fn shed_while_open(&mut self, now: u64) -> bool {
        match (self.breaker.as_mut(), self.fallback.is_some()) {
            (Some(b), false) => b.poll(now) == BreakerState::Open,
            _ => false,
        }
    }

    /// Resolves a formed-but-unlaunchable batch's members.
    fn shed_members(&mut self, members: Vec<(u64, u64)>, now: u64, reason: RejectReason) {
        sb_trace::add(CounterId::RequestsRejected, members.len() as u64);
        for (id, submitted_us) in members {
            self.completions.push(Completion {
                id,
                submitted_us,
                done_us: now,
                outcome: Outcome::Rejected { reason },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::engine::{EchoEngine, ServiceModel};

    // Echo engine: 1 feature, 10 classes, batch price 100 + 10·n µs.
    fn echo_server(cfg: ServeConfig) -> (Server<EchoEngine>, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let engine = EchoEngine::new(
            1,
            10,
            ServiceModel {
                base_us: 100,
                per_sample_us: 10,
            },
        );
        let server = Server::new(engine, cfg, clock.clone());
        (server, clock)
    }

    #[test]
    fn full_batch_launches_immediately_and_prices_by_service_model() {
        let (mut s, clock) = echo_server(ServeConfig {
            max_batch: 4,
            max_wait_us: 1_000,
            queue_cap: 8,
            max_inflight: 1,
        });
        for i in 0..4 {
            s.submit(vec![i as f32], None);
        }
        assert_eq!(s.inflight_batches(), 1, "full batch launches at once");
        assert_eq!(s.next_event_us(), Some(140)); // 100 + 4·10
        clock.advance_to(140);
        s.pump();
        let done = s.take_completions();
        assert_eq!(done.len(), 4);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.done_us, 140);
            assert_eq!(
                c.outcome,
                Outcome::Completed {
                    predicted: i,
                    batch_size: 4,
                    served_by: ServedBy::Primary,
                }
            );
        }
        assert!(s.is_idle());
    }

    #[test]
    fn underfull_batch_flushes_on_head_timeout() {
        let (mut s, clock) = echo_server(ServeConfig {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_cap: 8,
            max_inflight: 1,
        });
        s.submit(vec![3.0], None);
        clock.advance_to(200);
        s.submit(vec![7.0], None);
        assert_eq!(s.inflight_batches(), 0, "batch still open");
        assert_eq!(s.next_event_us(), Some(1_000), "head arrived at 0");
        clock.advance_to(1_000);
        s.pump();
        assert_eq!(s.inflight_batches(), 1);
        clock.advance_to(1_000 + 120);
        s.pump();
        let done = s.take_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].latency_us(), 1_120);
        assert_eq!(done[1].latency_us(), 920);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let (mut s, _clock) = echo_server(ServeConfig {
            max_batch: 2,
            max_wait_us: 1_000,
            queue_cap: 2,
            max_inflight: 1,
        });
        s.submit(vec![0.0], None);
        s.submit(vec![1.0], None); // full batch -> inflight
        s.submit(vec![2.0], None);
        s.submit(vec![3.0], None); // queue now at cap
        let id = s.submit(vec![4.0], None);
        let done = s.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(
            done[0].outcome,
            Outcome::Rejected {
                reason: RejectReason::QueueFull
            }
        );
    }

    #[test]
    fn queued_deadline_expires_while_inflight_is_busy() {
        let (mut s, clock) = echo_server(ServeConfig {
            max_batch: 2,
            max_wait_us: 10_000,
            queue_cap: 8,
            max_inflight: 1,
        });
        s.submit(vec![0.0], None);
        s.submit(vec![1.0], None); // busy until 120
        let id = s.submit(vec![2.0], Some(50));
        assert_eq!(s.next_event_us(), Some(50), "deadline is the next event");
        clock.advance_to(50);
        s.pump();
        let done = s.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].done_us, 50);
        assert_eq!(
            done[0].outcome,
            Outcome::Rejected {
                reason: RejectReason::DeadlineExpired
            }
        );
    }

    #[test]
    fn cancel_hits_queued_requests_only() {
        let (mut s, clock) = echo_server(ServeConfig {
            max_batch: 2,
            max_wait_us: 10_000,
            queue_cap: 8,
            max_inflight: 1,
        });
        let a = s.submit(vec![0.0], None);
        s.submit(vec![1.0], None); // [a, b] inflight
        let c = s.submit(vec![2.0], None);
        assert!(!s.cancel(a), "already executing");
        assert!(s.cancel(c), "still queued");
        assert!(!s.cancel(999), "unknown id");
        let done = s.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, c);
        assert_eq!(
            done[0].outcome,
            Outcome::Rejected {
                reason: RejectReason::Cancelled
            }
        );
        clock.advance_to(120);
        s.pump();
        assert_eq!(s.take_completions().len(), 2);
        assert!(s.is_idle());
    }

    #[test]
    fn drain_flushes_partials_and_refuses_new_work() {
        let (mut s, clock) = echo_server(ServeConfig {
            max_batch: 8,
            max_wait_us: 10_000,
            queue_cap: 8,
            max_inflight: 1,
        });
        s.submit(vec![1.0], None);
        s.begin_drain();
        assert_eq!(s.inflight_batches(), 1, "drain flushes the open batch");
        let late = s.submit(vec![2.0], None);
        let done = s.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, late);
        assert_eq!(
            done[0].outcome,
            Outcome::Rejected {
                reason: RejectReason::ShuttingDown
            }
        );
        clock.advance_to(s.next_event_us().expect("batch completion pending"));
        s.pump();
        assert_eq!(s.take_completions().len(), 1);
        assert!(s.is_idle());
    }

    #[test]
    fn completion_serializes_stably() {
        let c = Completion {
            id: 7,
            submitted_us: 10,
            done_us: 150,
            outcome: Outcome::Completed {
                predicted: 3,
                batch_size: 4,
                served_by: ServedBy::Primary,
            },
        };
        assert_eq!(
            sb_json::to_string(&c).expect("serialize"),
            r#"{"id":7,"submitted_us":10,"done_us":150,"outcome":{"status":"completed","predicted":3,"batch_size":4,"served_by":"Primary"}}"#
        );
        let r = Completion {
            id: 8,
            submitted_us: 10,
            done_us: 10,
            outcome: Outcome::Rejected {
                reason: RejectReason::QueueFull,
            },
        };
        assert_eq!(
            sb_json::to_string(&r).expect("serialize"),
            r#"{"id":8,"submitted_us":10,"done_us":10,"outcome":{"status":"rejected","reason":"QueueFull"}}"#
        );
    }
}
