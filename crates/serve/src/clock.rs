//! Time sources for the serving layer.
//!
//! Every serving decision — batch timeouts, deadline checks, latency
//! accounting — reads time through the [`Clock`] trait, so the same
//! server code runs in two modes:
//!
//! * [`WallClock`] — monotonic real time, for load tests that measure
//!   the machine;
//! * [`SimClock`] — a virtual microsecond counter advanced explicitly by
//!   the driver, for tests and smokes whose outcomes must be
//!   bit-reproducible at any `SB_RUNTIME_THREADS`.
//!
//! Virtual time only moves when the single driver thread advances it, so
//! under [`SimClock`] every timeout and deadline comparison is a pure
//! function of the submitted workload — worker threads executing batches
//! concurrently cannot influence it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond source. `0` is the clock's creation.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;

    /// True when time only advances via explicit driver calls
    /// ([`SimClock`]); the server then derives completion times from the
    /// engine's service model instead of measuring them.
    fn is_virtual(&self) -> bool;
}

/// Real monotonic time.
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn is_virtual(&self) -> bool {
        false
    }
}

/// Deterministic virtual time: a counter advanced only by the driver.
///
/// Reads are allowed from any thread (the counter is atomic), but the
/// determinism contract assumes a **single** driver advances it — the
/// serving property suite and CI smoke are built on that discipline.
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        SimClock {
            now: AtomicU64::new(0),
        }
    }

    /// Moves virtual time forward to `t_us`. Time never goes backwards:
    /// an earlier target leaves the clock untouched.
    pub fn advance_to(&self, t_us: u64) {
        self.now.fetch_max(t_us, Ordering::SeqCst);
    }

    /// Moves virtual time forward by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.now.fetch_add(delta_us, Ordering::SeqCst);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl Clock for SimClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_monotonic() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(10);
        c.advance_to(5); // backwards target ignored
        assert_eq!(c.now_us(), 10);
        c.advance_to(25);
        assert_eq!(c.now_us(), 25);
        assert!(c.is_virtual());
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_us();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(c.now_us() > a);
        assert!(!c.is_virtual());
    }
}
