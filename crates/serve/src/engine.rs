//! Batch execution engines behind the serving layer.
//!
//! The server coalesces single-sample requests into a contiguous batch
//! and hands it to a [`BatchEngine`]. Two implementations:
//!
//! * [`InferEngine`] — wraps a compiled `sb-infer` model; the real thing,
//!   running `forward_batch_into` on reused scratch so steady-state
//!   serving allocates no activation memory.
//! * [`EchoEngine`] — a trivial engine for queueing-behavior tests: the
//!   predicted class is a pure function of the sample, and compute cost
//!   exists only through the service model.
//!
//! Every engine also prices a batch in **virtual microseconds**
//! ([`BatchEngine::service_us`]); under a `SimClock` the server uses that
//! price as the batch's completion time, which is what makes simulated
//! serving deterministic while the actual computation still runs (and is
//! verified) on the worker pool.

use sb_infer::{CompiledModel, FeatureShape, ForwardScratch};
use sb_tensor::Tensor;
use std::sync::{Arc, Mutex};

/// Linear batch service-time model: `base_us + per_sample_us · n`.
///
/// The intercept models per-batch dispatch overhead, the slope per-sample
/// compute; dynamic batching is profitable exactly when `base_us`
/// dominates, and the load harness exists to show where that flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Fixed per-batch cost, microseconds.
    pub base_us: u64,
    /// Marginal per-sample cost, microseconds.
    pub per_sample_us: u64,
}

impl ServiceModel {
    /// Price of an `n`-sample batch.
    pub fn batch_us(&self, n: usize) -> u64 {
        self.base_us + self.per_sample_us * n as u64
    }
}

/// Executes coalesced batches for the server.
pub trait BatchEngine: Send + Sync {
    /// Flattened `f32` features one request sample carries.
    fn sample_len(&self) -> usize;

    /// Number of output classes.
    fn classes(&self) -> usize;

    /// Runs `n` samples (row-major in `inputs`, `n · sample_len`
    /// values) and returns the predicted class per sample.
    fn run_batch(&self, inputs: &[f32], n: usize) -> Vec<usize>;

    /// Virtual price of an `n`-sample batch, used as the batch service
    /// time under a virtual clock.
    fn service_us(&self, n: usize) -> u64;
}

/// A [`BatchEngine`] over a compiled `sb-infer` model.
///
/// Logit buffers are pooled alongside the model's [`ForwardScratch`], so
/// concurrent batches neither contend on a shared buffer nor allocate
/// activations after warm-up.
pub struct InferEngine {
    model: CompiledModel,
    scratch: ForwardScratch,
    logits: Mutex<Vec<Vec<f32>>>,
    sample_dims: Vec<usize>,
    sample_len: usize,
    service: ServiceModel,
}

impl InferEngine {
    /// Wraps a compiled model with the given virtual service model (only
    /// consulted under a virtual clock; wall-clock serving measures the
    /// real thing).
    pub fn new(model: CompiledModel, service: ServiceModel) -> Self {
        let sample_dims: Vec<usize> = match model.input_shape() {
            FeatureShape::Flat { d } => vec![d],
            FeatureShape::Image { c, h, w } => vec![c, h, w],
        };
        let sample_len = sample_dims.iter().product();
        InferEngine {
            scratch: model.scratch(),
            model,
            logits: Mutex::new(Vec::new()),
            sample_dims,
            sample_len,
            service,
        }
    }

    /// The wrapped compiled model.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }
}

impl BatchEngine for InferEngine {
    fn sample_len(&self) -> usize {
        self.sample_len
    }

    fn classes(&self) -> usize {
        self.model.classes()
    }

    fn run_batch(&self, inputs: &[f32], n: usize) -> Vec<usize> {
        assert_eq!(inputs.len(), n * self.sample_len, "batch input length");
        let mut dims = Vec::with_capacity(1 + self.sample_dims.len());
        dims.push(n);
        dims.extend_from_slice(&self.sample_dims);
        let x = Tensor::from_vec(inputs.to_vec(), &dims).expect("batch tensor shape");
        let mut out = self
            .logits
            .lock()
            .expect("logit pool poisoned")
            .pop()
            .unwrap_or_default();
        self.model.forward_batch_into(&x, &mut out, &self.scratch);
        let classes = self.model.classes();
        let preds = (0..n)
            .map(|i| {
                let row = &out[i * classes..(i + 1) * classes];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect();
        self.logits.lock().expect("logit pool poisoned").push(out);
        preds
    }

    fn service_us(&self, n: usize) -> u64 {
        self.service.batch_us(n)
    }
}

/// A primary engine paired with a cheaper (typically heavily pruned)
/// fallback serving the same traffic shape.
///
/// The pair is validated once at construction — identical sample length
/// and class count — so the server can route any formed batch to either
/// engine while the primary's circuit breaker is open, and a completion
/// differs only in latency and provenance, never in shape.
pub struct FallbackEngine {
    primary: Arc<dyn BatchEngine>,
    fallback: Arc<dyn BatchEngine>,
}

impl FallbackEngine {
    /// Pairs `primary` with `fallback`.
    ///
    /// # Panics
    ///
    /// Panics if the engines disagree on sample length or class count.
    pub fn new(primary: Arc<dyn BatchEngine>, fallback: Arc<dyn BatchEngine>) -> Self {
        assert_eq!(
            primary.sample_len(),
            fallback.sample_len(),
            "fallback engine sample length must match the primary"
        );
        assert_eq!(
            primary.classes(),
            fallback.classes(),
            "fallback engine class count must match the primary"
        );
        FallbackEngine { primary, fallback }
    }

    /// The full-quality engine.
    pub fn primary(&self) -> &Arc<dyn BatchEngine> {
        &self.primary
    }

    /// The degraded-mode engine.
    pub fn fallback(&self) -> &Arc<dyn BatchEngine> {
        &self.fallback
    }
}

/// A compute-free engine for pure queueing tests: class =
/// `sample[0] as usize % classes`, cost given entirely by the service
/// model.
pub struct EchoEngine {
    sample_len: usize,
    classes: usize,
    service: ServiceModel,
}

impl EchoEngine {
    /// An echo engine over `sample_len`-feature samples.
    pub fn new(sample_len: usize, classes: usize, service: ServiceModel) -> Self {
        assert!(sample_len > 0 && classes > 0);
        EchoEngine {
            sample_len,
            classes,
            service,
        }
    }
}

impl BatchEngine for EchoEngine {
    fn sample_len(&self) -> usize {
        self.sample_len
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn run_batch(&self, inputs: &[f32], n: usize) -> Vec<usize> {
        assert_eq!(inputs.len(), n * self.sample_len, "batch input length");
        (0..n)
            .map(|i| {
                let v = inputs[i * self.sample_len].abs() as usize;
                v % self.classes
            })
            .collect()
    }

    fn service_us(&self, n: usize) -> u64 {
        self.service.batch_us(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_model_is_affine() {
        let m = ServiceModel {
            base_us: 100,
            per_sample_us: 7,
        };
        assert_eq!(m.batch_us(0), 100);
        assert_eq!(m.batch_us(8), 156);
    }

    #[test]
    fn echo_engine_maps_first_feature_to_class() {
        let e = EchoEngine::new(
            2,
            4,
            ServiceModel {
                base_us: 1,
                per_sample_us: 1,
            },
        );
        let preds = e.run_batch(&[5.0, 0.0, 2.0, 0.0, 9.0, 0.0], 3);
        assert_eq!(preds, vec![1, 2, 1]);
    }
}
