#![warn(missing_docs)]

//! Forward-only model serving for shrinkbench-rs.
//!
//! The paper's efficiency story is usually told in offline terms —
//! compression ratio, theoretical speedup, realized per-batch latency
//! (`sb-infer`). This crate asks the production question instead: **does
//! a pruned model serve more traffic?** Serving cost is not a single
//! batch's latency; it is queueing, batching policy, deadlines, and load
//! shedding, and a model that is 2× faster per batch can be far more
//! than 2× better at a fixed tail-latency target because it spends less
//! of every second saturated.
//!
//! The pieces:
//!
//! * [`Server`] — dynamic micro-batching over a [`BatchEngine`], with a
//!   bounded admission queue, per-request absolute deadlines,
//!   cancellation, and graceful drain ([`server`] module docs cover the
//!   queueing model);
//! * [`Clock`] / [`WallClock`] / [`SimClock`] — every serving decision
//!   reads time through a trait, so the same server measures the real
//!   machine or replays bit-reproducibly under a virtual clock at any
//!   `SB_RUNTIME_THREADS`;
//! * [`InferEngine`] / [`EchoEngine`] — the real compiled-model backend
//!   and a compute-free one for queueing tests;
//! * [`load`] — seeded arrival processes (uniform / bursty / ramp) and
//!   open-/closed-loop drivers.
//!
//! Batches execute on the `sb-runtime` pool via `JobQueue`, so serving
//! composes with the same scheduler, tracing, and determinism contract
//! as the rest of the workspace. Spans: `serve:admit`, `serve:batch`,
//! `serve:exec`; counters: `RequestsAdmitted`, `RequestsRejected`,
//! `BatchesExecuted`, `BatchOccupancy`.

pub mod clock;
pub mod engine;
pub mod load;
pub mod server;

pub use clock::{Clock, SimClock, WallClock};
pub use engine::{BatchEngine, EchoEngine, FallbackEngine, InferEngine, ServiceModel};
pub use load::{
    drain_sim, profile, run_closed_loop_sim, run_open_loop_sim, run_open_loop_wall,
    ArrivalProcess, LoadSpec,
};
pub use sb_fault::{
    BackoffPolicy, BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, Fault,
    FaultPlan, FaultSpec, RetryPolicy,
};
pub use server::{Completion, Outcome, RejectReason, ServeConfig, ServedBy, Server};
