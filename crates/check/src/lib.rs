//! Zero-dependency property-based testing for the hermetic
//! `shrinkbench-rs` workspace.
//!
//! A property is a pure function from a generated input to
//! `Result<(), String>`. [`check`] runs it over many inputs derived
//! deterministically from a pinned suite seed, and on failure greedily
//! shrinks the input (via [`Shrink`]) before reporting — always printing
//! the per-case seed so the exact failure replays with one environment
//! variable:
//!
//! ```text
//! SB_CHECK_SEED=0x1a2b3c4d cargo test -p sb-tensor addition_commutes
//! ```
//!
//! Environment knobs:
//!
//! - `SB_CHECK_SEED`: replay a single case by its reported seed
//!   (decimal or `0x` hex) instead of the normal sweep.
//! - `SB_CHECK_CASES`: override the number of cases per property.
//!
//! Determinism: case `i` of a property with suite seed `s` always runs
//! with generator seed `mix(s, i)` ([`sb_rng::mix`]), so adding cases or
//! reordering properties never changes what earlier cases see.
//!
//! # Example
//!
//! ```
//! use sb_check::{check, Config};
//!
//! check(
//!     "doc::reverse_is_involutive",
//!     Config::new(0xD0C),
//!     |rng| (0..rng.below(20)).map(|_| rng.uniform(-1.0, 1.0)).collect::<Vec<f32>>(),
//!     |xs| {
//!         let mut twice = xs.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         sb_check::prop_assert_eq!(&twice, xs);
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use sb_rng::{mix, Rng};

mod shrink;

pub use shrink::Shrink;

/// Per-property configuration: the pinned suite seed and case count.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Suite seed; pin one per test file so failures are reproducible
    /// across machines and toolchains.
    pub seed: u64,
    /// Number of generated cases (default 64; `SB_CHECK_CASES` overrides).
    pub cases: usize,
}

impl Config {
    /// A config with the given suite seed and the default case count.
    pub const fn new(seed: u64) -> Self {
        Config { seed, cases: 64 }
    }

    /// Overrides the case count.
    pub const fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }
}

/// Upper bound on greedy shrink steps, so a pathological `Shrink` impl
/// cannot hang a failing test.
const MAX_SHRINK_STEPS: usize = 512;

/// Runs `prop` against `cases` inputs produced by `gen` from seeded RNGs.
///
/// On the first failing case the input is greedily shrunk: candidates
/// from [`Shrink::shrink`] are tried in order, restarting from any
/// candidate that still fails, until none do (or [`MAX_SHRINK_STEPS`] is
/// hit). The final panic message names the property, the replay seed, the
/// case index, the shrunk input, and the failure text.
///
/// # Panics
///
/// Panics if any case fails — this is the test-failure mechanism.
pub fn check<T, G, P>(name: &str, config: Config, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    if let Some(seed) = env_u64("SB_CHECK_SEED") {
        run_case(name, seed, usize::MAX, &gen, &prop);
        return;
    }
    let cases = env_u64("SB_CHECK_CASES").map_or(config.cases, |n| n as usize);
    for index in 0..cases {
        let case_seed = mix(config.seed, index as u64);
        run_case(name, case_seed, index, &gen, &prop);
    }
}

fn run_case<T, G, P>(name: &str, case_seed: u64, index: usize, gen: &G, prop: &P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::seed_from(case_seed);
    let input = gen(&mut rng);
    let Some(message) = failure(prop, &input) else {
        return;
    };

    // Greedy shrink: keep taking the first still-failing candidate.
    let mut current = input;
    let mut current_message = message;
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in current.shrink() {
            if let Some(m) = failure(prop, &candidate) {
                current = candidate;
                current_message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }

    let which = if index == usize::MAX {
        "replayed case".to_string()
    } else {
        format!("case {index}")
    };
    panic!(
        "property `{name}` failed on {which}\n\
         replay with: SB_CHECK_SEED={case_seed:#x}\n\
         shrunk input ({steps} shrink steps): {current:?}\n\
         failure: {current_message}"
    );
}

/// Runs the property, converting both `Err` returns and panics into a
/// failure message; `None` means the property passed.
fn failure<T, P>(prop: &P, input: &T) -> Option<String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(payload) => Some(panic_text(payload.as_ref())),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x hex), got `{raw}`"),
    }
}

/// Fails the property with a message unless the condition holds.
///
/// Use inside `check` property closures (which return
/// `Result<(), String>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless the two expressions are equal, printing both.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Fails the property unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0usize);
        check(
            "sb_check::counts_cases_cell",
            Config::new(1).cases(64),
            |rng| rng.below(100),
            |_| {
                hits.set(hits.get() + 1);
                Ok(())
            },
        );
        assert_eq!(hits.get(), 64);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            check(
                "sb_check::determinism",
                Config::new(0xABCD).cases(16),
                |rng| (rng.below(1000), rng.uniform(-1.0, 1.0)),
                |case| {
                    seen.borrow_mut().push(*case);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "sb_check::always_fails_above_10",
                Config::new(7).cases(64),
                |rng| rng.below(1_000_000),
                |&n| {
                    prop_assert!(n <= 10, "{n} is too big");
                    Ok(())
                },
            );
        }));
        let message = panic_text(result.unwrap_err().as_ref());
        assert!(message.contains("SB_CHECK_SEED=0x"), "{message}");
        assert!(message.contains("always_fails_above_10"), "{message}");
        // Greedy shrink must walk n down to the boundary: 11.
        assert!(message.contains("shrunk input"), "{message}");
        assert!(message.contains(": 11\n"), "shrink did not reach boundary: {message}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "sb_check::panics",
                Config::new(3).cases(4),
                |rng| rng.below(5),
                |_| -> Result<(), String> { panic!("boom") },
            );
        }));
        let message = panic_text(result.unwrap_err().as_ref());
        assert!(message.contains("panicked: boom"), "{message}");
    }

    #[test]
    fn vec_shrinking_preserves_length() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "sb_check::vec_len_invariant",
                Config::new(5).cases(32),
                |rng| {
                    let len = rng.below(8) + 3;
                    (0..len).map(|_| rng.uniform(-100.0, 100.0)).collect::<Vec<f32>>()
                },
                |xs| {
                    // Deliberately false whenever any entry is nonzero, so
                    // shrinking drives entries to 0 but must keep length.
                    prop_assert!(xs.iter().all(|&x| x == 0.0), "len {} input", xs.len());
                    Ok(())
                },
            );
        }));
        let message = panic_text(result.unwrap_err().as_ref());
        // The shrunk witness is all zeros except it still fails, meaning
        // at least one coordinate could not be zeroed while failing; but
        // its length must match the original (3..=10), visible as a
        // debug-printed Vec with that many entries.
        assert!(message.contains("shrunk input"), "{message}");
    }

    #[test]
    fn replay_seed_reproduces_the_case() {
        // First: find a failing seed.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "sb_check::replayable",
                Config::new(11).cases(64),
                |rng| rng.below(1000),
                |&n| {
                    prop_assert!(n < 900, "n = {n}");
                    Ok(())
                },
            );
        }));
        let message = panic_text(result.unwrap_err().as_ref());
        let seed_text = message
            .split("SB_CHECK_SEED=")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed_text.trim_start_matches("0x"), 16).unwrap();
        // Replaying that seed must regenerate a failing input (>= 900).
        let mut rng = Rng::seed_from(seed);
        let n = rng.below(1000);
        assert!(n >= 900, "replay produced passing input {n}");
    }

    #[test]
    fn prop_assert_macros_format_both_sides() {
        let prop = |x: &i32| -> Result<(), String> {
            prop_assert_eq!(*x, 5);
            prop_assert_ne!(*x, 9);
            Ok(())
        };
        assert!(prop(&5).is_ok());
        let err = prop(&6).unwrap_err();
        assert!(err.contains("left: 6") && err.contains("right: 5"), "{err}");
    }

    #[test]
    #[should_panic(expected = "SB_CHECK_CASES must be a u64")]
    fn malformed_env_override_panics() {
        // Exercised via the parser directly to avoid mutating the real
        // process environment in a test binary that runs in parallel.
        std::env::set_var("SB_CHECK_CASES_TEST_ONLY", "not-a-number");
        let raw = std::env::var("SB_CHECK_CASES_TEST_ONLY").unwrap();
        let _ = raw
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SB_CHECK_CASES must be a u64 (decimal or 0x hex), got `{raw}`"));
    }
}
