//! Structure-preserving greedy shrinking.
//!
//! Shrinkers here are deliberately conservative: a `Vec` never changes
//! length and a tuple never loses a component, because the workspace's
//! properties bake structural invariants (tensor shapes, batch sizes)
//! into the generated value. Shrinking only moves numeric leaves toward
//! zero, which keeps almost every generated input inside its generator's
//! domain while still collapsing failing cases to readable witnesses.

/// Produces candidate "smaller" values for greedy shrinking.
///
/// The default impl produces nothing, which is always sound: shrinking is
/// an optimization for failure readability, not correctness.
pub trait Shrink: Sized {
    /// Candidate simpler values, most aggressive first. Each candidate
    /// must be different from `self`, or greedy shrinking could loop
    /// (the driver also hard-caps total steps as a backstop).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! unsigned_shrink {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                }
                let half = self / 2;
                if half != 0 && half != *self {
                    out.push(half);
                }
                let dec = self.saturating_sub(1);
                if dec != 0 && dec != half && dec != *self {
                    out.push(dec);
                }
                out
            }
        }
    )*};
}

unsigned_shrink!(u8, u16, u32, u64, u128, usize);

macro_rules! signed_shrink {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                }
                if *self < 0 {
                    // Try the positive mirror: sign bugs shrink to clean
                    // witnesses.
                    let abs = self.checked_abs().unwrap_or(*self);
                    if abs != *self && abs != 0 {
                        out.push(abs);
                    }
                }
                let half = self / 2;
                if half != 0 && half != *self && !out.contains(&half) {
                    out.push(half);
                }
                out
            }
        }
    )*};
}

signed_shrink!(i8, i16, i32, i64, i128, isize);

macro_rules! float_shrink {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                // Compare by bits so -0.0 and 0.0 are distinct and NaN
                // (never equal to itself) cannot cause an infinite loop.
                let bits = self.to_bits();
                let mut out: Vec<$ty> = Vec::new();
                let mut push = |v: $ty| {
                    if v.to_bits() != bits && !out.iter().any(|o| o.to_bits() == v.to_bits()) {
                        out.push(v);
                    }
                };
                push(0.0);
                if self.is_finite() {
                    push(self.trunc());
                    push(self / 2.0);
                    if *self < 0.0 {
                        push(-self);
                    }
                }
                out
            }
        }
    )*};
}

float_shrink!(f32, f64);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {}

impl Shrink for String {}

/// Length-preserving: shrinks elements in place, never removes them.
/// Candidates are capped so wide vectors do not explode the greedy
/// search; the cap trades shrink quality for bounded runtime.
impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        const MAX_CANDIDATES: usize = 64;
        let mut out = Vec::new();
        for (i, item) in self.iter().enumerate() {
            for replacement in item.shrink().into_iter().take(2) {
                let mut candidate = self.clone();
                candidate[i] = replacement;
                out.push(candidate);
                if out.len() >= MAX_CANDIDATES {
                    return out;
                }
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(value) => {
                let mut out = vec![None];
                out.extend(value.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! tuple_shrink {
    ($(($($t:ident / $idx:tt),+)),*) => {$(
        impl<$($t: Shrink + Clone),+> Shrink for ($($t,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for replacement in self.$idx.shrink() {
                        let mut candidate = self.clone();
                        candidate.$idx = replacement;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_shrink!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_shrink_toward_zero_without_self() {
        assert_eq!(100u64.shrink(), vec![0, 50, 99]);
        assert!(0u64.shrink().is_empty());
        assert_eq!((-8i32).shrink(), vec![0, 8, -4]);
        let f = 6.5f32.shrink();
        assert!(f.contains(&0.0) && f.contains(&6.0) && f.contains(&3.25));
        assert!(!f.contains(&6.5));
    }

    #[test]
    fn nan_shrinks_only_to_zero_like_candidates() {
        let candidates = f64::NAN.shrink();
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|c| !c.is_nan()), "{candidates:?}");
    }

    #[test]
    fn vec_shrink_preserves_length() {
        let v = vec![3.0f32, -1.0, 0.5];
        for candidate in v.shrink() {
            assert_eq!(candidate.len(), v.len());
            assert_ne!(candidate, v);
        }
        assert!(!v.shrink().is_empty());
    }

    #[test]
    fn all_zero_vec_has_no_candidates() {
        let v = vec![0.0f32; 4];
        assert!(v.shrink().is_empty());
    }

    #[test]
    fn tuple_shrink_changes_one_component_at_a_time() {
        let t = (4usize, -2.0f64);
        for (a, b) in t.shrink() {
            let changed = usize::from(a != t.0) + usize::from(b.to_bits() != t.1.to_bits());
            assert_eq!(changed, 1, "candidate ({a}, {b}) changed {changed} components");
        }
    }

    #[test]
    fn candidate_lists_are_bounded() {
        let wide = vec![9.0f32; 10_000];
        assert!(wide.shrink().len() <= 64);
    }
}
