#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of
//! *"What is the State of Neural Network Pruning?"* (Blalock et al.,
//! MLSys 2020).
//!
//! The `expfig` binary is the entry point:
//!
//! ```text
//! cargo run --release -p sb-bench --bin expfig -- list
//! cargo run --release -p sb-bench --bin expfig -- table1
//! cargo run --release -p sb-bench --bin expfig -- fig7 --scale quick
//! cargo run --release -p sb-bench --bin expfig -- all
//! ```
//!
//! Meta-analysis artifacts (Table 1, Figures 1–5) are computed from the
//! embedded corpus in `sb-corpus`; experimental artifacts (Figures 6–18
//! and the ablations) train, prune, and fine-tune real models via the
//! `shrinkbench` experiment runner, with results cached as JSON under
//! `results/`.

pub mod configs;
pub mod figures;
pub mod picks;
pub mod timer;
pub mod tracediff;

pub use configs::{experiment_config, Scale};

/// Install a panic hook that drops the default stderr report for
/// `sb-fault`-injected engine panics (they unwind through the worker
/// pool's `catch_unwind` by design — one backtrace per faulted batch is
/// pure noise) while forwarding every other panic to the previous hook.
///
/// Call once at binary startup before driving a faulted workload.
pub fn silence_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected engine panic"));
        if !injected {
            default(info);
        }
    }));
}
