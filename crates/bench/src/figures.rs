//! Rendering of every table and figure: text charts to stdout, CSV data
//! next to them.

use crate::configs::{experiment_config, Scale};
use sb_corpus::data::build_corpus;
use sb_corpus::{fragmentation, graph, tradeoff};
use sb_report::{AsciiChart, ChartSeries, Table};
use shrinkbench::experiment::{summarize, ExperimentRunner, RunRecord};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Where experiment results are cached and figure CSVs written.
#[derive(Debug, Clone)]
pub struct OutputPaths {
    /// JSON result cache directory.
    pub results: PathBuf,
    /// Rendered figure directory.
    pub figures: PathBuf,
}

impl Default for OutputPaths {
    fn default() -> Self {
        OutputPaths {
            results: PathBuf::from("results"),
            figures: PathBuf::from("figures"),
        }
    }
}

fn save(paths: &OutputPaths, name: &str, text: &str, csv: Option<&Table>) {
    let _ = std::fs::create_dir_all(&paths.figures);
    let _ = std::fs::write(paths.figures.join(format!("{name}.txt")), text);
    if let Some(table) = csv {
        let _ = sb_report::write_csv(table, &paths.figures.join(format!("{name}.csv")));
    }
}

// ---------------------------------------------------------------------
// Meta-analysis artifacts (Table 1, Figures 1–5)
// ---------------------------------------------------------------------

/// Table 1: all (dataset, architecture) pairs used by ≥ 4 papers.
pub fn table1(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let rows = fragmentation::pair_counts(&corpus, 4);
    let mut table = Table::new(vec!["Dataset", "Architecture", "Number of Papers Using Pair"]);
    for r in &rows {
        table.row(vec![r.dataset.clone(), r.arch.clone(), r.papers.to_string()]);
    }
    let mut out = String::from(
        "Table 1: All combinations of dataset and architecture used in at least 4 out of 81 papers.\n\n",
    );
    out.push_str(&table.to_markdown());
    let _ = writeln!(
        out,
        "\ncorpus totals: {} papers, {} datasets, {} architectures, {} combinations",
        corpus.papers.len(),
        corpus.datasets().len(),
        corpus.architectures().len(),
        corpus.combinations().len()
    );
    save(paths, "table1", &out, Some(&table));
    out
}

/// Figure 1: size and speed vs accuracy for dense families and pruned
/// models.
pub fn fig1(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let panels = tradeoff::figure1(&corpus);
    let mut out = String::from(
        "Figure 1: Size and speed vs accuracy tradeoffs for original and pruned models (ImageNet).\n\n",
    );
    let mut table = Table::new(vec!["panel_x", "panel_y", "series", "x", "y"]);
    for panel in &panels {
        let mut chart = AsciiChart::new(
            format!("{} vs {}", panel.x_axis, panel.y_axis),
            64,
            16,
        )
        .log_x(true)
        .axis_labels(panel.x_axis, panel.y_axis);
        for s in &panel.series {
            chart = chart.series(ChartSeries::new(s.label.clone(), s.points.clone()));
            for &(x, y) in &s.points {
                table.row(vec![
                    panel.x_axis.to_string(),
                    panel.y_axis.to_string(),
                    s.label.clone(),
                    format!("{x:.4e}"),
                    format!("{y:.2}"),
                ]);
            }
        }
        out.push_str(&chart.render());
        out.push('\n');
    }
    out.push_str(
        "Reading: pruned models sometimes beat their original architecture, but rarely beat a better architecture (EfficientNet dominates).\n",
    );
    save(paths, "fig1", &out, Some(&table));
    out
}

/// Figure 2: histograms of comparisons between papers.
pub fn fig2(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let h = graph::comparison_histograms(&corpus);
    let mut out = String::from("Figure 2: Reported comparisons between papers.\n\n");
    let mut table = Table::new(vec!["histogram", "degree", "peer_reviewed", "other"]);
    let render = |title: &str,
                  bars: &[graph::DegreeBar],
                  table: &mut Table,
                  key: &str|
     -> String {
        let mut s = format!("{title}\n");
        for bar in bars {
            if bar.total() == 0 {
                continue;
            }
            let _ = writeln!(
                s,
                "{:>3} | {}{} ({} peer-reviewed, {} other)",
                bar.degree,
                "█".repeat(bar.peer_reviewed),
                "░".repeat(bar.other),
                bar.peer_reviewed,
                bar.other
            );
            table.row(vec![
                key.to_string(),
                bar.degree.to_string(),
                bar.peer_reviewed.to_string(),
                bar.other.to_string(),
            ]);
        }
        s
    };
    out.push_str(&render(
        "Number of papers comparing to a given paper (in-degree):",
        &h.compared_to_by,
        &mut table,
        "compared_to_by",
    ));
    out.push('\n');
    out.push_str(&render(
        "Number of papers a given paper compares to (out-degree):",
        &h.compares_to,
        &mut table,
        "compares_to",
    ));
    let orphans = graph::never_compared_to(&corpus);
    let _ = writeln!(out, "\npapers never compared to by any later study: {}", orphans.len());
    save(paths, "fig2", &out, Some(&table));
    out
}

/// Figure 3: fragmentation of self-reported results on the four most
/// common configurations.
pub fn fig3(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let grid = fragmentation::figure3_grid(&corpus);
    let mut out = String::from(
        "Figure 3: Fragmentation of results. Self-reported results on the most common (dataset, architecture) combinations.\n\n",
    );
    let mut table = Table::new(vec![
        "dataset", "arch", "x_metric", "y_metric", "method", "x", "y",
    ]);
    for cell in &grid {
        let mut chart = AsciiChart::new(
            format!(
                "{} on {} — {:?} vs {:?} ({} methods)",
                cell.arch,
                cell.dataset,
                cell.x_metric,
                cell.y_metric,
                cell.curves.len()
            ),
            64,
            12,
        )
        .log_x(true);
        for (method, pts) in &cell.curves {
            chart = chart.series(ChartSeries::new(method.clone(), pts.clone()));
            for &(x, y) in pts {
                table.row(vec![
                    cell.dataset.clone(),
                    cell.arch.clone(),
                    format!("{:?}", cell.x_metric),
                    format!("{:?}", cell.y_metric),
                    method.clone(),
                    format!("{x:.3}"),
                    format!("{y:.3}"),
                ]);
            }
        }
        out.push_str(&chart.render());
        out.push('\n');
    }
    let papers: std::collections::BTreeSet<&str> =
        corpus.results.iter().map(|r| r.paper.as_str()).collect();
    let _ = writeln!(
        out,
        "{} of the 81 papers report any results using these configurations.",
        papers.len()
    );
    save(paths, "fig3", &out, Some(&table));
    out
}

/// Figure 4: number of (dataset, architecture) pairs per paper and points
/// per tradeoff curve.
pub fn fig4(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let mut out = String::from("Figure 4: Number of results reported by each paper, excluding MNIST.\n\n");
    let mut table = Table::new(vec!["histogram", "count", "peer_reviewed", "other"]);
    for (title, hist, key) in [
        (
            "Number of (dataset, architecture) pairs used per paper:",
            fragmentation::pairs_per_paper(&corpus),
            "pairs_per_paper",
        ),
        (
            "Number of points used to characterize each tradeoff curve:",
            fragmentation::points_per_curve(&corpus),
            "points_per_curve",
        ),
    ] {
        let _ = writeln!(out, "{title}");
        for &(count, pr, other) in &hist.bars {
            if pr + other == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{count:>3} | {}{} ({pr} peer-reviewed, {other} other)",
                "█".repeat(pr),
                "░".repeat(other)
            );
            table.row(vec![
                key.to_string(),
                count.to_string(),
                pr.to_string(),
                other.to_string(),
            ]);
        }
        out.push('\n');
    }
    save(paths, "fig4", &out, Some(&table));
    out
}

/// Figure 5: magnitude-variant vs all-other-method variation on
/// ResNet-50 / ImageNet.
pub fn fig5(paths: &OutputPaths) -> String {
    let corpus = build_corpus();
    let f5 = tradeoff::figure5(&corpus);
    let mut out = String::from(
        "Figure 5: Pruning ResNet-50 on ImageNet. Top: unstructured magnitude-based variants; bottom: all other methods.\n\n",
    );
    let mut table = Table::new(vec!["panel", "method", "params", "top1"]);
    for (title, series, key) in [
        ("Unstructured magnitude-based pruning:", &f5.magnitude_methods, "magnitude"),
        ("All other methods:", &f5.other_methods, "other"),
    ] {
        let mut chart = AsciiChart::new(title, 64, 14).log_x(true).axis_labels("parameters", "Top-1 (%)");
        for s in series {
            chart = chart.series(ChartSeries::new(s.label.clone(), s.points.clone()));
            for &(x, y) in &s.points {
                table.row(vec![
                    key.to_string(),
                    s.label.clone(),
                    format!("{x:.3e}"),
                    format!("{y:.2}"),
                ]);
            }
        }
        out.push_str(&chart.render());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "vertical spread — magnitude variants: {:.2} pts, other methods: {:.2} pts",
        tradeoff::vertical_spread(&f5.magnitude_methods),
        tradeoff::vertical_spread(&f5.other_methods)
    );
    save(paths, "fig5", &out, Some(&table));
    out
}

// ---------------------------------------------------------------------
// Experimental artifacts (Figures 6–18 and ablations)
// ---------------------------------------------------------------------

/// Runs (or loads) the experiment grid backing `experiment_id`.
pub fn run_experiment(experiment_id: &str, scale: Scale, paths: &OutputPaths) -> Vec<RunRecord> {
    let cfg = experiment_config(experiment_id, scale)
        .unwrap_or_else(|| panic!("unknown experiment {experiment_id:?}"));
    let mut runner = ExperimentRunner::with_cache(&paths.results);
    runner.verbose = true;
    runner.run(&cfg)
}

/// Renders one accuracy-vs-efficiency panel from run records, charting
/// the mean across seeds per strategy and tabulating mean ± std.
pub fn render_panel(
    title: &str,
    records: &[RunRecord],
    x_axis: &str, // "compression" or "speedup"
) -> (String, Table) {
    let cells = summarize(records);
    let mut strategies: Vec<&str> = cells.iter().map(|c| c.strategy.as_str()).collect();
    strategies.dedup();
    let mut chart = AsciiChart::new(title, 64, 16)
        .log_x(true)
        .axis_labels(x_axis, "top-1 accuracy");
    let mut table = Table::new(vec![
        "strategy",
        "target_compression",
        "compression",
        "speedup",
        "top1_mean",
        "top1_std",
        "top5_mean",
        "n_seeds",
    ]);
    for strategy in &strategies {
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .filter(|c| c.strategy == *strategy)
            .map(|c| {
                let x = if x_axis == "speedup" {
                    c.speedup.mean
                } else {
                    c.compression.mean
                };
                (x, c.top1.mean)
            })
            .collect();
        chart = chart.series(ChartSeries::new(strategy.to_string(), pts));
    }
    for c in &cells {
        table.row(vec![
            c.strategy.clone(),
            format!("{}", c.target_compression),
            format!("{:.2}", c.compression.mean),
            format!("{:.2}", c.speedup.mean),
            format!("{:.4}", c.top1.mean),
            format!("{:.4}", c.top1.std),
            format!("{:.4}", c.top5.mean),
            c.top1.n.to_string(),
        ]);
    }
    let mut out = chart.render();
    out.push('\n');
    out.push_str(&table.to_markdown());
    if let Some(first) = records.first() {
        let _ = writeln!(
            out,
            "\ndense control: top1 {:.4}, top5 {:.4}",
            first.pretrain_top1, first.pretrain_top5
        );
    }
    (out, table)
}

/// Renders a figure consisting of one or more (experiment, axis) panels.
pub fn experiment_figure(
    name: &str,
    caption: &str,
    panels: &[(&str, &str, &str)], // (experiment id, axis, panel title)
    scale: Scale,
    paths: &OutputPaths,
) -> String {
    let mut out = format!("{caption}\n\n");
    let mut combined: Option<Table> = None;
    for (experiment_id, axis, title) in panels {
        let records = run_experiment(experiment_id, scale, paths);
        let (text, table) = render_panel(title, &records, axis);
        out.push_str(&text);
        out.push('\n');
        combined.get_or_insert(table);
    }
    save(paths, name, &out, combined.as_ref());
    out
}

/// Figure 8 needs both pretrained models on shared axes, in absolute and
/// Δ-accuracy form.
pub fn fig8(scale: Scale, paths: &OutputPaths) -> String {
    let a = run_experiment("weights-a", scale, paths);
    let b = run_experiment("weights-b", scale, paths);
    let mut out = String::from(
        "Figure 8: Global and Layerwise Magnitude Pruning on two different ResNet-56 models (Weights A: Adam lr 1e-3, Weights B: Adam lr 1e-4).\n\n",
    );
    let mut table = Table::new(vec![
        "weights", "strategy", "compression", "top1", "delta_top1", "pretrain_top1",
    ]);
    let mut absolute = AsciiChart::new("Absolute accuracy", 64, 16)
        .log_x(true)
        .axis_labels("compression", "top-1");
    let mut relative = AsciiChart::new("Change in accuracy (Δ top-1)", 64, 16)
        .log_x(true)
        .axis_labels("compression", "Δ top-1");
    for (tag, records) in [("A", &a), ("B", &b)] {
        let cells = summarize(records);
        let mut strategies: Vec<&str> = cells.iter().map(|c| c.strategy.as_str()).collect();
        strategies.dedup();
        let base = records
            .first()
            .map(|r| r.pretrain_top1 as f64)
            .unwrap_or(0.0);
        for strategy in strategies {
            let short = if strategy.contains("Global") { "Global" } else { "Layer" };
            let abs_pts: Vec<(f64, f64)> = cells
                .iter()
                .filter(|c| c.strategy == strategy)
                .map(|c| (c.compression.mean, c.top1.mean))
                .collect();
            let rel_pts: Vec<(f64, f64)> =
                abs_pts.iter().map(|&(x, y)| (x, y - base)).collect();
            absolute = absolute.series(ChartSeries::new(format!("{short} {tag}"), abs_pts.clone()));
            relative = relative.series(ChartSeries::new(format!("{short} {tag}"), rel_pts));
            for c in cells.iter().filter(|c| c.strategy == strategy) {
                table.row(vec![
                    tag.to_string(),
                    strategy.to_string(),
                    format!("{:.2}", c.compression.mean),
                    format!("{:.4}", c.top1.mean),
                    format!("{:.4}", c.top1.mean - base),
                    format!("{base:.4}"),
                ]);
            }
        }
    }
    out.push_str(&absolute.render());
    out.push('\n');
    out.push_str(&relative.render());
    out.push_str(
        "\nReading: with all else held constant, the two initial models yield different tradeoff curves, and Δ-accuracy does not remove the confounder.\n",
    );
    save(paths, "fig8", &out, Some(&table));
    out
}

/// The ablation comparing accuracy before vs after fine-tuning, computed
/// from the Figure 7 records at no extra cost.
pub fn ablation_finetune(scale: Scale, paths: &OutputPaths) -> String {
    let records = run_experiment("resnet56", scale, paths);
    let mut out = String::from(
        "Ablation: validation top-1 immediately after pruning vs after fine-tuning (ResNet-56, CIFAR-like).\n\n",
    );
    let mut table = Table::new(vec![
        "strategy",
        "target_compression",
        "top1_before_finetune",
        "top1_after_finetune",
        "recovery",
    ]);
    let mut keys: Vec<(String, f64)> = records
        .iter()
        .map(|r| (r.strategy.clone(), r.target_compression))
        .collect();
    keys.dedup();
    for (strategy, compression) in keys {
        let cell: Vec<&RunRecord> = records
            .iter()
            .filter(|r| r.strategy == strategy && r.target_compression == compression)
            .collect();
        let before: f64 = cell.iter().map(|r| r.top1_before_finetune as f64).sum::<f64>()
            / cell.len() as f64;
        let after: f64 =
            cell.iter().map(|r| r.top1 as f64).sum::<f64>() / cell.len() as f64;
        table.row(vec![
            strategy.clone(),
            format!("{compression}"),
            format!("{before:.4}"),
            format!("{after:.4}"),
            format!("{:+.4}", after - before),
        ]);
    }
    out.push_str(&table.to_markdown());
    save(paths, "ablation-finetune", &out, Some(&table));
    out
}

/// Side-by-side ablation over two experiment variants.
pub fn ablation_pair(
    name: &str,
    caption: &str,
    id_a: &str,
    id_b: &str,
    scale: Scale,
    paths: &OutputPaths,
) -> String {
    ablation_multi(name, caption, &[id_a, id_b], scale, paths)
}

/// Side-by-side ablation over any number of experiment variants.
pub fn ablation_multi(
    name: &str,
    caption: &str,
    ids: &[&str],
    scale: Scale,
    paths: &OutputPaths,
) -> String {
    let mut out = format!("{caption}\n\n");
    let mut combined = Table::new(vec![
        "variant",
        "strategy",
        "target_compression",
        "compression",
        "speedup",
        "top1_mean",
        "top1_std",
    ]);
    for id in ids {
        let records = run_experiment(id, scale, paths);
        for c in summarize(&records) {
            combined.row(vec![
                id.to_string(),
                c.strategy,
                format!("{}", c.target_compression),
                format!("{:.2}", c.compression.mean),
                format!("{:.2}", c.speedup.mean),
                format!("{:.4}", c.top1.mean),
                format!("{:.4}", c.top1.std),
            ]);
        }
    }
    out.push_str(&combined.to_markdown());
    save(paths, name, &out, Some(&combined));
    out
}

/// Section 5.2 as an artifact: the same pruned model reported under every
/// metric convention found in the literature.
pub fn metrics_ambiguity(paths: &OutputPaths) -> String {
    use sb_metrics::{ambiguity_report, ModelProfile};
    use sb_nn::NetworkExt;
    use shrinkbench::{GlobalMagnitude, Pruner};

    // A LeNet-5 pruned to 4×: FC-heavy, so conventions disagree sharply.
    let mut rng = sb_tensor::Rng::seed_from(0);
    let mut net = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    Pruner::default()
        .prune(&mut net, &GlobalMagnitude, 4.0, &mut rng)
        .expect("pruning a fresh LeNet-5 cannot fail");
    let _ = net.num_params();
    let profile = ModelProfile::measure(&net);
    let report = ambiguity_report(&profile);

    let mut out = String::from(
        "Metrics ambiguity (Section 5.2): one pruned LeNet-5 (4x global magnitude), reported under every convention in the literature.\n\n",
    );
    let mut table = Table::new(vec!["kind", "convention", "reported value"]);
    out.push_str("\"Compression\" / \"Pruned%\" conventions:\n");
    for (name, value) in &report.size_rows {
        let _ = writeln!(out, "  {name:<34} → {value:.4}");
        table.row(vec!["size".into(), name.clone(), format!("{value:.6}")]);
    }
    out.push_str("\n\"FLOPs\" / \"speedup\" conventions:\n");
    for (name, dense, speedup) in &report.flop_rows {
        let _ = writeln!(out, "  {name:<34} → dense {dense:>10.0} FLOPs, speedup {speedup:.2}x");
        table.row(vec!["flops".into(), name.clone(), format!("{dense:.0}")]);
    }
    let _ = writeln!(
        out,
        "\nspread between largest and smallest dense-FLOP count: {:.2}x\n(the paper found up to 4x for AlexNet across Yang 2017 / Choi 2019 / Han 2015)",
        report.flop_spread
    );
    save(paths, "metrics-ambiguity", &out, Some(&table));
    out
}

/// Appendix B as an artifact: score this repository's own standard
/// experiment suite against the paper's reviewer checklist.
pub fn checklist_artifact(scale: Scale, paths: &OutputPaths) -> String {
    use shrinkbench::checklist::{evaluate_experiment, evaluate_suite};

    let suite_ids = ["cifar-vgg", "resnet20", "resnet56", "imagenet-resnet18"];
    let configs: Vec<_> = suite_ids
        .iter()
        .map(|id| experiment_config(id, scale).expect("known id"))
        .collect();
    let mut out = String::from(
        "Appendix B checklist, applied to this repository's own standard experiment suite.\n\n",
    );
    let refs: Vec<&shrinkbench::experiment::ExperimentConfig> = configs.iter().collect();
    let suite = evaluate_suite(&refs);
    let _ = writeln!(out, "suite-level items:\n{suite}");
    for (id, cfg) in suite_ids.iter().zip(&configs) {
        let records = run_experiment(id, scale, paths);
        let report = evaluate_experiment(cfg, &records);
        let _ = writeln!(out, "{id}:\n{report}");
    }
    save(paths, "checklist", &out, None);
    out
}

/// Reporting-hygiene artifact: which of the 37 reporting papers follow
/// which of the Section 6 recommendations.
pub fn hygiene(paths: &OutputPaths) -> String {
    use sb_corpus::hygiene::{hygiene_summary, paper_hygiene};
    let corpus = build_corpus();
    let rows = paper_hygiene(&corpus);
    let summary = hygiene_summary(&corpus);
    let mut out = String::from(
        "Reporting hygiene of the papers with results on the common configurations (Sections 4.3-6).\n\n",
    );
    let mut table = Table::new(vec![
        "paper", "size metric", "compute metric", "top-1", "top-5", "std / error bars", "points",
    ]);
    let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
    for r in &rows {
        table.row(vec![
            r.paper.clone(),
            tick(r.reports_size),
            tick(r.reports_compute),
            tick(r.reports_top1),
            tick(r.reports_top5),
            tick(r.reports_std),
            r.operating_points.to_string(),
        ]);
    }
    out.push_str(&table.to_markdown());
    let _ = writeln!(
        out,
        "\nof {} reporting papers: {} report both efficiency metrics, {} report both accuracy metrics, {} report any measure of central tendency.",
        summary.reporting_papers,
        summary.both_efficiency_metrics,
        summary.both_accuracy_metrics,
        summary.with_central_tendency
    );
    save(paths, "hygiene", &out, Some(&table));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(strategy: &str, c: f64, seed: u64, top1: f32) -> RunRecord {
        RunRecord {
            experiment: "x".into(),
            strategy: strategy.into(),
            target_compression: c,
            seed,
            compression: c * 0.98,
            speedup: c * 1.4,
            top1,
            top5: (top1 + 0.2).min(1.0),
            top1_before_finetune: top1 * 0.5,
            pretrain_top1: 0.9,
            pretrain_top5: 0.99,
            realized_speedup: None,
            latency_us: None,
        }
    }

    fn records() -> Vec<RunRecord> {
        let mut v = Vec::new();
        for (s, base) in [("Global Weight", 0.9), ("Random", 0.6)] {
            for (i, c) in [1.0, 2.0, 4.0, 8.0].into_iter().enumerate() {
                for seed in [1u64, 2] {
                    v.push(record(s, c, seed, (base - 0.08 * i as f32) + seed as f32 * 0.01));
                }
            }
        }
        v
    }

    #[test]
    fn render_panel_charts_all_strategies() {
        let (text, table) = render_panel("test panel", &records(), "compression");
        assert!(text.contains("Global Weight"));
        assert!(text.contains("Random"));
        assert!(text.contains("dense control: top1 0.9000"));
        // 2 strategies × 4 ratios = 8 summary rows.
        assert_eq!(table.len(), 8);
    }

    #[test]
    fn render_panel_speedup_axis_uses_speedup_means() {
        let (text, _) = render_panel("speedup panel", &records(), "speedup");
        // Max x label reflects speedup (8 × 1.4 = 11.2), not compression.
        assert!(text.contains("11.2"), "{text}");
    }

    #[test]
    fn render_panel_reports_std_across_seeds() {
        let (_, table) = render_panel("std panel", &records(), "compression");
        let csv = table.to_csv();
        // Two seeds 0.01 apart → std ≈ 0.00707.
        assert!(csv.contains("0.0071"), "{csv}");
    }

    #[test]
    fn output_paths_default_locations() {
        let p = OutputPaths::default();
        assert!(p.results.ends_with("results"));
        assert!(p.figures.ends_with("figures"));
    }
}

/// Realized vs theoretical speedup: run the actual CSR kernel against the
/// dense matmul at several densities and compare wall-clock speedup with
/// the paper's theoretical (multiply-add-ratio) metric. Timings are
/// indicative (single-shot medians), not Criterion-grade; use
/// `cargo bench --bench realized` for careful numbers.
pub fn realized_speedup(paths: &OutputPaths) -> String {
    use sb_tensor::{Rng, SparseMatrix, Tensor};
    use std::time::Instant;

    let (m, k, n) = (256usize, 256usize, 32usize);
    let mut rng = Rng::seed_from(0);
    let x = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
    let random_sparse = |density: f64, seed: u64| {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(&[m, k], |_| if rng.coin(density) { rng.normal() } else { 0.0 })
    };
    let median_time = |f: &mut dyn FnMut()| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..9 {
            let t = Instant::now();
            f();
            samples.push(t.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        samples[samples.len() / 2]
    };

    let dense_w = random_sparse(1.0, 1);
    let dense_t = median_time(&mut || {
        std::hint::black_box(dense_w.matmul(&x));
    });

    let mut out = String::from(
        "Realized vs theoretical speedup (Section 2.1): the actual CSR sparse kernel against the dense matmul, 256x256 weight x batch 32.\n\n",
    );
    let mut table = Table::new(vec![
        "density", "theoretical speedup", "realized speedup", "realized / theoretical",
    ]);
    for density in [0.5, 0.25, 0.125, 0.03125] {
        let w = random_sparse(density, 2);
        let sparse = SparseMatrix::from_dense(&w);
        let sparse_t = median_time(&mut || {
            std::hint::black_box(sparse.matmul_dense(&x));
        });
        let theoretical = 1.0 / sparse.density().max(1e-9);
        let realized = dense_t / sparse_t.max(1e-12);
        table.row(vec![
            format!("{:.4}", sparse.density()),
            format!("{theoretical:.2}x"),
            format!("{realized:.2}x"),
            format!("{:.2}", realized / theoretical),
        ]);
    }
    out.push_str(&table.to_markdown());
    out.push_str(
        "\nReading: the CSR kernel recovers only part of the theoretical speedup (irregular access, index overhead) — why the paper treats multiply-add ratios as a proxy, and why structured pruning exists.\n",
    );
    save(paths, "realized-speedup", &out, Some(&table));
    out
}

/// Theoretical vs realized speedup for whole compiled models (the
/// Figure 6 metric, made honest): runs the `realized-inference` grid
/// with wall-clock measurement enabled, then charts the paper's
/// multiply-add-ratio speedup against the speedup the compiled
/// inference engine actually delivers over its dense-compiled baseline.
pub fn inference_speedup(scale: Scale, paths: &OutputPaths) -> String {
    let cfg = experiment_config("realized-inference", scale).expect("known id");
    let mut runner = ExperimentRunner::with_cache(&paths.results);
    runner.verbose = true;
    runner.measure_latency = true;
    let records = runner.run(&cfg);
    let cells = summarize(&records);

    let mut out = String::from(
        "Theoretical vs realized speedup (Section 2.1 / Figure 6): LeNet-5 pruned unstructured (Global Weight) and structured (Filter L1), compiled by sb-infer, wall-clock vs the dense-compiled baseline.\n\n",
    );
    let mut strategies: Vec<&str> = cells.iter().map(|c| c.strategy.as_str()).collect();
    strategies.dedup();
    let mut chart = AsciiChart::new("Speedup vs compression", 64, 16)
        .log_x(true)
        .axis_labels("compression", "speedup (x)");
    for strategy in &strategies {
        let of = |f: &dyn Fn(&shrinkbench::experiment::CellSummary) -> Option<f64>| -> Vec<(f64, f64)> {
            cells
                .iter()
                .filter(|c| c.strategy == *strategy)
                .filter_map(|c| f(c).map(|y| (c.compression.mean, y)))
                .collect()
        };
        let theory = of(&|c| Some(c.speedup.mean));
        let real = of(&|c| c.realized_speedup.as_ref().map(|m| m.mean));
        chart = chart.series(ChartSeries::new(format!("theory {strategy}"), theory));
        if !real.is_empty() {
            chart = chart.series(ChartSeries::new(format!("real {strategy}"), real));
        }
    }
    out.push_str(&chart.render());
    out.push('\n');

    let mut table = Table::new(vec![
        "strategy",
        "target_compression",
        "compression",
        "theoretical_speedup",
        "realized_speedup",
        "latency_us",
        "realized_over_theoretical",
    ]);
    for c in &cells {
        let realized = c.realized_speedup.as_ref().map(|m| m.mean);
        table.row(vec![
            c.strategy.clone(),
            format!("{}", c.target_compression),
            format!("{:.2}", c.compression.mean),
            format!("{:.2}", c.speedup.mean),
            realized.map_or("-".into(), |r| format!("{r:.2}")),
            c.latency_us
                .as_ref()
                .map_or("-".into(), |m| format!("{:.0}", m.mean)),
            realized.map_or("-".into(), |r| format!("{:.2}", r / c.speedup.mean.max(1e-9))),
        ]);
    }
    out.push_str(&table.to_markdown());
    out.push_str(
        "\nReading: realized speedup trails the multiply-add ratio — CSR pays index overhead at every nonzero and only wins at high sparsity, while structured (filter) pruning shrinks the dense kernels themselves and converts more of its (smaller) theoretical figure into wall-clock. This is the gap Section 2.1 warns about when papers report FLOP ratios as \"speedup\".\n",
    );
    save(paths, "inference-speedup", &out, Some(&table));
    out
}

/// Where realized inference latency actually goes: runs a pruned,
/// compiled model under `sb-trace` and attributes wall-clock to each
/// layer × kernel-format span, next to the FLOPs and parameter bytes the
/// kernels report. The dense-compiled baseline is attributed the same
/// way, so the table shows which layers the chosen formats actually
/// accelerated — the per-layer story behind the `inference-speedup`
/// aggregate. Timings are indicative and machine-dependent.
pub fn latency_attribution(paths: &OutputPaths) -> String {
    use sb_tensor::{Rng, Tensor};
    use shrinkbench::{GlobalMagnitude, Pruner};

    // LeNet-5 at 8x global magnitude: sparse enough that the cost model
    // mixes formats (untrained weights; format choice is structural).
    let mut rng = Rng::seed_from(0);
    let mut net = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    let mut prune_rng = Rng::seed_from(1);
    Pruner::default()
        .prune(&mut net, &GlobalMagnitude, 8.0, &mut prune_rng)
        .expect("pruning a fresh LeNet-5 cannot fail");
    let x = Tensor::rand_normal(&[64, 1, 16, 16], 0.0, 1.0, &mut rng);
    let reps = 50;

    let mut out = String::from(
        "Latency attribution: per-layer x kernel-format breakdown of realized inference wall-clock (LeNet-5, 8x global magnitude, batch 64).\n\n",
    );
    let mut table = Table::new(vec![
        "variant", "layer", "format", "calls", "self_ms", "share", "flops", "param_bytes",
    ]);
    sb_trace::set_override(Some(true));
    let mut pruned_flame = String::new();
    for (variant, opts) in [
        ("pruned", sb_infer::CompileOptions::default()),
        (
            "dense-baseline",
            sb_infer::CompileOptions {
                force_format: Some(sb_infer::ExecFormat::Dense),
                ..sb_infer::CompileOptions::default()
            },
        ),
    ] {
        let compiled = sb_infer::CompiledModel::compile(&net, &opts);
        std::hint::black_box(compiled.forward(&x)); // warm
        let root = format!("latency-attribution:{variant}");
        {
            let _span = sb_trace::span(&root);
            for _ in 0..reps {
                std::hint::black_box(compiled.forward(&x));
            }
        }
        let trace = sb_trace::report().subtree(&root);
        if variant == "pruned" {
            pruned_flame = trace.flamegraph();
        }
        let Some(infer) = trace
            .roots
            .first()
            .and_then(|r| r.children.iter().find(|c| c.name == "infer"))
        else {
            continue;
        };
        for layer in &infer.children {
            let Some(label) = layer.name.strip_prefix("layer:") else {
                continue;
            };
            let (name, format) = label.rsplit_once(':').unwrap_or((label, "?"));
            table.row(vec![
                variant.to_string(),
                name.to_string(),
                format.to_string(),
                layer.count.to_string(),
                format!("{:.3}", layer.self_ticks as f64 / 1e6),
                format!(
                    "{:.1}%",
                    100.0 * layer.total_ticks as f64 / infer.total_ticks.max(1) as f64
                ),
                layer.counter("flops").to_string(),
                layer.counter("bytes_moved").to_string(),
            ]);
        }
    }
    sb_trace::set_override(None);
    out.push_str(&table.to_markdown());
    out.push_str("\nCollapsed flamegraph of the pruned variant:\n");
    out.push_str(&pruned_flame);
    out.push_str(
        "\nReading: the share column localizes the realized-speedup gap — a CSR layer whose FLOP count fell 8x but whose share barely moved is paying index overhead, while shrunk-dense layers convert their smaller FLOP count into a proportional share.\n",
    );
    save(paths, "latency-attribution", &out, Some(&table));
    out
}

/// Realized wall-clock of every compiled execution format across
/// sparsity ratios — the crossover picture behind the cost model. For
/// each global-magnitude ratio the same LeNet-5 is compiled five ways
/// (forced dense/CSR/BSR/bitmap plus the auto cost-model pick) and the
/// whole-model forward is timed as a [`sb_metrics::RealizedSweep`]
/// against one shared dense-compiled baseline, then a traced pass
/// attributes self-time to the conv2 layer so the per-layer crossover
/// (where BSR's 4-wide lanes or the bitmap's branch-free loop beat CSR's
/// index chasing) is visible next to the aggregate. Timings are
/// indicative and machine-dependent; `cargo bench --bench realized`
/// holds the careful numbers.
pub fn format_crossover(paths: &OutputPaths) -> String {
    use sb_metrics::RealizedSweep;
    use sb_tensor::{Rng, Tensor};
    use shrinkbench::{GlobalMagnitude, Pruner};

    let ratios = [1.0f64, 2.0, 4.0, 16.0];
    let k = 7; // timed runs per median
    let reps = 20; // traced forwards per variant for conv2 attribution
    let mut out = String::from(
        "Format crossover: realized whole-model wall-clock of each compiled kernel format against one shared dense-compiled baseline (LeNet-5, global magnitude, batch 64), with conv2 self-time attributed from the trace.\n\n",
    );
    let mut table = Table::new(vec![
        "ratio", "format", "latency_us", "realized_speedup", "storage_bytes", "conv2_ms_per_call",
    ]);
    let mut series: Vec<(&str, Vec<(f64, f64)>)> =
        vec![("csr", Vec::new()), ("bsr", Vec::new()), ("bitmap", Vec::new()), ("auto", Vec::new())];
    let mut crossover_ratios: Vec<f64> = Vec::new();

    for &ratio in &ratios {
        let mut rng = Rng::seed_from(0);
        let mut net = sb_nn::models::lenet5(1, 16, 10, &mut rng);
        if ratio > 1.0 {
            let mut prune_rng = Rng::seed_from(1);
            Pruner::default()
                .prune(&mut net, &GlobalMagnitude, ratio, &mut prune_rng)
                .expect("pruning a fresh LeNet-5 cannot fail");
        }
        let x = Tensor::rand_normal(&[64, 1, 16, 16], 0.0, 1.0, &mut rng);
        let xr = &x;

        let forced = |f: sb_infer::ExecFormat| sb_infer::CompileOptions {
            force_format: Some(f),
            ..sb_infer::CompileOptions::default()
        };
        let variants: Vec<(&str, sb_infer::CompiledModel)> = [
            ("dense", forced(sb_infer::ExecFormat::Dense)),
            ("csr", forced(sb_infer::ExecFormat::Csr)),
            ("bsr", forced(sb_infer::ExecFormat::Bsr)),
            ("bitmap", forced(sb_infer::ExecFormat::Bitmap)),
            ("auto", sb_infer::CompileOptions::default()),
        ]
        .into_iter()
        .map(|(label, opts)| (label, sb_infer::CompiledModel::compile(&net, &opts)))
        .collect();
        let baseline = &variants[0].1;

        // Whole-model sweep: one shared dense baseline, so every
        // realized-speedup ratio has the same denominator. The "dense"
        // candidate row doubles as a noise gauge (it should sit near 1).
        let sweep = RealizedSweep::measure(
            k,
            || {
                std::hint::black_box(baseline.forward(xr));
            },
            variants
                .iter()
                .map(|(label, compiled)| {
                    (
                        label.to_string(),
                        compiled.plans().iter().map(|p| p.storage_bytes).sum(),
                        Box::new(move || {
                            std::hint::black_box(compiled.forward(xr));
                        }) as Box<dyn FnMut() + '_>,
                    )
                })
                .collect(),
        );

        // Traced pass: pull conv2 self-time per call out of the
        // `infer;layer:conv2:{format}` span for each variant.
        sb_trace::set_override(Some(true));
        let mut conv2_ms: Vec<(&str, f64)> = Vec::new();
        for (label, compiled) in &variants {
            std::hint::black_box(compiled.forward(xr)); // warm
            let root = format!("format-crossover:{ratio}x:{label}");
            {
                let _span = sb_trace::span(&root);
                for _ in 0..reps {
                    std::hint::black_box(compiled.forward(xr));
                }
            }
            let trace = sb_trace::report().subtree(&root);
            let ms = trace
                .roots
                .first()
                .and_then(|r| r.children.iter().find(|c| c.name == "infer"))
                .and_then(|infer| {
                    infer.children.iter().find(|c| c.name.starts_with("layer:conv2:"))
                })
                .map_or(f64::NAN, |l| l.self_ticks as f64 / 1e6 / reps as f64);
            conv2_ms.push((label, ms));
        }
        sb_trace::set_override(None);
        let conv2 = |l: &str| conv2_ms.iter().find(|(n, _)| *n == l).map(|&(_, m)| m);

        for point in &sweep.points {
            table.row(vec![
                format!("{ratio}x"),
                point.label.clone(),
                format!("{:.0}", point.profile.latency_us),
                format!("{:.2}", point.profile.realized_speedup),
                point.profile.storage_bytes.to_string(),
                conv2(&point.label).map_or("-".into(), |m| format!("{m:.3}")),
            ]);
            if let Some((_, s)) = series.iter_mut().find(|(l, _)| *l == point.label) {
                s.push((ratio, point.profile.realized_speedup));
            }
        }
        if let (Some(csr), Some(bsr), Some(bm)) = (conv2("csr"), conv2("bsr"), conv2("bitmap")) {
            if bsr < csr || bm < csr {
                crossover_ratios.push(ratio);
            }
        }
    }

    let mut chart = AsciiChart::new("Realized speedup by format", 64, 16)
        .log_x(true)
        .axis_labels("compression", "realized speedup (x)");
    for (label, points) in &series {
        chart = chart.series(ChartSeries::new(label.to_string(), points.clone()));
    }
    out.push_str(&chart.render());
    out.push('\n');
    out.push_str(&table.to_markdown());
    let crossover_note = if crossover_ratios.is_empty() {
        "on this run CSR held conv2 at every ratio (rerun — single-shot medians are noisy)".to_string()
    } else {
        format!(
            "on this run BSR or bitmap beat CSR on conv2 self-time at ratio(s) {} — the crossover the cost-model constants encode, pinned as a wall-clock floor in sb-infer's speed tests",
            crossover_ratios
                .iter()
                .map(|r| format!("{r}x"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    out.push_str(&format!(
        "\nReading: each point is a median-of-{k} whole-model forward against one shared dense-compiled baseline (the dense row gauges measurement noise). CSR pays per-nonzero index chasing, so it only runs away at extreme sparsity; BSR amortizes indexing over 4-wide vector lanes and takes the convolution layers at low-to-mid ratios; the bitmap kernel spends storage (dense values + occupancy masks) on a branch-free inner loop that closes in at high ratios; {crossover_note}.\n",
    ));
    save(paths, "format-crossover", &out, Some(&table));
    out
}

/// Per-layer sparsity profile: where Global vs Layerwise magnitude
/// pruning actually removes weights at the same overall ratio — the
/// mechanism behind Figure 6's compression/speedup crossover (global
/// ranking empties the cheap, over-parameterized layers first; layerwise
/// thins every layer, including the spatially expensive early convs).
pub fn sparsity_profile(paths: &OutputPaths) -> String {
    use sb_metrics::ModelProfile;
    use sb_tensor::Rng;
    use shrinkbench::{GlobalMagnitude, LayerMagnitude, Pruner, Strategy};

    let mut out = String::from(
        "Per-layer sparsity at 8x overall compression: Global vs Layerwise magnitude pruning on CIFAR-VGG (untrained weights; the layout effect is structural).\n\n",
    );
    let mut table = Table::new(vec![
        "layer", "params", "kept (Global)", "kept (Layerwise)",
    ]);
    let profiles: Vec<ModelProfile> = [
        Box::new(GlobalMagnitude) as Box<dyn Strategy>,
        Box::new(LayerMagnitude),
    ]
    .iter()
    .map(|strategy| {
        let mut rng = Rng::seed_from(0);
        let mut net = sb_nn::models::cifar_vgg(3, 16, 10, 8, &mut rng);
        let mut prune_rng = Rng::seed_from(1);
        Pruner::default()
            .prune(&mut net, strategy.as_ref(), 8.0, &mut prune_rng)
            .expect("pruning a fresh net succeeds");
        ModelProfile::measure(&net)
    })
    .collect();
    let (global, layer) = (&profiles[0], &profiles[1]);
    for (g, l) in global.params.iter().zip(&layer.params) {
        if !g.prunable {
            continue;
        }
        table.row(vec![
            g.name.clone(),
            g.numel.to_string(),
            format!("{:.1}%", 100.0 * g.effective as f64 / g.numel as f64),
            format!("{:.1}%", 100.0 * l.effective as f64 / l.numel as f64),
        ]);
    }
    out.push_str(&table.to_markdown());
    let _ = writeln!(
        out,
        "\nachieved: Global {:.2}x compression / {:.2}x speedup; Layerwise {:.2}x compression / {:.2}x speedup",
        global.compression_ratio(),
        global.theoretical_speedup(),
        layer.compression_ratio(),
        layer.theoretical_speedup()
    );
    out.push_str("Reading: at equal compression, Layerwise prunes the FLOP-heavy early convolutions as hard as everything else, which is why it buys more theoretical speedup (fig6), while Global protects whichever tensors hold large weights.\n");
    save(paths, "sparsity-profile", &out, Some(&table));
    out
}

/// Serving under load: pruned vs dense LeNet-300-100 behind the
/// `sb-serve` micro-batcher, swept across offered loads on a virtual
/// clock. Each ratio's model is auto-compiled (dense at 1x, CSR once
/// pruning makes it worthwhile) and priced by its **effective MACs**
/// through a fixed machine constant, so the whole sweep — batch
/// timeouts, queueing, deadline shedding, the reported percentiles — is
/// deterministic and thread-count-independent; the real forward still
/// runs for every batch, it just doesn't set the virtual clock.
/// `cargo bench --bench serve` holds the wall-clock counterpart
/// (`BENCH_serve.json`).
pub fn serving_latency(paths: &OutputPaths) -> String {
    use sb_serve::{
        profile, run_open_loop_sim, ArrivalProcess, InferEngine, LoadSpec, ServeConfig, Server,
        ServiceModel, SimClock,
    };
    use sb_tensor::{Rng, Tensor};
    use shrinkbench::{GlobalMagnitude, Pruner};
    use std::sync::Arc;

    // Fixed virtual machine constant: how many effective MACs one
    // virtual microsecond buys. Only ratios between configurations
    // matter; the constant keeps the numbers in a realistic range.
    const MACS_PER_US: u64 = 2_000;
    const BASE_US: u64 = 200; // per-batch dispatch cost
    let ratios = [1.0f64, 4.0, 16.0];
    let loads_rps = [2_000.0f64, 8_000.0, 14_000.0, 20_000.0];
    let horizon_us = 500_000u64; // half a virtual second per point
    let deadline_us = 10_000u64;
    let cfg = ServeConfig {
        max_batch: 16,
        max_wait_us: 1_000,
        queue_cap: 64,
        max_inflight: 1,
    };

    let mut out = String::from(
        "Serving latency under load: LeNet-300-100 (fc 256) pruned at 1x/4x/16x, auto-compiled and served by the sb-serve micro-batcher (batch<=16, 1ms window, queue 64, 10ms deadline), open-loop jittered-uniform arrivals on a virtual clock priced by effective MACs.\n\n",
    );
    let mut table = Table::new(vec![
        "ratio",
        "offered_rps",
        "completed",
        "rejected",
        "throughput_rps",
        "p50_us",
        "p99_us",
        "mean_batch",
    ]);
    let mut p99_series: Vec<ChartSeries> = Vec::new();

    for &ratio in &ratios {
        let mut rng = Rng::seed_from(0);
        let mut net = sb_nn::models::lenet_300_100(256, 10, &mut rng);
        if ratio > 1.0 {
            let mut prune_rng = Rng::seed_from(1);
            Pruner::default()
                .prune(&mut net, &GlobalMagnitude, ratio, &mut prune_rng)
                .expect("pruning a fresh network succeeds");
        }
        let compiled = sb_infer::CompiledModel::compile(&net, &sb_infer::CompileOptions::default());
        let per_sample_us = (compiled.effective_macs() / MACS_PER_US).max(1);
        let service = ServiceModel {
            base_us: BASE_US,
            per_sample_us,
        };
        // One pool of request samples, recycled across the sweep.
        let mut input_rng = Rng::seed_from(2);
        let samples: Vec<Vec<f32>> = (0..64)
            .map(|_| {
                Tensor::rand_normal(&[256], 0.0, 1.0, &mut input_rng)
                    .data()
                    .to_vec()
            })
            .collect();

        let mut points = Vec::new();
        for &rps in &loads_rps {
            let clock = Arc::new(SimClock::new());
            let mut server = Server::new(
                InferEngine::new(
                    sb_infer::CompiledModel::compile(&net, &sb_infer::CompileOptions::default()),
                    service,
                ),
                cfg.clone(),
                clock.clone(),
            );
            let spec = LoadSpec {
                arrivals: ArrivalProcess::Uniform { rate_rps: rps },
                horizon_us,
                seed: 0x5E4E,
                deadline_us: Some(deadline_us),
            };
            let done = run_open_loop_sim(&mut server, &clock, &spec, |i| {
                samples[i % samples.len()].clone()
            });
            let p = profile(&done, horizon_us);
            table.row(vec![
                format!("{ratio}x"),
                format!("{rps:.0}"),
                p.completed.to_string(),
                p.rejected.total().to_string(),
                format!("{:.0}", p.throughput_rps),
                p.p50_us.to_string(),
                p.p99_us.to_string(),
                format!("{:.2}", p.mean_batch),
            ]);
            points.push((rps, p.p99_us as f64));
        }
        p99_series.push(ChartSeries::new(
            format!("{ratio}x ({per_sample_us}us/sample)"),
            points,
        ));
    }

    let mut chart = AsciiChart::new(
        "p99 serving latency vs offered load (10ms deadline)",
        72,
        20,
    )
    .axis_labels("offered load (req/s)", "p99 latency (us)");
    for s in p99_series {
        chart = chart.series(s);
    }
    out.push_str(&table.to_markdown());
    out.push('\n');
    out.push_str(&chart.render());
    out.push_str(
        "\nReading: the dense model saturates inside the sweep — at the top offered load its p99 roughly quadruples and the bounded admission queue sheds over a fifth of requests — while the pruned models serve the same loads with flat tail latency and zero shed; pruning buys serving headroom, not just per-batch microseconds.\n",
    );
    save(paths, "serving-latency", &out, Some(&table));
    out
}

/// Extension (sb-serve + sb-fault): the fault-recovery arc under a
/// seeded outage. A dense LeNet-300-100 primary serves an open-loop
/// load on the virtual clock while a scripted panic burst (a window of
/// primary batch indices, pure function of the fault seed) takes it
/// down; the circuit breaker trips, the 16x-pruned counterpart takes
/// over as the degraded-mode fallback, half-open probes find the
/// primary healthy after the burst, and the breaker re-closes. The
/// artifact buckets completions over virtual time — who served them,
/// what failed, tail latency — and prints the breaker transition
/// timeline. Deterministic and thread-count-independent.
pub fn fault_recovery(paths: &OutputPaths) -> String {
    use sb_serve::{
        run_open_loop_sim, ArrivalProcess, BackoffPolicy, BatchEngine, BreakerConfig, FaultPlan,
        FaultSpec, InferEngine, LoadSpec, Outcome, RejectReason, RetryPolicy, ServeConfig, Server,
        ServedBy, ServiceModel, SimClock,
    };
    use sb_tensor::{Rng, Tensor};
    use shrinkbench::{GlobalMagnitude, Pruner};
    use std::sync::Arc;

    const MACS_PER_US: u64 = 2_000;
    const BASE_US: u64 = 200;
    const FEATURES: usize = 256;
    const HORIZON_US: u64 = 600_000;
    const BUCKET_US: u64 = 50_000;
    const DEADLINE_US: u64 = 10_000;

    let lenet = |ratio: f64, force: Option<sb_infer::ExecFormat>| {
        let mut rng = Rng::seed_from(0xBE7C);
        let mut net = sb_nn::models::lenet_300_100(FEATURES, 10, &mut rng);
        if ratio > 1.0 {
            let mut prune_rng = Rng::seed_from(1);
            Pruner::default()
                .prune(&mut net, &GlobalMagnitude, ratio, &mut prune_rng)
                .expect("pruning a fresh network succeeds");
        }
        let compiled = sb_infer::CompiledModel::compile(
            &net,
            &sb_infer::CompileOptions {
                force_format: force,
                ..sb_infer::CompileOptions::default()
            },
        );
        let per_sample_us = (compiled.effective_macs() / MACS_PER_US).max(1);
        InferEngine::new(
            compiled,
            ServiceModel {
                base_us: BASE_US,
                per_sample_us,
            },
        )
    };
    let primary = lenet(1.0, Some(sb_infer::ExecFormat::Dense));
    let fallback = lenet(16.0, None);
    let primary_us = primary.service_us(16);
    let fallback_us = fallback.service_us(16);

    let clock = Arc::new(SimClock::new());
    let mut server = Server::new(
        primary,
        ServeConfig {
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 64,
            max_inflight: 1,
        },
        clock.clone(),
    )
    .with_faults(FaultPlan::new(FaultSpec {
        panic_per_mille: 900,
        transient_per_mille: 100,
        window_from: Some(100),
        window_until: Some(140),
        ..FaultSpec::none(0xFA17)
    }))
    .with_retry(RetryPolicy {
        max_attempts: 3,
        backoff: BackoffPolicy {
            base_us: 100,
            multiplier: 2,
            max_delay_us: 2_000,
        },
    })
    .with_breaker(BreakerConfig {
        window: 8,
        min_samples: 4,
        error_threshold_per_mille: 500,
        open_us: 5_000,
        probe_batches: 2,
    })
    .with_fallback(fallback);

    let mut input_rng = Rng::seed_from(2);
    let samples: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            Tensor::rand_normal(&[FEATURES], 0.0, 1.0, &mut input_rng)
                .data()
                .to_vec()
        })
        .collect();
    let spec = LoadSpec {
        arrivals: ArrivalProcess::Uniform { rate_rps: 8_000.0 },
        horizon_us: HORIZON_US,
        seed: 0x5E4E,
        deadline_us: Some(DEADLINE_US),
    };
    let done = run_open_loop_sim(&mut server, &clock, &spec, |i| {
        samples[i % samples.len()].clone()
    });
    let events = server.take_breaker_events();

    let mut out = format!(
        "Fault recovery: a dense LeNet-300-100 primary ({primary_us}us per 16-batch) serves 8k req/s on the virtual clock with a 16x-pruned fallback ({fallback_us}us per 16-batch) behind a circuit breaker (trip at 50% errors over 8 batches, 5ms open, 2 probes to re-close). A seeded fault plan panics 90% of primary batches 100..140 — the outage window — and every batch outcome below is a pure function of that seed.\n\n",
    );
    let mut table = Table::new(vec![
        "t_ms",
        "completed",
        "via_primary",
        "via_fallback",
        "engine_failure",
        "other_shed",
        "p50_us",
        "p99_us",
    ]);
    let buckets = (HORIZON_US / BUCKET_US) as usize + 1;
    let mut fallback_share = Vec::new();
    let mut p99_points = Vec::new();
    for b in 0..buckets {
        let (from, until) = (b as u64 * BUCKET_US, (b as u64 + 1) * BUCKET_US);
        let in_bucket: Vec<_> = done
            .iter()
            .filter(|c| c.done_us >= from && c.done_us < until)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let served = |by: ServedBy| {
            in_bucket
                .iter()
                .filter(|c| matches!(c.outcome, Outcome::Completed { served_by, .. } if served_by == by))
                .count()
        };
        let shed = |r: RejectReason| {
            in_bucket
                .iter()
                .filter(|c| c.outcome == Outcome::Rejected { reason: r })
                .count()
        };
        let (via_primary, via_fallback) = (served(ServedBy::Primary), served(ServedBy::Fallback));
        let failures = shed(RejectReason::EngineFailure);
        let other = in_bucket.len() - via_primary - via_fallback - failures;
        let mut lat: Vec<u64> = in_bucket
            .iter()
            .filter(|c| c.is_completed())
            .map(|c| c.done_us - c.submitted_us)
            .collect();
        lat.sort_unstable();
        let p50 = sb_metrics::percentile_us(&lat, 0.50);
        let p99 = sb_metrics::percentile_us(&lat, 0.99);
        table.row(vec![
            format!("{}-{}", from / 1_000, until / 1_000),
            (via_primary + via_fallback).to_string(),
            via_primary.to_string(),
            via_fallback.to_string(),
            failures.to_string(),
            other.to_string(),
            p50.to_string(),
            p99.to_string(),
        ]);
        let t_mid = (from + BUCKET_US / 2) as f64 / 1_000.0;
        if via_primary + via_fallback > 0 {
            fallback_share.push((
                t_mid,
                via_fallback as f64 / (via_primary + via_fallback) as f64,
            ));
            p99_points.push((t_mid, p99 as f64));
        }
    }

    let chart = AsciiChart::new("p99 latency per 50ms bucket across the outage", 72, 18)
        .axis_labels("virtual time (ms)", "p99 latency (us)")
        .series(ChartSeries::new("p99_us", p99_points));
    let share_chart = AsciiChart::new("fallback share of completions per 50ms bucket", 72, 12)
        .axis_labels("virtual time (ms)", "fallback share")
        .series(ChartSeries::new("fallback/completed", fallback_share));

    out.push_str(&table.to_markdown());
    out.push('\n');
    out.push_str(&chart.render());
    out.push('\n');
    out.push_str(&share_chart.render());
    out.push_str("\nBreaker transitions (virtual ms):\n");
    let line = |e: &sb_serve::BreakerTransition| {
        format!("  {:>7.1}  {:?} -> {:?}\n", e.at_us as f64 / 1_000.0, e.from, e.to)
    };
    if events.len() <= 12 {
        for e in &events {
            out.push_str(&line(e));
        }
    } else {
        // The middle is one failed probe cycle after another
        // (Open -> HalfOpen -> Open while the burst lasts); elide it.
        for e in &events[..6] {
            out.push_str(&line(e));
        }
        let _ = writeln!(out, "  ... {} transitions elided (probe cycles during the burst) ...", events.len() - 10);
        for e in &events[events.len() - 4..] {
            out.push_str(&line(e));
        }
    }
    out.push_str(
        "\nReading: before the fault window every completion is served by the dense primary. When the scripted burst begins, the first few batches fail their whole membership (EngineFailure — the panic is contained to the batch, never the server), the breaker trips within one sliding window, and service shifts to the pruned fallback: completions keep flowing and p99 stays inside the deadline because the fallback is an order of magnitude cheaper. While the burst lasts, each half-open probe meets another scripted panic and re-opens the breaker; once the window passes, two clean probes re-close it and the primary takes back the traffic. The pruned model is what makes degraded mode cheap enough to ride out the outage without shedding.\n",
    );
    save(paths, "fault-recovery", &out, Some(&table));
    out
}

/// Extension (sb-sched): multi-model fairness under one shared pool.
/// Three tenants of the weighted-fair-queueing scheduler — two identical
/// 16x-pruned interactive tenants at WFQ weights 3:1 and a dense
/// batch-class tenant — swept across offered-load multiples of the
/// pool's virtual capacity. Everything runs on the virtual clock priced
/// by effective MACs, so the artifact is deterministic and
/// thread-count-independent. Shows the scheduler's share mechanisms:
/// within a class, served cost tracks weights (3:1) once the tenants
/// are backlogged; across classes, strict priority protects interactive
/// tail latency; the bounded queues shed the excess at admission. The
/// interactive loads are deliberately deadline-free — a deadline-carrying
/// queue head is served EDF-first *ahead of* WFQ order within its class,
/// which would override the 3:1 share this figure demonstrates (the
/// deadline/EDF/quota story is the sched bench's `quota_demo`).
pub fn multi_model_fairness(paths: &OutputPaths) -> String {
    use sb_sched::{
        profile, run_multi_open_loop_sim, MultiServer, Priority, SchedConfig, TenantLoad,
        TenantPolicy, TenantSpec,
    };
    use sb_serve::{ArrivalProcess, InferEngine, ServiceModel, SimClock};
    use sb_tensor::Rng;
    use shrinkbench::{GlobalMagnitude, Pruner};
    use std::sync::Arc;

    const MACS_PER_US: u64 = 2_000;
    const BASE_US: u64 = 200;
    const FEATURES: usize = 256;
    const MAX_BATCH: usize = 16;
    const MAX_INFLIGHT: usize = 2;
    const HORIZON_US: u64 = 300_000;

    // One compiled model per tenant (engines are stateful); identical
    // networks, so any difference in service is the scheduler's doing.
    let lenet = |ratio: f64, force: Option<sb_infer::ExecFormat>| {
        let mut rng = Rng::seed_from(0xBE7C);
        let mut net = sb_nn::models::lenet_300_100(FEATURES, 10, &mut rng);
        if ratio > 1.0 {
            let mut prune_rng = Rng::seed_from(1);
            Pruner::default()
                .prune(&mut net, &GlobalMagnitude, ratio, &mut prune_rng)
                .expect("pruning a fresh network succeeds");
        }
        let compiled = sb_infer::CompiledModel::compile(
            &net,
            &sb_infer::CompileOptions {
                force_format: force,
                ..sb_infer::CompileOptions::default()
            },
        );
        let per_sample_us = (compiled.effective_macs() / MACS_PER_US).max(1);
        InferEngine::new(
            compiled,
            ServiceModel {
                base_us: BASE_US,
                per_sample_us,
            },
        )
    };
    let policy = TenantPolicy {
        max_batch: MAX_BATCH,
        max_wait_us: 500,
        queue_cap: 128,
        quota: None,
    };
    let tenants = || {
        vec![
            TenantSpec::new(
                "pruned-w3",
                3,
                Priority::Interactive,
                policy,
                Arc::new(lenet(16.0, None)),
            ),
            TenantSpec::new(
                "pruned-w1",
                1,
                Priority::Interactive,
                policy,
                Arc::new(lenet(16.0, None)),
            ),
            TenantSpec::new(
                "dense",
                1,
                Priority::Batch,
                policy,
                Arc::new(lenet(1.0, Some(sb_infer::ExecFormat::Dense))),
            ),
        ]
    };
    // Virtual capacity: MAX_INFLIGHT batch streams, each delivering one
    // virtual microsecond of service per microsecond. A full interactive
    // batch costs service_us(MAX_BATCH), so the interactive saturation
    // point (both pruned tenants combined) is:
    let probe = tenants();
    let batch_cost = probe[0].engine.service_us(MAX_BATCH);
    let sat_rps = (MAX_INFLIGHT as f64) * 1.0e6 * (MAX_BATCH as f64) / (batch_cost as f64);
    let dense_rps = 2_000.0;

    let mut out = String::from(
        "Multi-model fairness: two identical 16x-pruned LeNet-300-100 interactive tenants (WFQ weights 3:1, deadline-free so WFQ — not EDF — arbitrates) and a dense batch-class tenant (2k req/s throughout) share one pool (batch<=16, 2 in flight) behind the sb-sched weighted-fair scheduler; the pruned tenants' combined offered load sweeps multiples of the pool's virtual capacity.\n\n",
    );
    let mut table = Table::new(vec![
        "load_x",
        "tenant",
        "class",
        "weight",
        "offered_rps",
        "completed",
        "shed",
        "p99_us",
        "cost_share",
    ]);
    let mut series: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("pruned-w3".to_string(), Vec::new()),
        ("pruned-w1".to_string(), Vec::new()),
        ("dense (batch)".to_string(), Vec::new()),
    ];
    let mut sample_rng = Rng::seed_from(2);
    let samples: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            sb_tensor::Tensor::rand_normal(&[FEATURES], 0.0, 1.0, &mut sample_rng)
                .data()
                .to_vec()
        })
        .collect();

    for &mult in &[0.3f64, 1.0, 3.0] {
        let each_rps = sat_rps * mult / 2.0;
        let loads = vec![
            TenantLoad {
                arrivals: ArrivalProcess::Uniform { rate_rps: each_rps },
                seed: 0xFA1,
                deadline_us: None,
            },
            TenantLoad {
                arrivals: ArrivalProcess::Uniform { rate_rps: each_rps },
                seed: 0xFA2,
                deadline_us: None,
            },
            TenantLoad {
                arrivals: ArrivalProcess::Uniform { rate_rps: dense_rps },
                seed: 0xFA3,
                deadline_us: None,
            },
        ];
        let clock = Arc::new(SimClock::new());
        let mut ms = MultiServer::new(
            tenants(),
            SchedConfig {
                max_inflight: MAX_INFLIGHT,
            },
            clock.clone(),
        );
        let done = run_multi_open_loop_sim(&mut ms, &clock, &loads, HORIZON_US, |_t, i| {
            samples[i % samples.len()].clone()
        });
        let picks = ms.take_picks();
        let p = profile(&ms, &done, &picks, HORIZON_US);
        for (i, t) in p.tenants.iter().enumerate() {
            let offered = if i == 2 { dense_rps } else { each_rps };
            table.row(vec![
                format!("{mult}x"),
                t.name.clone(),
                t.priority.clone(),
                t.weight.to_string(),
                format!("{offered:.0}"),
                t.serve.completed.to_string(),
                t.serve.rejected.total().to_string(),
                t.serve.p99_us.to_string(),
                format!("{:.3}", t.cost_share),
            ]);
            series[i].1.push((mult, t.cost_share));
        }
    }

    let mut chart = AsciiChart::new(
        "served cost share vs offered interactive load (multiples of capacity)",
        72,
        20,
    )
    .axis_labels("interactive load (x capacity)", "cost share");
    for (name, points) in series {
        chart = chart.series(ChartSeries::new(name, points));
    }
    out.push_str(&table.to_markdown());
    out.push('\n');
    out.push_str(&chart.render());
    out.push_str(
        "\nReading: at light load shares simply track demand and everyone's p99 is flat. As the interactive tenants saturate the pool, their served-cost shares converge to the 3:1 WFQ weights — same model, same arrivals, 3x the service — while the excess on the lighter-weighted tenant is shed at admission once its bounded queue fills, rather than queued stale. The dense batch-class tenant keeps its slack-time share at light load and is starved by strict priority at overload: proportional sharing belongs to weights within a class (deadline-carrying heads would instead be served EDF-first), and the pick log (sched:pick spans) records every decision that produced these shares.\n",
    );
    save(paths, "multi-model-fairness", &out, Some(&table));
    out
}
