//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds hermetically — no registry access — so the
//! benches cannot depend on Criterion. This module provides the small
//! slice of its API the benches actually use: named benchmarks, groups,
//! `iter`/`iter_batched`, and a per-benchmark report of wall-clock time
//! per iteration. Each bench target keeps `harness = false` and drives a
//! [`Timer`] from its own `main`.
//!
//! Methodology: a short warm-up, then timing batches whose sizes grow
//! until the measurement budget is spent. The estimate reported is the
//! *minimum* mean-per-iteration across batches — the standard trick for
//! rejecting scheduler noise, which only ever adds time. Budgets are
//! tunable via `SB_BENCH_WARMUP_MS` and `SB_BENCH_BUDGET_MS` so CI can
//! run the benches as smoke tests in milliseconds.

use sb_json::json_struct;
use std::time::{Duration, Instant};

/// Mirror of Criterion's batch-size hint. The harness sizes batches by
/// measured cost, so the hint only selects how many setup calls are
/// amortized per timing batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup is cheap relative to the routine; batch freely.
    SmallInput,
    /// Setup is comparable to the routine; keep batches small.
    LargeInput,
    /// Time one routine call per setup call.
    PerIteration,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/name` for grouped benchmarks.
    pub id: String,
    /// Best (minimum across batches) mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations timed.
    pub iterations: u64,
}

json_struct!(Measurement { id, ns_per_iter, iterations });

impl Measurement {
    fn human_time(&self) -> String {
        let ns = self.ns_per_iter;
        if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms", ns / 1_000_000.0)
        } else {
            format!("{:.3} s", ns / 1_000_000_000.0)
        }
    }
}

/// The benchmark driver: registers measurements and prints the report.
#[derive(Debug)]
pub struct Timer {
    warmup: Duration,
    budget: Duration,
    results: Vec<Measurement>,
}

impl Default for Timer {
    fn default() -> Self {
        Timer::new()
    }
}

impl Timer {
    /// A driver with budgets from `SB_BENCH_WARMUP_MS` /
    /// `SB_BENCH_BUDGET_MS` (defaults: 100 ms warm-up, 400 ms
    /// measurement per benchmark).
    pub fn new() -> Self {
        Timer {
            warmup: env_ms("SB_BENCH_WARMUP_MS", 100),
            budget: env_ms("SB_BENCH_BUDGET_MS", 400),
            results: Vec::new(),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = name.into();
        let mut bencher = Bencher {
            warmup: self.warmup,
            budget: self.budget,
            best_ns: f64::INFINITY,
            iterations: 0,
        };
        f(&mut bencher);
        let m = Measurement {
            id,
            ns_per_iter: bencher.best_ns,
            iterations: bencher.iterations,
        };
        eprintln!("{:<44} {:>12}  ({} iters)", m.id, m.human_time(), m.iterations);
        self.results.push(m);
    }

    /// Starts a named group; benchmarks run inside it get `group/name`
    /// ids.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            timer: self,
            prefix: name.into(),
        }
    }

    /// All measurements registered so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the final summary table.
    pub fn finish(&self) {
        eprintln!("\n{} benchmarks, best mean per iteration:", self.results.len());
        for m in &self.results {
            eprintln!("  {:<44} {:>12}", m.id, m.human_time());
        }
    }
}

/// A named benchmark group (prefixes ids; Criterion-compatible shape).
#[derive(Debug)]
pub struct Group<'a> {
    timer: &'a mut Timer,
    prefix: String,
}

impl Group<'_> {
    /// Accepted for source compatibility; the harness sizes batches by
    /// wall-clock budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under the group prefix.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.prefix, name);
        self.timer.bench_function(id, f);
    }

    /// Ends the group (no-op; exists to mirror Criterion).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
#[derive(Debug)]
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    best_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Aim for ~10 timing batches within the budget.
        let batch = ((self.budget.as_nanos() as f64 / 10.0 / est_ns).ceil() as u64).max(1);
        let deadline = Instant::now() + self.budget;
        let mut batches = 0u32;
        while Instant::now() < deadline || batches == 0 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.best_ns = self.best_ns.min(ns);
            self.iterations += batch;
            batches += 1;
        }
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_ns: u128 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            warm_ns += t.elapsed().as_nanos();
            warm_iters += 1;
        }
        let est_ns = (warm_ns as f64 / warm_iters as f64).max(1.0);

        let target_iters = ((self.budget.as_nanos() as f64 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..target_iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            let ns = t.elapsed().as_nanos() as f64;
            self.best_ns = self.best_ns.min(ns);
            self.iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_timer() -> Timer {
        Timer {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
            results: Vec::new(),
        }
    }

    #[test]
    fn iter_produces_positive_estimate() {
        let mut timer = fast_timer();
        timer.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let m = &timer.results()[0];
        assert!(m.ns_per_iter.is_finite() && m.ns_per_iter > 0.0);
        assert!(m.iterations > 0);
    }

    #[test]
    fn iter_batched_excludes_setup_cost() {
        let mut timer = fast_timer();
        timer.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 1024],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        let m = &timer.results()[0];
        assert!(m.ns_per_iter.is_finite() && m.ns_per_iter > 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut timer = fast_timer();
        {
            let mut group = timer.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("inner", |b| b.iter(|| 1 + 1));
            group.finish();
        }
        assert_eq!(timer.results()[0].id, "g/inner");
    }

    #[test]
    fn human_times_cover_magnitudes() {
        let m = |ns: f64| Measurement {
            id: String::new(),
            ns_per_iter: ns,
            iterations: 1,
        };
        assert!(m(5.0).human_time().ends_with("ns"));
        assert!(m(5_000.0).human_time().ends_with("µs"));
        assert!(m(5_000_000.0).human_time().ends_with("ms"));
        assert!(m(5_000_000_000.0).human_time().ends_with(" s"));
    }
}
