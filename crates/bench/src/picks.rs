//! Rendering for `sb-sched` pick logs: the dequeue-decision stream as a
//! stable JSON artifact.
//!
//! The scheduler's [`PickRecord`](sb_sched::PickRecord) log is the
//! externally checkable face of its dequeue policy — priority
//! non-inversion, EDF ordering within a class (via the recorded head
//! deadlines), and WFQ shares are all assertable from it without access
//! to scheduler internals. `schedload --picks <path>` dumps the log with
//! this renderer; the golden test pins the exact bytes for a small
//! deterministic scenario so any drift in the record's shape or the
//! pick order itself shows up as a diff.

use sb_sched::PickRecord;

/// Renders a pick log as pretty-printed JSON (one trailing newline),
/// byte-stable for a given log.
pub fn render_picks(picks: &[PickRecord]) -> String {
    let mut out =
        sb_json::to_string_pretty(&picks.to_vec()).expect("pick records serialize");
    out.push('\n');
    out
}
