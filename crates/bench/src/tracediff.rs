//! Diffing two `{id}.trace.json` artifacts: the observability follow-on
//! that turns per-PR trace captures into a localized perf regression
//! report.
//!
//! A traced experiment grid writes a full
//! [`TraceReport`](sb_trace::TraceReport) per cell. Comparing two of
//! those captures by eye means walking two span trees in parallel;
//! [`render_diff`] does it mechanically: flatten both trees to
//! `path → (count, total_ticks, self_ticks)`, join on path, and print
//! the rows sorted by **self-time regression** (largest increase first)
//! so the span that actually got slower tops the table — not an
//! ancestor that merely contains it. Counter totals (FLOPs, bytes
//! moved, cache hits) are diffed alongside: a self-time regression with
//! an unchanged FLOP count points at the machine or the kernel, not the
//! workload.
//!
//! Paths render `;`-joined (`grid;cell;layer:fc1:csr`), the same
//! convention as the collapsed flamegraph output.

use sb_json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One span path's aggregated numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Times a span closed at this path.
    pub count: u64,
    /// Summed wall ticks, including children.
    pub total_ticks: u64,
    /// Ticks not attributed to child spans.
    pub self_ticks: u64,
}

/// A trace artifact flattened for joining: span paths and counter
/// totals, both in deterministic (sorted) order.
#[derive(Debug, Clone, Default)]
pub struct FlatReport {
    /// `;`-joined span path → stats.
    pub spans: BTreeMap<String, SpanStats>,
    /// Counter name → total, deterministic and scheduling sections
    /// merged.
    pub counters: BTreeMap<String, u64>,
}

fn get_u64(node: &Json, key: &str, path: &str) -> Result<u64, String> {
    node.get(key)
        .and_then(Json::as_int)
        .map(|v| v as u64)
        .ok_or_else(|| format!("span {path:?}: missing integer field {key:?}"))
}

fn flatten_spans(
    nodes: &Json,
    prefix: &str,
    out: &mut BTreeMap<String, SpanStats>,
) -> Result<(), String> {
    let Json::Arr(nodes) = nodes else {
        return Err(format!("span list under {prefix:?} is not an array"));
    };
    for node in nodes {
        let name = node
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("span under {prefix:?} has no name"))?;
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix};{name}")
        };
        let stats = SpanStats {
            count: get_u64(node, "count", &path)?,
            total_ticks: get_u64(node, "total_ticks", &path)?,
            self_ticks: get_u64(node, "self_ticks", &path)?,
        };
        let slot = out.entry(path.clone()).or_default();
        slot.count += stats.count;
        slot.total_ticks += stats.total_ticks;
        slot.self_ticks += stats.self_ticks;
        if let Some(children) = node.get("children") {
            flatten_spans(children, &path, out)?;
        }
    }
    Ok(())
}

fn merge_counters(section: Option<&Json>, out: &mut BTreeMap<String, u64>) {
    if let Some(Json::Obj(pairs)) = section {
        for (name, v) in pairs {
            if let Some(n) = v.as_int() {
                *out.entry(name.clone()).or_insert(0) += n as u64;
            }
        }
    }
}

/// Parses one `{id}.trace.json` artifact into its flattened form.
pub fn parse_report(text: &str) -> Result<FlatReport, String> {
    let doc: Json = sb_json::from_str(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let mut flat = FlatReport::default();
    merge_counters(doc.get("counters"), &mut flat.counters);
    merge_counters(doc.get("scheduling_counters"), &mut flat.counters);
    let spans = doc
        .get("spans")
        .ok_or_else(|| "no \"spans\" field: not a trace report".to_string())?;
    flatten_spans(spans, "", &mut flat.spans)?;
    Ok(flat)
}

fn fmt_delta(d: i128) -> String {
    if d > 0 {
        format!("+{d}")
    } else {
        d.to_string()
    }
}

fn fmt_ratio(before: u64, after: u64) -> String {
    if before == 0 {
        if after == 0 {
            "1.00x".to_string()
        } else {
            "new".to_string()
        }
    } else {
        format!("{:.2}x", after as f64 / before as f64)
    }
}

/// Renders the regression table between two parsed artifacts.
///
/// Span rows are sorted by `self_ticks` increase, biggest regression
/// first (ties and improvements follow, most-improved last); paths
/// present in only one capture show as `new` / `gone`. Counter rows
/// keep name order. `label_a`/`label_b` head the columns.
pub fn render_diff(label_a: &str, label_b: &str, a: &FlatReport, b: &FlatReport) -> String {
    let mut paths: Vec<&String> = a.spans.keys().collect();
    for p in b.spans.keys() {
        if !a.spans.contains_key(p) {
            paths.push(p);
        }
    }
    // Sort by descending self-time regression; path breaks ties so the
    // table is deterministic.
    paths.sort_by_key(|p| {
        let sa = a.spans.get(*p).copied().unwrap_or_default();
        let sb = b.spans.get(*p).copied().unwrap_or_default();
        (-(sb.self_ticks as i128 - sa.self_ticks as i128), (*p).clone())
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace diff: self-time regressions, {label_b} vs {label_a} (ticks)"
    );
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>12} {:>8} {:>9} {:>9}",
        "span path", "self_a", "self_b", "d_self", "ratio", "count_a", "count_b"
    );
    for p in &paths {
        let sa = a.spans.get(*p).copied();
        let sb = b.spans.get(*p).copied();
        let (ca, cb) = (sa.unwrap_or_default(), sb.unwrap_or_default());
        let ratio = match (sa, sb) {
            (Some(_), None) => "gone".to_string(),
            _ => fmt_ratio(ca.self_ticks, cb.self_ticks),
        };
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>12} {:>8} {:>9} {:>9}",
            p,
            ca.self_ticks,
            cb.self_ticks,
            fmt_delta(cb.self_ticks as i128 - ca.self_ticks as i128),
            ratio,
            ca.count,
            cb.count
        );
    }

    let mut counter_names: Vec<&String> = a.counters.keys().collect();
    for n in b.counters.keys() {
        if !a.counters.contains_key(n) {
            counter_names.push(n);
        }
    }
    counter_names.sort();
    if !counter_names.is_empty() {
        let _ = writeln!(out, "\ncounters");
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>12}",
            "name", label_a, label_b, "delta"
        );
        for n in counter_names {
            let va = a.counters.get(n).copied().unwrap_or(0);
            let vb = b.counters.get(n).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<44} {:>12} {:>12} {:>12}",
                n,
                va,
                vb,
                fmt_delta(vb as i128 - va as i128)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = r#"{
      "counters": {"Flops": 1000, "CacheHits": 4},
      "scheduling_counters": {"TasksStolen": 7},
      "spans": [
        {"name": "grid", "count": 1, "total_ticks": 900, "self_ticks": 100,
         "sched": false, "threads": [0], "counters": {}, "duration_hist": [],
         "children": [
           {"name": "cell", "count": 2, "total_ticks": 800, "self_ticks": 800,
            "sched": false, "threads": [0], "counters": {"Flops": 1000},
            "duration_hist": [[3, 2]], "children": []}
         ]}
      ]
    }"#;

    const B: &str = r#"{
      "counters": {"Flops": 1000},
      "scheduling_counters": {},
      "spans": [
        {"name": "grid", "count": 1, "total_ticks": 1500, "self_ticks": 90,
         "sched": false, "threads": [0], "counters": {}, "duration_hist": [],
         "children": [
           {"name": "cell", "count": 2, "total_ticks": 1410, "self_ticks": 1300,
            "sched": false, "threads": [0], "counters": {"Flops": 1000},
            "duration_hist": [[4, 2]], "children": []},
           {"name": "extra", "count": 1, "total_ticks": 110, "self_ticks": 110,
            "sched": false, "threads": [0], "counters": {}, "duration_hist": [],
            "children": []}
         ]}
      ]
    }"#;

    #[test]
    fn flattens_paths_and_merges_counter_sections() {
        let a = parse_report(A).expect("parses");
        assert_eq!(a.spans.len(), 2);
        assert_eq!(
            a.spans["grid;cell"],
            SpanStats {
                count: 2,
                total_ticks: 800,
                self_ticks: 800
            }
        );
        assert_eq!(a.counters["Flops"], 1000);
        assert_eq!(a.counters["TasksStolen"], 7);
    }

    #[test]
    fn biggest_self_regression_sorts_first() {
        let a = parse_report(A).expect("parses");
        let b = parse_report(B).expect("parses");
        let out = render_diff("before", "after", &a, &b);
        let lines: Vec<&str> = out.lines().collect();
        // Header, column header, then rows by descending self-time delta:
        // cell (+500) before extra (+110, new) before grid (-10).
        assert!(lines[2].starts_with("grid;cell"), "got {:?}", lines[2]);
        assert!(lines[3].starts_with("grid;extra"), "got {:?}", lines[3]);
        assert!(lines[3].contains("new"));
        assert!(lines[4].starts_with("grid "), "got {:?}", lines[4]);
        assert!(out.contains("TasksStolen"), "counters section present");
    }

    #[test]
    fn rejects_non_reports() {
        assert!(parse_report("[1, 2]").is_err());
        assert!(parse_report("{\"counters\": {}}").is_err());
        assert!(parse_report("not json").is_err());
    }
}
