//! Experiment configurations for every experimental figure, at two
//! compute scales.

use shrinkbench::experiment::{DatasetKind, ExperimentConfig, ModelKind, PretrainConfig};
use shrinkbench::{FinetuneConfig, OptimizerKind, ScheduleKind, StrategyKind, WeightPolicy};

/// Compute scale for the experimental figures.
///
/// `Quick` shrinks datasets, epochs, and seed counts so the full grid
/// runs in a few minutes (CI / smoke-testing); `Standard` is the scale
/// used for the committed EXPERIMENTS.md results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke configuration.
    Quick,
    /// The full reproduction configuration.
    Standard,
}

impl Scale {
    /// Parses `"quick"` / `"standard"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "standard" => Some(Scale::Standard),
            _ => None,
        }
    }

    fn seeds(&self, standard: &[u64]) -> Vec<u64> {
        match self {
            Scale::Quick => vec![standard[0]],
            Scale::Standard => standard.to_vec(),
        }
    }

    fn suffix(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
        }
    }
}

/// The compression ratios the paper recommends sweeping (Section 6),
/// plus the dense control point.
pub const CIFAR_COMPRESSIONS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Ratios used for the ImageNet-like experiments (paper Figure 6).
pub const IMAGENET_COMPRESSIONS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Ratios for the width-scaled ResNets. The paper sweeps to 32×, but at
/// our reduced widths the dense batch-norm/bias overhead alone exceeds
/// `total/32` parameters, so every strategy saturates to an empty network
/// there; we sweep to 16× and document the saturation in EXPERIMENTS.md.
pub const RESNET_COMPRESSIONS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Ratios for the initial-model pitfall experiment (Figure 8).
pub const FIGURE8_COMPRESSIONS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn cifar_pretrain(scale: Scale) -> PretrainConfig {
    PretrainConfig {
        epochs: match scale {
            Scale::Quick => 8,
            Scale::Standard => 20,
        },
        optimizer: OptimizerKind::Adam { lr: 1e-3 },
        batch_size: 64,
        weights_seed: 0xA11CE,
        patience: Some(5),
    }
}

fn cifar_finetune(scale: Scale) -> FinetuneConfig {
    FinetuneConfig {
        // Paper Appendix C.2 fine-tunes CIFAR with Adam @ 3e-4; epochs
        // scaled to this substrate.
        epochs: match scale {
            Scale::Quick => 2,
            Scale::Standard => 4,
        },
        batch_size: 64,
        optimizer: OptimizerKind::Adam { lr: 3e-4 },
        schedule: ScheduleKind::OneShot,
        patience: Some(1),
        flatten_input: false,
        exclude_classifier: true,
        weight_policy: WeightPolicy::Finetune,
    }
}

fn cifar_experiment(
    id: &str,
    model: ModelKind,
    data_scale: usize,
    scale: Scale,
    strategies: Vec<StrategyKind>,
    compressions: &[f64],
) -> ExperimentConfig {
    ExperimentConfig {
        id: format!("{id}-{}", scale.suffix()),
        dataset: DatasetKind::CifarLike,
        data_scale: match scale {
            Scale::Quick => data_scale * 4,
            Scale::Standard => data_scale,
        },
        data_seed: 7,
        model,
        strategies,
        compressions: compressions.to_vec(),
        seeds: scale.seeds(&[1, 2, 3]),
        pretrain: cifar_pretrain(scale),
        finetune: cifar_finetune(scale),
    }
}

/// Builds the experiment grid backing a figure.
///
/// Known experiment ids: `cifar-vgg`, `resnet20`, `resnet56`,
/// `resnet110`, `imagenet-resnet18`, `weights-a`, `weights-b`,
/// `ablation-schedule-oneshot`, `ablation-schedule-iterative`,
/// `ablation-classifier-excluded`, `ablation-classifier-included`,
/// `ablation-structured`.
pub fn experiment_config(id: &str, scale: Scale) -> Option<ExperimentConfig> {
    let fig7: Vec<StrategyKind> = StrategyKind::FIGURE7.to_vec();
    let fig6: Vec<StrategyKind> = StrategyKind::FIGURE6.to_vec();
    Some(match id {
        "cifar-vgg" => cifar_experiment(
            id,
            ModelKind::CifarVgg { base_width: 8 },
            2,
            scale,
            fig7,
            &CIFAR_COMPRESSIONS,
        ),
        "resnet20" => cifar_experiment(
            id,
            ModelKind::ResNetCifar { depth: 20, base_width: 4 },
            2,
            scale,
            fig7,
            &RESNET_COMPRESSIONS,
        ),
        "resnet56" => cifar_experiment(
            id,
            ModelKind::ResNetCifar { depth: 56, base_width: 4 },
            2,
            scale,
            fig7,
            &RESNET_COMPRESSIONS,
        ),
        "resnet110" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::ResNetCifar { depth: 110, base_width: 4 },
                2,
                scale,
                fig7,
                &RESNET_COMPRESSIONS,
            );
            // The deepest model: halve the seed budget at standard scale
            // to bound wall-clock (documented in EXPERIMENTS.md).
            if scale == Scale::Standard {
                cfg.seeds = vec![1, 2];
            }
            cfg
        }
        "imagenet-resnet18" => ExperimentConfig {
            id: format!("{id}-{}", scale.suffix()),
            dataset: DatasetKind::ImagenetLike,
            data_scale: match scale {
                Scale::Quick => 8,
                Scale::Standard => 2,
            },
            data_seed: 11,
            model: ModelKind::ResNet18 { base_width: 4 },
            strategies: fig6,
            compressions: IMAGENET_COMPRESSIONS.to_vec(),
            // The paper's ImageNet plots carry no error bars: one seed.
            seeds: vec![1],
            pretrain: PretrainConfig {
                epochs: match scale {
                    Scale::Quick => 5,
                    Scale::Standard => 15,
                },
                // Appendix C.2: ImageNet uses SGD with Nesterov momentum.
                optimizer: OptimizerKind::SgdNesterov { lr: 0.02 },
                batch_size: 64,
                weights_seed: 0xB0B,
                patience: Some(4),
            },
            finetune: FinetuneConfig {
                epochs: match scale {
                    Scale::Quick => 2,
                    Scale::Standard => 5,
                },
                batch_size: 64,
                // The paper fine-tunes ImageNet with SGD+Nesterov at 1e-3
                // over 20 epochs of 1.28M images; at our dataset scale an
                // equivalent optimization budget needs a larger step.
                optimizer: OptimizerKind::SgdNesterov { lr: 1e-2 },
                schedule: ScheduleKind::OneShot,
                patience: Some(1),
                flatten_input: false,
                exclude_classifier: true,
                weight_policy: WeightPolicy::Finetune,
            },
        },
        // Figure 8: two pretrained models of the same architecture.
        // Weights A: Adam with lr 1e-3; Weights B: Adam with lr 1e-4
        // (paper Section 7.3: "trained two ResNet-56 networks using Adam
        // until convergence with η = 1e−3 and η = 1e−4").
        "weights-a" | "weights-b" => {
            let lr = if id == "weights-a" { 1e-3 } else { 1e-4 };
            let mut cfg = cifar_experiment(
                id,
                ModelKind::ResNetCifar { depth: 56, base_width: 4 },
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude, StrategyKind::LayerMagnitude],
                &FIGURE8_COMPRESSIONS,
            );
            cfg.pretrain.optimizer = OptimizerKind::Adam { lr };
            // The low-lr model needs a longer budget to reach its own
            // convergence (the paper trains both "until convergence").
            if id == "weights-b" && scale == Scale::Standard {
                cfg.pretrain.epochs = 60;
                cfg.pretrain.patience = Some(8);
            }
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "ablation-schedule-oneshot" | "ablation-schedule-iterative" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::ResNetCifar { depth: 20, base_width: 4 },
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude],
                &[4.0, 16.0, 32.0],
            );
            if id.ends_with("iterative") {
                cfg.finetune.schedule = ScheduleKind::Iterative { iterations: 3 };
                cfg.finetune.epochs = cfg.finetune.epochs.max(3);
            }
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "ablation-classifier-excluded" | "ablation-classifier-included" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::CifarVgg { base_width: 8 },
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude],
                &[8.0, 32.0],
            );
            cfg.finetune.exclude_classifier = id.ends_with("excluded");
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "ablation-structured" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::Lenet5,
                2,
                scale,
                vec![
                    StrategyKind::FilterNorm,
                    StrategyKind::GlobalMagnitude,
                    StrategyKind::LayerMagnitude,
                ],
                &[2.0, 4.0, 8.0],
            );
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "ablation-policy-finetune" | "ablation-policy-rewind" | "ablation-policy-reinit" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::CifarVgg { base_width: 8 },
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude],
                &[2.0, 8.0, 16.0],
            );
            cfg.finetune.weight_policy = match id {
                "ablation-policy-rewind" => WeightPolicy::RewindToInit,
                "ablation-policy-reinit" => WeightPolicy::Reinitialize,
                _ => WeightPolicy::Finetune,
            };
            cfg.seeds = scale.seeds(&[1, 2]);
            // Retraining from scratch/rewind needs a full budget, not a
            // fine-tuning budget ("holding the number of fine-tuning
            // iterations constant", Section 3.2).
            cfg.finetune.epochs *= 2;
            cfg
        }
        "ablation-arch-base" | "ablation-arch-variant" => {
            let model = if id.ends_with("variant") {
                ModelKind::CifarVggVariant { base_width: 8 }
            } else {
                ModelKind::CifarVgg { base_width: 8 }
            };
            let mut cfg = cifar_experiment(
                id,
                model,
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude, StrategyKind::GlobalGradient],
                &[2.0, 4.0, 8.0],
            );
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "prune-at-init" => {
            // Pruning at initialization (Lee et al. 2019b, Section 2.2's
            // "or even at initialization" variant): zero pretraining
            // epochs, then prune the random network and train with the
            // mask fixed.
            let mut cfg = cifar_experiment(
                id,
                ModelKind::CifarVgg { base_width: 8 },
                2,
                scale,
                vec![
                    StrategyKind::GlobalGradient,
                    StrategyKind::GlobalMagnitude,
                    StrategyKind::Random,
                ],
                &[1.0, 2.0, 4.0, 8.0],
            );
            cfg.pretrain.epochs = 0;
            cfg.pretrain.patience = None;
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg.finetune.epochs = match scale {
                Scale::Quick => 3,
                Scale::Standard => 8,
            };
            cfg.finetune.patience = Some(2);
            cfg
        }
        "ablation-random-layerwise" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::ResNetCifar { depth: 20, base_width: 4 },
                2,
                scale,
                vec![StrategyKind::Random, StrategyKind::RandomLayerwise],
                &[2.0, 8.0, 16.0],
            );
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "realized-inference" => {
            // Backs the theoretical-vs-realized speedup panel: LeNet-5 is
            // small enough to sweep quickly yet mixes convolutions and
            // linear layers, so both CSR (unstructured) and shrunk-dense
            // (structured) compilation paths engage.
            let mut cfg = cifar_experiment(
                id,
                ModelKind::Lenet5,
                2,
                scale,
                vec![StrategyKind::GlobalMagnitude, StrategyKind::FilterNorm],
                &[1.0, 2.0, 4.0, 16.0],
            );
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        "mnist-saturation" => {
            let mut cfg = cifar_experiment(
                id,
                ModelKind::Lenet300_100,
                1,
                scale,
                vec![StrategyKind::GlobalMagnitude, StrategyKind::Random],
                &CIFAR_COMPRESSIONS,
            );
            cfg.dataset = DatasetKind::MnistLike;
            cfg.seeds = scale.seeds(&[1, 2]);
            cfg
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_IDS: [&str; 14] = [
        "cifar-vgg",
        "resnet20",
        "resnet56",
        "resnet110",
        "imagenet-resnet18",
        "weights-a",
        "weights-b",
        "ablation-schedule-oneshot",
        "ablation-schedule-iterative",
        "ablation-classifier-excluded",
        "ablation-classifier-included",
        "ablation-structured",
        "realized-inference",
        "mnist-saturation",
    ];

    #[test]
    fn all_known_ids_build() {
        for id in ALL_IDS {
            for scale in [Scale::Quick, Scale::Standard] {
                let cfg = experiment_config(id, scale)
                    .unwrap_or_else(|| panic!("{id} should build"));
                assert!(!cfg.strategies.is_empty());
                assert!(!cfg.compressions.is_empty());
                assert!(!cfg.seeds.is_empty());
            }
        }
        assert!(experiment_config("nonsense", Scale::Quick).is_none());
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = experiment_config("resnet56", Scale::Quick).unwrap();
        let s = experiment_config("resnet56", Scale::Standard).unwrap();
        assert!(q.data_scale > s.data_scale);
        assert!(q.pretrain.epochs < s.pretrain.epochs);
        assert!(q.seeds.len() < s.seeds.len());
        assert_ne!(q.id, s.id, "cache keys must differ per scale");
    }

    #[test]
    fn weights_ab_differ_only_in_pretraining() {
        let a = experiment_config("weights-a", Scale::Standard).unwrap();
        let b = experiment_config("weights-b", Scale::Standard).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.compressions, b.compressions);
        assert_ne!(a.pretrain.optimizer, b.pretrain.optimizer);
    }

    #[test]
    fn imagenet_uses_sgd_and_single_seed() {
        let cfg = experiment_config("imagenet-resnet18", Scale::Standard).unwrap();
        assert_eq!(cfg.seeds.len(), 1);
        assert_eq!(cfg.strategies.len(), 4, "ImageNet plots omit random pruning");
    }
}
