//! `schedload` — drive the `sb-sched` multi-model scheduler with a
//! synthetic multi-tenant load and print the resulting `SchedProfile`.
//!
//! ```text
//! schedload                    # 3-tenant virtual-clock scenario, JSON out
//! schedload --horizon-ms 400   # longer offered-load window
//! schedload --quota            # same scenario with admission quotas on
//! schedload --picks picks.json # also dump the dequeue-decision log
//! schedload --tune             # autotune per-tenant batching for p99
//! schedload --faults 64023     # seeded faults + per-tenant breakers
//! schedload --smoke            # deterministic CI smoke (asserts)
//! ```
//!
//! The stock scenario shares one pool between a 16x-pruned CSR
//! LeNet-300-100 (interactive, weight 2), its forced-dense counterpart
//! (batch class, weight 1), and a cheap interactive echo canary —
//! tenants priced by their compiled models' effective MACs, so the WFQ
//! charge per batch reflects what the batch actually costs. `--quota`
//! attaches token-bucket admission quotas to the two LeNet tenants
//! (pruned 6k admits/s, dense 2k admits/s), shedding their overload
//! with `QuotaExceeded` at the door instead of letting it pile into the
//! shared window. Everything runs on the virtual clock: outcomes are a
//! pure function of the flags and `--seed`, bit-identical at any
//! `SB_RUNTIME_THREADS`. `--smoke` pins one workload's exact outcome
//! counts for `scripts/ci.sh` — with and without `--quota`.
//!
//! `--faults SEED` arms the fault-tolerance stack: every tenant's
//! primary engine suffers a seeded outage burst (panics, transient
//! flakes, slowdowns over a window of per-tenant batch indices), retry
//! with backoff is shared, and the failure domains differ per tenant —
//! the pruned tenant gets a circuit breaker with *no* fallback (its
//! overload sheds `CircuitOpen` at the door while open), the dense
//! tenant gets a breaker plus the 16x-pruned model as its degraded-mode
//! fallback (it keeps serving, cheaper, while its primary is sick), and
//! the canary gets neither (raw `EngineFailure`s, proving isolation).
//! `--smoke --faults SEED` pins that whole arc as exact counts.

use sb_sched::{
    autotune, profile, run_multi_open_loop_sim, MultiServer, Priority, SchedConfig, TenantLoad,
    TenantPolicy, TenantQuota, TenantSpec, TuneSpec,
};
use sb_serve::{
    ArrivalProcess, BackoffPolicy, BreakerConfig, BreakerState, EchoEngine, FaultPlan, FaultSpec,
    InferEngine, RetryPolicy, ServiceModel, SimClock,
};
use std::sync::Arc;

const MACS_PER_US: u64 = 2_000;
const BASE_US: u64 = 200;
const ECHO_FEATURES: usize = 4;
const LENET_FEATURES: usize = 256;

fn usage() -> ! {
    eprintln!(
        "usage: schedload [--smoke] [--tune] [--quota] [--faults SEED] [--picks PATH] \
         [--horizon-ms M] [--seed S] [--target-p99-us T]"
    );
    std::process::exit(2);
}

struct Opts {
    smoke: bool,
    tune: bool,
    quota: bool,
    faults: Option<u64>,
    picks: Option<String>,
    horizon_ms: u64,
    seed: u64,
    target_p99_us: u64,
}

fn parse() -> Opts {
    let mut o = Opts {
        smoke: false,
        tune: false,
        quota: false,
        faults: None,
        picks: None,
        horizon_ms: 200,
        seed: 0x5C4E,
        target_p99_us: 5_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => o.smoke = true,
            "--tune" => o.tune = true,
            "--quota" => o.quota = true,
            "--faults" => {
                o.faults = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--picks" => o.picks = Some(next(&args, &mut i)),
            "--horizon-ms" => {
                o.horizon_ms = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => o.seed = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--target-p99-us" => {
                o.target_p99_us = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

/// A LeNet-300-100 engine at the given compression, priced by effective
/// MACs (the sb-infer cost model) through the fixed machine constant.
fn lenet_engine(ratio: f64, format: Option<sb_infer::ExecFormat>) -> InferEngine {
    use shrinkbench::{GlobalMagnitude, Pruner};
    let mut rng = sb_tensor::Rng::seed_from(0xBE7C);
    let mut net = sb_nn::models::lenet_300_100(LENET_FEATURES, 10, &mut rng);
    if ratio > 1.0 {
        Pruner::default()
            .prune(&mut net, &GlobalMagnitude, ratio, &mut rng)
            .expect("pruning a fresh network succeeds");
    }
    let compiled = sb_infer::CompiledModel::compile(
        &net,
        &sb_infer::CompileOptions {
            force_format: format,
            ..sb_infer::CompileOptions::default()
        },
    );
    let per_sample_us = (compiled.effective_macs() / MACS_PER_US).max(1);
    InferEngine::new(
        compiled,
        ServiceModel {
            base_us: BASE_US,
            per_sample_us,
        },
    )
}

/// The `--faults` outage schedule: a burst over per-tenant primary
/// batch indices 10..25 mixing hard panics, transient flakes (outlasted
/// by the shared retry budget), and slowdowns. Every tenant's primary
/// is hit; what differs is each tenant's failure domain (breaker /
/// fallback wiring in [`scenario`]).
fn fault_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        panic_per_mille: 700,
        transient_per_mille: 200,
        slow_per_mille: 100,
        window_from: Some(10),
        window_until: Some(25),
        ..FaultSpec::none(seed)
    }
}

/// The per-tenant breaker used under `--faults`: trips once half of a
/// short sliding window fails, backs off 2 virtual ms, then probes the
/// primary twice before re-closing.
fn breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        min_samples: 4,
        error_threshold_per_mille: 500,
        open_us: 2_000,
        probe_batches: 2,
    }
}

/// The stock 3-tenant scenario (see module docs). With `quota` set, the
/// two LeNet tenants get token-bucket admission quotas below their
/// offered rates, so part of their load is shed with `QuotaExceeded` at
/// the door. With `faults` set, the pruned tenant gets a breaker (no
/// fallback — sheds while open), the dense tenant gets a breaker plus
/// the 16x-pruned model as its cheaper fallback, and the canary gets
/// neither.
fn scenario(seed: u64, quota: bool, faults: bool) -> (Vec<TenantSpec>, Vec<TenantLoad>) {
    let mut pruned = TenantSpec::new(
        "pruned-16x",
        2,
        Priority::Interactive,
        TenantPolicy {
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 64,
            quota: quota.then_some(TenantQuota {
                rate_per_s: 6_000,
                burst: 16,
            }),
        },
        Arc::new(lenet_engine(16.0, None)),
    );
    let mut dense = TenantSpec::new(
        "dense",
        1,
        Priority::Batch,
        TenantPolicy {
            max_batch: 16,
            max_wait_us: 1_000,
            queue_cap: 64,
            quota: quota.then_some(TenantQuota {
                rate_per_s: 2_000,
                burst: 8,
            }),
        },
        Arc::new(lenet_engine(1.0, Some(sb_infer::ExecFormat::Dense))),
    );
    let canary = TenantSpec::new(
        "canary",
        1,
        Priority::Interactive,
        TenantPolicy {
            max_batch: 4,
            max_wait_us: 250,
            queue_cap: 32,
            quota: None,
        },
        Arc::new(EchoEngine::new(
            ECHO_FEATURES,
            10,
            ServiceModel {
                base_us: 100,
                per_sample_us: 20,
            },
        )),
    );
    if faults {
        // Distinct failure domains: the pruned tenant sheds while its
        // breaker is open, the dense tenant degrades to its own pruned
        // counterpart, the canary takes raw failures.
        pruned = pruned.with_breaker(breaker());
        dense = dense
            .with_breaker(breaker())
            .with_fallback(Arc::new(lenet_engine(16.0, None)));
    }
    let tenants = vec![pruned, dense, canary];
    let loads = vec![
        TenantLoad {
            arrivals: ArrivalProcess::Uniform { rate_rps: 8_000.0 },
            seed,
            deadline_us: Some(5_000),
        },
        TenantLoad {
            arrivals: ArrivalProcess::Uniform { rate_rps: 3_000.0 },
            seed: seed ^ 1,
            deadline_us: None,
        },
        TenantLoad {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 1_000.0,
                burst: 8,
            },
            seed: seed ^ 2,
            deadline_us: Some(2_000),
        },
    ];
    (tenants, loads)
}

/// Pure per-request input: tenant 0/1 are 256-feature LeNet samples,
/// tenant 2 the 4-feature echo. Re-derivable from `(tenant, i)` alone,
/// as the autotuner's replays require.
fn make_sample(seed: u64, tenant: usize, i: usize) -> Vec<f32> {
    let len = if tenant == 2 { ECHO_FEATURES } else { LENET_FEATURES };
    let mut rng = sb_rng::Rng::seed_from(seed ^ ((tenant as u64) << 40) ^ i as u64);
    (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Drive the scenario and hand back the server (breaker events and
/// pick log still inside) alongside the completions.
fn run_raw(o: &Opts) -> (MultiServer, Vec<sb_sched::SchedCompletion>, u64) {
    let (tenants, loads) = scenario(o.seed, o.quota, o.faults.is_some());
    let horizon_us = o.horizon_ms * 1_000;
    let clock = Arc::new(SimClock::new());
    let mut ms = MultiServer::new(tenants, SchedConfig { max_inflight: 2 }, clock.clone());
    if let Some(seed) = o.faults {
        ms = ms
            .with_faults(FaultPlan::new(fault_spec(seed)))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff: BackoffPolicy {
                    base_us: 100,
                    multiplier: 2,
                    max_delay_us: 2_000,
                },
            });
    }
    let seed = o.seed;
    let done = run_multi_open_loop_sim(&mut ms, &clock, &loads, horizon_us, |t, i| {
        make_sample(seed, t, i)
    });
    (ms, done, horizon_us)
}

fn run(o: &Opts) -> sb_metrics::SchedProfile {
    let (mut ms, done, horizon_us) = run_raw(o);
    let picks = ms.take_picks();
    if let Some(path) = &o.picks {
        std::fs::write(path, sb_bench::picks::render_picks(&picks))
            .unwrap_or_else(|e| panic!("write pick log {path}: {e}"));
        eprintln!("wrote {} pick records to {path}", picks.len());
    }
    profile(&ms, &done, &picks, horizon_us)
}

fn tune(o: &Opts) {
    let (tenants, loads) = scenario(o.seed, o.quota, false);
    let horizon_us = o.horizon_ms * 1_000;
    let cfg = SchedConfig { max_inflight: 2 };
    let spec = TuneSpec {
        target_p99_us: o.target_p99_us,
        // With --quota, let the tuner weigh admission quotas against
        // unlimited admission per tenant.
        quota_candidates: if o.quota {
            vec![
                None,
                Some(TenantQuota {
                    rate_per_s: 2_000,
                    burst: 8,
                }),
                Some(TenantQuota {
                    rate_per_s: 6_000,
                    burst: 16,
                }),
            ]
        } else {
            Vec::new()
        },
        ..TuneSpec::default()
    };
    let seed = o.seed;
    let sample = move |t: usize, i: usize| make_sample(seed, t, i);
    let before = sb_sched::simulate(
        &tenants,
        cfg,
        &loads,
        horizon_us,
        &tenants.iter().map(|t| t.policy).collect::<Vec<_>>(),
        &sample,
    );
    let result = autotune(&tenants, cfg, &loads, horizon_us, &spec, &sample);
    println!(
        "autotune: target p99 {}us, {} simulator replays",
        spec.target_p99_us, result.sims
    );
    for (i, t) in tenants.iter().enumerate() {
        println!(
            "{:>12}: p99 {:>6}us -> {:>6}us   policy {:?} -> {:?}",
            t.name,
            before.tenants[i].serve.p99_us,
            result.profile.tenants[i].serve.p99_us,
            t.policy,
            result.policies[i]
        );
    }
}

/// Pinned deterministic workload: the stock scenario, 200 virtual ms,
/// seed 0x5C4E, with or without admission quotas. The counts below are
/// the exact outcome of that pure function; any drift in the WFQ
/// charging, EDF ordering, priority filter, per-tenant batching, quota
/// refills, deadline checks, or rng streams changes them.
fn smoke(quota: bool) {
    let o = Opts {
        smoke: true,
        tune: false,
        quota,
        faults: None,
        picks: None,
        horizon_ms: 200,
        seed: 0x5C4E,
        target_p99_us: 5_000,
    };
    let p = run(&o);
    let t = |name: &str| p.tenant(name).expect("stock tenant");
    for tp in &p.tenants {
        println!(
            "smoke: {:>12} [{}, w{}] {} completed + {} shed ({} quota); p99 {}us; cost share {:.3} (weight share {:.3})",
            tp.name,
            tp.priority,
            tp.weight,
            tp.serve.completed,
            tp.serve.rejected.total(),
            tp.serve.rejected.quota_exceeded,
            tp.serve.p99_us,
            tp.cost_share,
            tp.weight_share,
        );
    }
    let signature = (
        p.tenants.iter().map(|t| t.serve.requests).sum::<usize>(),
        t("pruned-16x").serve.completed,
        t("dense").serve.completed,
        t("canary").serve.completed,
        p.tenants.iter().map(|t| t.serve.rejected.total()).sum::<usize>(),
        p.total_served_cost_us,
        t("pruned-16x").serve.p99_us,
        t("canary").serve.p99_us,
    );
    println!("smoke signature: {signature:?}");
    if quota {
        let quota_sheds = (
            t("pruned-16x").serve.rejected.quota_exceeded,
            t("dense").serve.rejected.quota_exceeded,
            t("canary").serve.rejected.quota_exceeded,
        );
        println!("quota sheds: {quota_sheds:?}");
        assert_eq!(
            (signature, quota_sheds),
            QUOTA_SMOKE_SIGNATURE,
            "deterministic quota smoke drifted — if the scheduling policy \
             or rng stream changed intentionally, re-pin QUOTA_SMOKE_SIGNATURE"
        );
        // Both quota'd tenants must actually have shed at the door, and
        // the unquota'd canary must not have.
        assert!(quota_sheds.0 > 0 && quota_sheds.1 > 0);
        assert_eq!(quota_sheds.2, 0);
    } else {
        assert_eq!(
            signature, SMOKE_SIGNATURE,
            "deterministic sched smoke drifted — if the scheduling policy \
             or rng stream changed intentionally, re-pin SMOKE_SIGNATURE"
        );
    }
    // The interactive deadline tenants must be inside their deadlines
    // despite the dense batch tenant sharing the pool.
    assert!(t("pruned-16x").serve.p99_us <= 5_000);
    assert!(t("canary").serve.p99_us <= 2_000);
    println!("sched smoke OK");
}

/// The exact outcome of the pinned [`smoke`] workload.
const SMOKE_SIGNATURE: (usize, usize, usize, usize, usize, u64, u64, u64) =
    (2368, 1580, 604, 184, 0, 149_032, 718, 518);

/// The exact outcome of the pinned [`smoke`] workload with `--quota`:
/// the stock signature shape plus per-tenant `QuotaExceeded` counts.
const QUOTA_SMOKE_SIGNATURE: (
    (usize, usize, usize, usize, usize, u64, u64, u64),
    (usize, usize, usize),
) = ((2368, 1214, 407, 184, 563, 132_093, 718, 446), (366, 197, 0));

/// Pinned deterministic faulted workload: the stock scenario armed with
/// [`fault_spec`] and per-tenant failure domains (see module docs).
/// Asserts the whole degraded-mode arc — the pruned tenant's breaker
/// opens and sheds `CircuitOpen` with no fallback, the dense tenant
/// degrades to its pruned fallback instead of shedding, the canary eats
/// raw `EngineFailure`s without a breaker, both breakers re-close once
/// probes find the primaries healthy — and, at the canonical CI seed,
/// the exact counts.
fn fault_smoke(seed: u64) {
    let o = Opts {
        smoke: true,
        tune: false,
        quota: false,
        faults: Some(seed),
        picks: None,
        horizon_ms: 200,
        seed: 0x5C4E,
        target_p99_us: 5_000,
    };
    let (mut ms, done, horizon_us) = run_raw(&o);
    let events = ms.take_breaker_events();
    let picks = ms.take_picks();
    let p = profile(&ms, &done, &picks, horizon_us);
    let t = |name: &str| p.tenant(name).expect("stock tenant");
    for tp in &p.tenants {
        println!(
            "fault smoke: {:>12} {} completed ({} via fallback) + {} engine_failure \
             + {} circuit_open + {} other shed; p99 {}us",
            tp.name,
            tp.serve.completed,
            tp.serve.completed_fallback,
            tp.serve.rejected.engine_failure,
            tp.serve.rejected.circuit_open,
            tp.serve.rejected.total()
                - tp.serve.rejected.engine_failure
                - tp.serve.rejected.circuit_open,
            tp.serve.p99_us,
        );
    }
    let (pruned, dense, canary) = (t("pruned-16x"), t("dense"), t("canary"));
    // Failure domains: the breakered-but-fallbackless pruned tenant
    // sheds at the door while open; the dense tenant rides out the
    // burst on its pruned fallback without shedding; the bare canary
    // takes raw failures and nothing else.
    assert!(pruned.serve.rejected.circuit_open > 0, "open breaker sheds");
    assert_eq!(pruned.serve.completed_fallback, 0);
    assert!(dense.serve.completed_fallback > 0, "dense degrades to pruned");
    assert_eq!(dense.serve.rejected.circuit_open, 0);
    assert!(canary.serve.rejected.engine_failure > 0, "canary hit raw");
    assert_eq!(canary.serve.rejected.circuit_open, 0);
    assert_eq!(canary.serve.completed_fallback, 0);
    // Transitions only for the two breakered tenants, and both recover.
    assert!(events.iter().all(|e| e.tenant < 2), "canary has no breaker");
    for tenant in 0..2 {
        let last = events.iter().rev().find(|e| e.tenant == tenant);
        assert_eq!(
            last.map(|e| e.to),
            Some(BreakerState::Closed),
            "tenant {tenant} breaker re-closes after the burst"
        );
        assert_eq!(ms.breaker_state(tenant), Some(BreakerState::Closed));
    }
    assert_eq!(ms.breaker_state(2), None, "canary has no breaker");
    let signature = (
        p.tenants.iter().map(|t| t.serve.requests).sum::<usize>(),
        (
            pruned.serve.completed,
            pruned.serve.rejected.engine_failure,
            pruned.serve.rejected.circuit_open,
            pruned.serve.p99_us,
        ),
        (
            dense.serve.completed,
            dense.serve.completed_fallback,
            dense.serve.rejected.engine_failure,
        ),
        (canary.serve.completed, canary.serve.rejected.engine_failure),
        events.len(),
    );
    println!("fault smoke signature: {signature:?}");
    if seed == FAULT_SMOKE_SEED {
        assert_eq!(
            signature, FAULT_SMOKE_SIGNATURE,
            "deterministic sched fault smoke drifted — if the fault schedule, \
             breaker policy, or WFQ charging changed intentionally, re-pin \
             FAULT_SMOKE_SIGNATURE"
        );
    }
    println!("sched fault smoke OK");
}

/// The canonical seed `scripts/ci.sh` passes to `--smoke --faults`.
const FAULT_SMOKE_SEED: u64 = 0xFA17;

/// The exact outcome of the pinned [`fault_smoke`] workload at
/// [`FAULT_SMOKE_SEED`]: (requests, pruned (completed, engine_failure,
/// circuit_open, p99_us), dense (completed, completed_fallback,
/// engine_failure), canary (completed, engine_failure), transitions).
const FAULT_SMOKE_SIGNATURE: (
    usize,
    (usize, usize, usize, u64),
    (usize, usize, usize),
    (usize, usize),
    usize,
) = (2368, (1365, 56, 159, 949), (565, 40, 39), (140, 44), 36);

fn main() {
    let o = parse();
    if o.faults.is_some() {
        sb_bench::silence_injected_panics();
    }
    if o.smoke {
        match o.faults {
            Some(seed) => fault_smoke(seed),
            None => smoke(o.quota),
        }
        return;
    }
    if o.tune {
        tune(&o);
        return;
    }
    let p = run(&o);
    println!("{}", sb_json::to_string_pretty(&p).expect("serialize"));
}
