//! `trace-diff` — localized perf regressions between two trace captures.
//!
//! ```text
//! trace-diff results/before/fig7.trace.json results/after/fig7.trace.json
//! ```
//!
//! Prints the self-time regression table (largest increase first) and
//! the counter totals diff. Exit status 0 on a successful diff; the
//! table itself makes no judgement — a regression in ticks between two
//! machines or thread counts is data, not an error.

use sb_bench::tracediff::{parse_report, render_diff};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        eprintln!("usage: trace-diff <before.trace.json> <after.trace.json>");
        std::process::exit(2);
    }
    let mut reports = Vec::new();
    for path in &args {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace-diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        reports.push(parse_report(&text).unwrap_or_else(|e| {
            eprintln!("trace-diff: {path}: {e}");
            std::process::exit(2);
        }));
    }
    print!(
        "{}",
        render_diff(&args[0], &args[1], &reports[0], &reports[1])
    );
}
