//! `serveload` — drive the `sb-serve` micro-batcher with a synthetic
//! load and print the resulting `ServeProfile`.
//!
//! ```text
//! serveload                         # virtual clock, echo engine, 2k rps
//! serveload --engine lenet --rps 8000 --horizon-ms 250
//! serveload --burst 8               # bursty arrivals
//! serveload --ramp 20000            # ramp from --rps up to 20k rps
//! serveload --closed 4 --think-us 500 --requests 64
//! serveload --wall                  # measure the real machine instead
//! serveload --faults 64023          # seeded faults + retry/breaker/fallback
//! serveload --smoke                 # deterministic CI smoke (asserts)
//! ```
//!
//! Default mode is the virtual clock: outcomes are a pure function of
//! the flags and `--seed`, bit-identical at any `SB_RUNTIME_THREADS`.
//! `--smoke` runs a pinned workload and asserts its exact outcome
//! counts, which is what `scripts/ci.sh` calls.
//!
//! `--faults SEED` arms the canonical fault stack: a seeded outage
//! burst (panics, transient flakes, and slowdowns over a window of
//! primary batch indices), bounded retry with exponential backoff, a
//! circuit breaker, and a cheaper fallback engine (a 64x-pruned LeNet
//! under `--engine lenet`). The fault schedule is a pure function of
//! the seed, so `--smoke --faults SEED` pins the whole degraded-mode
//! arc — breaker opens, fallback holds, probes re-close — as exact
//! counts.

use sb_serve::{
    drain_sim, profile, run_closed_loop_sim, run_open_loop_sim, run_open_loop_wall,
    ArrivalProcess, BackoffPolicy, BatchEngine, BreakerConfig, BreakerState, Completion,
    EchoEngine, FaultPlan, FaultSpec, InferEngine, LoadSpec, Outcome, RejectReason, RetryPolicy,
    ServeConfig, Server, ServiceModel, SimClock, WallClock,
};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serveload [--smoke] [--engine echo|lenet] [--rps R] [--burst N] [--ramp END_RPS]\n\
         \x20                [--horizon-ms M] [--deadline-us D] [--seed S] [--wall] [--faults SEED]\n\
         \x20                [--max-batch N] [--max-wait-us U] [--queue-cap N] [--inflight N]\n\
         \x20                [--closed CLIENTS] [--think-us U] [--requests N]"
    );
    std::process::exit(2);
}

struct Opts {
    smoke: bool,
    engine: String,
    rps: f64,
    burst: Option<usize>,
    ramp: Option<f64>,
    horizon_ms: u64,
    deadline_us: Option<u64>,
    seed: u64,
    wall: bool,
    faults: Option<u64>,
    cfg: ServeConfig,
    closed: Option<usize>,
    think_us: u64,
    requests: usize,
}

fn parse() -> Opts {
    let mut o = Opts {
        smoke: false,
        engine: "echo".to_string(),
        rps: 2_000.0,
        burst: None,
        ramp: None,
        horizon_ms: 500,
        deadline_us: Some(10_000),
        seed: 0x5E4E,
        wall: false,
        faults: None,
        cfg: ServeConfig {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_cap: 64,
            max_inflight: 2,
        },
        closed: None,
        think_us: 500,
        requests: 32,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => o.smoke = true,
            "--engine" => o.engine = next(&args, &mut i),
            "--rps" => o.rps = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--burst" => o.burst = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--ramp" => o.ramp = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--horizon-ms" => {
                o.horizon_ms = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--deadline-us" => {
                let d: u64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                o.deadline_us = (d > 0).then_some(d);
            }
            "--seed" => o.seed = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--wall" => o.wall = true,
            "--faults" => {
                o.faults = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--max-batch" => {
                o.cfg.max_batch = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-wait-us" => {
                o.cfg.max_wait_us = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--queue-cap" => {
                o.cfg.queue_cap = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--inflight" => {
                o.cfg.max_inflight = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--closed" => o.closed = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--think-us" => o.think_us = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => o.requests = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    o
}

const ECHO_FEATURES: usize = 4;

/// The lenet engine at a given compression: global-magnitude
/// LeNet-300-100, auto-compiled, priced by effective MACs (2000 MACs
/// per virtual µs, 200µs dispatch).
fn lenet_engine(ratio: f64) -> (InferEngine, usize) {
    use shrinkbench::{GlobalMagnitude, Pruner};
    let mut rng = sb_tensor::Rng::seed_from(0xBE7C);
    let mut net = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    Pruner::default()
        .prune(&mut net, &GlobalMagnitude, ratio, &mut rng)
        .expect("pruning a fresh network succeeds");
    let compiled = sb_infer::CompiledModel::compile(&net, &sb_infer::CompileOptions::default());
    let per_sample_us = (compiled.effective_macs() / 2_000).max(1);
    let service = ServiceModel {
        base_us: 200,
        per_sample_us,
    };
    (InferEngine::new(compiled, service), 256)
}

/// The cheap echo used as the degraded-mode stand-in for the echo
/// primary under `--faults`: same shape, a fraction of the service cost.
fn echo_fallback() -> EchoEngine {
    EchoEngine::new(
        ECHO_FEATURES,
        10,
        ServiceModel {
            base_us: 150,
            per_sample_us: 30,
        },
    )
}

/// The canonical `--faults` schedule: an outage burst over primary batch
/// indices 40..60 mixing hard panics, transient flakes (outlasted by the
/// retry budget), and slowdowns. A pure function of the seed.
fn fault_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        panic_per_mille: 600,
        transient_per_mille: 250,
        slow_per_mille: 150,
        window_from: Some(40),
        window_until: Some(60),
        ..FaultSpec::none(seed)
    }
}

/// Arm a server with the canonical fault stack: the seeded fault plan,
/// bounded retry with exponential backoff, a circuit breaker, and the
/// given cheaper fallback engine.
fn fault_stack<E: BatchEngine + 'static>(
    server: Server<E>,
    seed: u64,
    fallback: impl BatchEngine + 'static,
) -> Server<E> {
    server
        .with_faults(FaultPlan::new(fault_spec(seed)))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff: BackoffPolicy {
                base_us: 100,
                multiplier: 2,
                max_delay_us: 2_000,
            },
        })
        .with_breaker(BreakerConfig {
            window: 8,
            min_samples: 4,
            error_threshold_per_mille: 500,
            open_us: 2_000,
            probe_batches: 2,
        })
        .with_fallback(fallback)
}

fn run<E: BatchEngine + 'static, F: BatchEngine + 'static>(
    o: &Opts,
    engine: E,
    sample_len: usize,
    make_fallback: impl Fn() -> F,
) -> Vec<Completion> {
    let horizon_us = o.horizon_ms * 1_000;
    let arrivals = match (o.burst, o.ramp) {
        (Some(burst), _) => ArrivalProcess::Bursty {
            rate_rps: o.rps,
            burst,
        },
        (None, Some(end)) => ArrivalProcess::Ramp {
            start_rps: o.rps,
            end_rps: end,
        },
        (None, None) => ArrivalProcess::Uniform { rate_rps: o.rps },
    };
    let spec = LoadSpec {
        arrivals,
        horizon_us,
        seed: o.seed,
        deadline_us: o.deadline_us,
    };
    let mut input_rng = sb_rng::Rng::seed_from(o.seed ^ 0xA11CE);
    let make_input = move |_i: usize| -> Vec<f32> {
        (0..sample_len)
            .map(|_| input_rng.uniform(-1.0, 1.0))
            .collect()
    };
    let arm = |server: Server<E>| match o.faults {
        Some(seed) => fault_stack(server, seed, make_fallback()),
        None => server,
    };
    if o.wall {
        let clock = Arc::new(WallClock::new());
        let mut server = arm(Server::new(engine, o.cfg.clone(), clock.clone()));
        run_open_loop_wall(&mut server, clock.as_ref(), &spec, make_input)
    } else {
        let clock = Arc::new(SimClock::new());
        let mut server = arm(Server::new(engine, o.cfg.clone(), clock.clone()));
        match o.closed {
            Some(clients) => run_closed_loop_sim(
                &mut server,
                &clock,
                clients,
                o.think_us,
                o.requests,
                o.deadline_us,
                make_input,
            ),
            None => run_open_loop_sim(&mut server, &clock, &spec, make_input),
        }
    }
}

fn report(done: &[Completion], horizon_us: u64) {
    let p = profile(done, horizon_us);
    println!("{}", sb_json::to_string_pretty(&p).expect("serialize"));
}

/// Pinned deterministic workload: echo engine, open-loop jittered
/// uniform 8000 rps for 200 virtual ms, batch<=8/500µs window/queue
/// 16/1 in flight, 2ms deadlines, seed 0x5E4E. The counts below are the
/// exact outcome of that pure function; any drift in the batcher,
/// queue, deadline checks, or rng stream changes them.
fn smoke() {
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: 500,
        queue_cap: 16,
        max_inflight: 1,
    };
    let clock = Arc::new(SimClock::new());
    let engine = EchoEngine::new(
        ECHO_FEATURES,
        10,
        ServiceModel {
            base_us: 400,
            per_sample_us: 120,
        },
    );
    let mut server = Server::new(engine, cfg, clock.clone());
    let spec = LoadSpec {
        arrivals: ArrivalProcess::Uniform { rate_rps: 8_000.0 },
        horizon_us: 200_000,
        seed: 0x5E4E,
        deadline_us: Some(2_000),
    };
    let done = run_open_loop_sim(&mut server, &clock, &spec, |i| {
        vec![i as f32; ECHO_FEATURES]
    });
    let mut cancelled_probe = Server::new(
        EchoEngine::new(
            ECHO_FEATURES,
            10,
            ServiceModel {
                base_us: 400,
                per_sample_us: 120,
            },
        ),
        ServeConfig {
            max_batch: 8,
            max_wait_us: 500,
            queue_cap: 16,
            max_inflight: 1,
        },
        clock.clone(),
    );
    // Exercise the cancellation path deterministically too.
    let a = cancelled_probe.submit(vec![0.0; ECHO_FEATURES], None);
    assert!(cancelled_probe.cancel(a), "queued request cancels");
    let mut probe_out = Vec::new();
    drain_sim(&mut cancelled_probe, &clock, &mut probe_out);
    assert_eq!(probe_out.len(), 1);
    assert!(matches!(
        probe_out[0].outcome,
        Outcome::Rejected {
            reason: RejectReason::Cancelled
        }
    ));

    let p = profile(&done, spec.horizon_us);
    let count = |r: RejectReason| {
        done.iter()
            .filter(|c| c.outcome == Outcome::Rejected { reason: r })
            .count()
    };
    println!(
        "smoke: {} offered = {} completed + {} queue_full + {} deadline_expired; \
         {} batches, p99 {}us",
        p.requests,
        p.completed,
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p99_us
    );
    // Pinned exact counts (see doc comment): the 1-deep pipeline tops
    // out near 5.9k rps (1360us per 8-batch), so an 8k rps offered load
    // forces both admission control and the deadline check to shed.
    let expect = (
        p.requests,
        p.completed,
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p50_us,
        p.p99_us,
    );
    println!("smoke signature: {expect:?}");
    assert_eq!(done.len(), p.requests, "every request resolves once");
    let ids: std::collections::BTreeSet<u64> = done.iter().map(|c| c.id).collect();
    assert_eq!(ids.len(), done.len(), "no duplicate resolutions");
    assert_eq!(
        expect, SMOKE_SIGNATURE,
        "deterministic serve smoke drifted — if the batching policy or \
         rng stream changed intentionally, re-pin SMOKE_SIGNATURE"
    );
    println!("serve smoke OK");
}

/// The exact outcome of the pinned [`smoke`] workload.
const SMOKE_SIGNATURE: (usize, usize, usize, usize, usize, u64, u64) =
    (1593, 1185, 81, 327, 149, 2770, 3349);

/// Pinned deterministic faulted workload: the [`smoke`] scenario armed
/// with the canonical fault stack. During the batch 40..60 outage
/// window the primary panics and flakes, the breaker opens, and the
/// cheaper fallback echo keeps serving; once probes find the primary
/// healthy again the breaker re-closes. A second no-fallback probe
/// server pins the `CircuitOpen` shed path. The counts are the exact
/// outcome for the canonical CI seed; other seeds still run the full
/// accountability checks.
fn fault_smoke(seed: u64) {
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: 500,
        queue_cap: 16,
        max_inflight: 1,
    };
    let clock = Arc::new(SimClock::new());
    let engine = EchoEngine::new(
        ECHO_FEATURES,
        10,
        ServiceModel {
            base_us: 400,
            per_sample_us: 120,
        },
    );
    let mut server = fault_stack(
        Server::new(engine, cfg, clock.clone()),
        seed,
        echo_fallback(),
    );
    let spec = LoadSpec {
        arrivals: ArrivalProcess::Uniform { rate_rps: 8_000.0 },
        horizon_us: 200_000,
        seed: 0x5E4E,
        deadline_us: Some(2_000),
    };
    let done = run_open_loop_sim(&mut server, &clock, &spec, |i| {
        vec![i as f32; ECHO_FEATURES]
    });
    let events = server.take_breaker_events();

    let p = profile(&done, spec.horizon_us);
    let count = |r: RejectReason| {
        done.iter()
            .filter(|c| c.outcome == Outcome::Rejected { reason: r })
            .count()
    };
    assert_eq!(done.len(), p.requests, "every request resolves once");
    let ids: std::collections::BTreeSet<u64> = done.iter().map(|c| c.id).collect();
    assert_eq!(ids.len(), done.len(), "no duplicate resolutions");
    // The degraded-mode arc: the burst must actually surface failures,
    // the breaker must trip on them, the fallback must absorb the open
    // window (so nothing sheds with CircuitOpen), and the probes must
    // re-close the breaker before the horizon ends.
    assert!(count(RejectReason::EngineFailure) > 0, "burst surfaced failures");
    assert!(p.completed_fallback > 0, "fallback served while open");
    assert_eq!(count(RejectReason::CircuitOpen), 0, "fallback absorbs the open breaker");
    assert_eq!(
        events.first().map(|e| (e.from, e.to)),
        Some((BreakerState::Closed, BreakerState::Open)),
        "breaker trips on the burst"
    );
    assert_eq!(
        events.last().map(|e| e.to),
        Some(BreakerState::Closed),
        "probes re-close the breaker after the burst"
    );
    assert_eq!(server.breaker_state(), Some(BreakerState::Closed));
    println!(
        "fault smoke: {} offered = {} completed ({} via fallback) + {} engine_failure \
         + {} queue_full + {} deadline_expired; {} batches, p99 {}us, {} breaker transitions",
        p.requests,
        p.completed,
        p.completed_fallback,
        count(RejectReason::EngineFailure),
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p99_us,
        events.len(),
    );
    let expect = (
        p.requests,
        p.completed,
        p.completed_fallback,
        count(RejectReason::EngineFailure),
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p99_us,
        events.len(),
    );
    println!("fault smoke signature: {expect:?}");
    if seed == FAULT_SMOKE_SEED {
        assert_eq!(
            expect, FAULT_SMOKE_SIGNATURE,
            "deterministic fault smoke drifted — if the fault schedule, retry \
             pricing, or breaker policy changed intentionally, re-pin \
             FAULT_SMOKE_SIGNATURE"
        );
    }

    // With no fallback wired, an open breaker must shed at the door:
    // all-panic faults fail the first min_samples batches, then every
    // later submit resolves CircuitOpen (open_us is far beyond the run).
    let mut shed = Server::new(
        echo_fallback(),
        ServeConfig {
            max_batch: 1,
            max_wait_us: 0,
            queue_cap: 16,
            max_inflight: 1,
        },
        clock.clone(),
    )
    .with_faults(FaultPlan::new(FaultSpec {
        panic_per_mille: 1_000,
        ..FaultSpec::none(seed)
    }))
    .with_breaker(BreakerConfig {
        window: 4,
        min_samples: 2,
        error_threshold_per_mille: 500,
        open_us: 1_000_000_000,
        probe_batches: 1,
    });
    let mut out = Vec::new();
    for i in 0..16 {
        clock.advance(1_000);
        shed.pump();
        shed.submit(vec![i as f32; ECHO_FEATURES], None);
        out.append(&mut shed.take_completions());
    }
    drain_sim(&mut shed, &clock, &mut out);
    let shed_count = |r: RejectReason| {
        out.iter()
            .filter(|c| c.outcome == Outcome::Rejected { reason: r })
            .count()
    };
    assert_eq!(out.len(), 16, "every probe request resolves once");
    assert_eq!(
        (
            shed_count(RejectReason::EngineFailure),
            shed_count(RejectReason::CircuitOpen)
        ),
        (2, 14),
        "breaker trips after min_samples failures, then sheds at the door"
    );
    assert_eq!(shed.breaker_state(), Some(BreakerState::Open));
    println!("serve fault smoke OK");
}

/// The canonical seed `scripts/ci.sh` passes to `--smoke --faults`.
const FAULT_SMOKE_SEED: u64 = 0xFA17;

/// The exact outcome of the pinned [`fault_smoke`] workload at
/// [`FAULT_SMOKE_SEED`]: (requests, completed, completed_fallback,
/// engine_failure, queue_full, deadline_expired, batches, p99_us,
/// breaker transitions).
const FAULT_SMOKE_SIGNATURE: (usize, usize, usize, usize, usize, usize, usize, u64, usize) =
    (1593, 1120, 212, 95, 67, 311, 153, 4160, 18);

fn main() {
    let o = parse();
    if o.faults.is_some() {
        sb_bench::silence_injected_panics();
    }
    if o.smoke {
        match o.faults {
            Some(seed) => fault_smoke(seed),
            None => smoke(),
        }
        return;
    }
    let done = match o.engine.as_str() {
        "echo" => run(
            &o,
            EchoEngine::new(
                ECHO_FEATURES,
                10,
                ServiceModel {
                    base_us: 400,
                    per_sample_us: 120,
                },
            ),
            ECHO_FEATURES,
            echo_fallback,
        ),
        "lenet" => {
            let (engine, sample_len) = lenet_engine(16.0);
            run(&o, engine, sample_len, || lenet_engine(64.0).0)
        }
        _ => usage(),
    };
    report(&done, o.horizon_ms * 1_000);
}
