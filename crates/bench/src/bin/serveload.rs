//! `serveload` — drive the `sb-serve` micro-batcher with a synthetic
//! load and print the resulting `ServeProfile`.
//!
//! ```text
//! serveload                         # virtual clock, echo engine, 2k rps
//! serveload --engine lenet --rps 8000 --horizon-ms 250
//! serveload --burst 8               # bursty arrivals
//! serveload --ramp 20000            # ramp from --rps up to 20k rps
//! serveload --closed 4 --think-us 500 --requests 64
//! serveload --wall                  # measure the real machine instead
//! serveload --smoke                 # deterministic CI smoke (asserts)
//! ```
//!
//! Default mode is the virtual clock: outcomes are a pure function of
//! the flags and `--seed`, bit-identical at any `SB_RUNTIME_THREADS`.
//! `--smoke` runs a pinned workload and asserts its exact outcome
//! counts, which is what `scripts/ci.sh` calls.

use sb_serve::{
    drain_sim, profile, run_closed_loop_sim, run_open_loop_sim, run_open_loop_wall,
    ArrivalProcess, BatchEngine, Completion, EchoEngine, InferEngine, LoadSpec, Outcome,
    RejectReason, ServeConfig, Server, ServiceModel, SimClock, WallClock,
};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serveload [--smoke] [--engine echo|lenet] [--rps R] [--burst N] [--ramp END_RPS]\n\
         \x20                [--horizon-ms M] [--deadline-us D] [--seed S] [--wall]\n\
         \x20                [--max-batch N] [--max-wait-us U] [--queue-cap N] [--inflight N]\n\
         \x20                [--closed CLIENTS] [--think-us U] [--requests N]"
    );
    std::process::exit(2);
}

struct Opts {
    smoke: bool,
    engine: String,
    rps: f64,
    burst: Option<usize>,
    ramp: Option<f64>,
    horizon_ms: u64,
    deadline_us: Option<u64>,
    seed: u64,
    wall: bool,
    cfg: ServeConfig,
    closed: Option<usize>,
    think_us: u64,
    requests: usize,
}

fn parse() -> Opts {
    let mut o = Opts {
        smoke: false,
        engine: "echo".to_string(),
        rps: 2_000.0,
        burst: None,
        ramp: None,
        horizon_ms: 500,
        deadline_us: Some(10_000),
        seed: 0x5E4E,
        wall: false,
        cfg: ServeConfig {
            max_batch: 8,
            max_wait_us: 1_000,
            queue_cap: 64,
            max_inflight: 2,
        },
        closed: None,
        think_us: 500,
        requests: 32,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => o.smoke = true,
            "--engine" => o.engine = next(&args, &mut i),
            "--rps" => o.rps = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--burst" => o.burst = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--ramp" => o.ramp = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--horizon-ms" => {
                o.horizon_ms = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--deadline-us" => {
                let d: u64 = next(&args, &mut i).parse().unwrap_or_else(|_| usage());
                o.deadline_us = (d > 0).then_some(d);
            }
            "--seed" => o.seed = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--wall" => o.wall = true,
            "--max-batch" => {
                o.cfg.max_batch = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-wait-us" => {
                o.cfg.max_wait_us = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--queue-cap" => {
                o.cfg.queue_cap = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--inflight" => {
                o.cfg.max_inflight = next(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--closed" => o.closed = Some(next(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--think-us" => o.think_us = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => o.requests = next(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    o
}

const ECHO_FEATURES: usize = 4;

/// The lenet engine: 16x global-magnitude LeNet-300-100, auto-compiled,
/// priced by effective MACs (2000 MACs per virtual µs, 200µs dispatch).
fn lenet_engine() -> (InferEngine, usize) {
    use shrinkbench::{GlobalMagnitude, Pruner};
    let mut rng = sb_tensor::Rng::seed_from(0xBE7C);
    let mut net = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    Pruner::default()
        .prune(&mut net, &GlobalMagnitude, 16.0, &mut rng)
        .expect("pruning a fresh network succeeds");
    let compiled = sb_infer::CompiledModel::compile(&net, &sb_infer::CompileOptions::default());
    let per_sample_us = (compiled.effective_macs() / 2_000).max(1);
    let service = ServiceModel {
        base_us: 200,
        per_sample_us,
    };
    (InferEngine::new(compiled, service), 256)
}

fn run<E: BatchEngine + 'static>(o: &Opts, engine: E, sample_len: usize) -> Vec<Completion> {
    let horizon_us = o.horizon_ms * 1_000;
    let arrivals = match (o.burst, o.ramp) {
        (Some(burst), _) => ArrivalProcess::Bursty {
            rate_rps: o.rps,
            burst,
        },
        (None, Some(end)) => ArrivalProcess::Ramp {
            start_rps: o.rps,
            end_rps: end,
        },
        (None, None) => ArrivalProcess::Uniform { rate_rps: o.rps },
    };
    let spec = LoadSpec {
        arrivals,
        horizon_us,
        seed: o.seed,
        deadline_us: o.deadline_us,
    };
    let mut input_rng = sb_rng::Rng::seed_from(o.seed ^ 0xA11CE);
    let make_input = move |_i: usize| -> Vec<f32> {
        (0..sample_len)
            .map(|_| input_rng.uniform(-1.0, 1.0))
            .collect()
    };
    if o.wall {
        let clock = Arc::new(WallClock::new());
        let mut server = Server::new(engine, o.cfg.clone(), clock.clone());
        run_open_loop_wall(&mut server, clock.as_ref(), &spec, make_input)
    } else {
        let clock = Arc::new(SimClock::new());
        let mut server = Server::new(engine, o.cfg.clone(), clock.clone());
        match o.closed {
            Some(clients) => run_closed_loop_sim(
                &mut server,
                &clock,
                clients,
                o.think_us,
                o.requests,
                o.deadline_us,
                make_input,
            ),
            None => run_open_loop_sim(&mut server, &clock, &spec, make_input),
        }
    }
}

fn report(done: &[Completion], horizon_us: u64) {
    let p = profile(done, horizon_us);
    println!("{}", sb_json::to_string_pretty(&p).expect("serialize"));
}

/// Pinned deterministic workload: echo engine, open-loop jittered
/// uniform 8000 rps for 200 virtual ms, batch<=8/500µs window/queue
/// 16/1 in flight, 2ms deadlines, seed 0x5E4E. The counts below are the
/// exact outcome of that pure function; any drift in the batcher,
/// queue, deadline checks, or rng stream changes them.
fn smoke() {
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: 500,
        queue_cap: 16,
        max_inflight: 1,
    };
    let clock = Arc::new(SimClock::new());
    let engine = EchoEngine::new(
        ECHO_FEATURES,
        10,
        ServiceModel {
            base_us: 400,
            per_sample_us: 120,
        },
    );
    let mut server = Server::new(engine, cfg, clock.clone());
    let spec = LoadSpec {
        arrivals: ArrivalProcess::Uniform { rate_rps: 8_000.0 },
        horizon_us: 200_000,
        seed: 0x5E4E,
        deadline_us: Some(2_000),
    };
    let done = run_open_loop_sim(&mut server, &clock, &spec, |i| {
        vec![i as f32; ECHO_FEATURES]
    });
    let mut cancelled_probe = Server::new(
        EchoEngine::new(
            ECHO_FEATURES,
            10,
            ServiceModel {
                base_us: 400,
                per_sample_us: 120,
            },
        ),
        ServeConfig {
            max_batch: 8,
            max_wait_us: 500,
            queue_cap: 16,
            max_inflight: 1,
        },
        clock.clone(),
    );
    // Exercise the cancellation path deterministically too.
    let a = cancelled_probe.submit(vec![0.0; ECHO_FEATURES], None);
    assert!(cancelled_probe.cancel(a), "queued request cancels");
    let mut probe_out = Vec::new();
    drain_sim(&mut cancelled_probe, &clock, &mut probe_out);
    assert_eq!(probe_out.len(), 1);
    assert!(matches!(
        probe_out[0].outcome,
        Outcome::Rejected {
            reason: RejectReason::Cancelled
        }
    ));

    let p = profile(&done, spec.horizon_us);
    let count = |r: RejectReason| {
        done.iter()
            .filter(|c| c.outcome == Outcome::Rejected { reason: r })
            .count()
    };
    println!(
        "smoke: {} offered = {} completed + {} queue_full + {} deadline_expired; \
         {} batches, p99 {}us",
        p.requests,
        p.completed,
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p99_us
    );
    // Pinned exact counts (see doc comment): the 1-deep pipeline tops
    // out near 5.9k rps (1360us per 8-batch), so an 8k rps offered load
    // forces both admission control and the deadline check to shed.
    let expect = (
        p.requests,
        p.completed,
        count(RejectReason::QueueFull),
        count(RejectReason::DeadlineExpired),
        p.batches,
        p.p50_us,
        p.p99_us,
    );
    println!("smoke signature: {expect:?}");
    assert_eq!(done.len(), p.requests, "every request resolves once");
    let ids: std::collections::BTreeSet<u64> = done.iter().map(|c| c.id).collect();
    assert_eq!(ids.len(), done.len(), "no duplicate resolutions");
    assert_eq!(
        expect, SMOKE_SIGNATURE,
        "deterministic serve smoke drifted — if the batching policy or \
         rng stream changed intentionally, re-pin SMOKE_SIGNATURE"
    );
    println!("serve smoke OK");
}

/// The exact outcome of the pinned [`smoke`] workload.
const SMOKE_SIGNATURE: (usize, usize, usize, usize, usize, u64, u64) =
    (1593, 1185, 81, 327, 149, 2770, 3349);

fn main() {
    let o = parse();
    if o.smoke {
        smoke();
        return;
    }
    let done = match o.engine.as_str() {
        "echo" => run(
            &o,
            EchoEngine::new(
                ECHO_FEATURES,
                10,
                ServiceModel {
                    base_us: 400,
                    per_sample_us: 120,
                },
            ),
            ECHO_FEATURES,
        ),
        "lenet" => {
            let (engine, sample_len) = lenet_engine();
            run(&o, engine, sample_len)
        }
        _ => usage(),
    };
    report(&done, o.horizon_ms * 1_000);
}
