//! `expfig` — regenerate any table or figure of the paper.
//!
//! ```text
//! expfig list                     # show every artifact id
//! expfig table1                   # Table 1 from the embedded corpus
//! expfig fig7 --scale quick       # run the backing experiments, small
//! expfig all --scale standard     # everything (the committed results)
//! ```

use sb_bench::configs::Scale;
use sb_bench::figures::{
    ablation_finetune, ablation_multi, ablation_pair, checklist_artifact, experiment_figure, fig1,
    fig2, fig3, fig4, fig5, fig8, hygiene, metrics_ambiguity, multi_model_fairness,
    serving_latency, table1,
    OutputPaths,
};

const ARTIFACTS: &[(&str, &str)] = &[
    ("table1", "Table 1: (dataset, architecture) pairs used by ≥4 papers"),
    ("fig1", "Figure 1: pruned models vs architecture families"),
    ("fig2", "Figure 2: comparison-graph histograms"),
    ("fig3", "Figure 3: fragmentation of self-reported results"),
    ("fig4", "Figure 4: pairs-per-paper and points-per-curve histograms"),
    ("fig5", "Figure 5: fine-tuning variation vs method variation"),
    ("fig6", "Figure 6: ResNet-18 ImageNet-like, accuracy vs compression AND speedup"),
    ("fig7", "Figure 7: CIFAR-VGG and ResNet-56, five strategies, 3 seeds"),
    ("fig8", "Figure 8: Weights A vs Weights B pitfall"),
    ("fig9", "Figure 9: CIFAR-VGG accuracy vs compression (appendix)"),
    ("fig10", "Figure 10: CIFAR-VGG accuracy vs speedup (appendix)"),
    ("fig11", "Figure 11: ResNet-20 accuracy vs compression (appendix)"),
    ("fig12", "Figure 12: ResNet-20 accuracy vs speedup (appendix)"),
    ("fig13", "Figure 13: ResNet-56 accuracy vs compression (appendix)"),
    ("fig14", "Figure 14: ResNet-56 accuracy vs speedup (appendix)"),
    ("fig15", "Figure 15: ResNet-110 accuracy vs compression (appendix)"),
    ("fig16", "Figure 16: ResNet-110 accuracy vs speedup (appendix)"),
    ("fig17", "Figure 17: ResNet-18 ImageNet-like accuracy vs compression (appendix)"),
    ("fig18", "Figure 18: ResNet-18 ImageNet-like accuracy vs speedup (appendix)"),
    ("ablation-finetune", "Ablation: accuracy before vs after fine-tuning"),
    ("ablation-schedule", "Ablation: one-shot vs iterative pruning schedule"),
    ("ablation-classifier", "Ablation: pruning vs protecting the classifier layer"),
    ("ablation-structured", "Ablation: structured (filter) vs unstructured pruning"),
    ("ablation-random-layerwise", "Ablation: global vs layerwise-proportional random pruning"),
    ("ablation-weight-policy", "Ablation: fine-tune vs lottery-ticket rewind vs reinitialize"),
    ("ablation-architecture", "Ablation: two models both called \"CIFAR-VGG\" give different curves (Section 5.1)"),
    ("prune-at-init", "Extension: pruning at initialization (SNIP-style, Section 2.2)"),
    ("metrics-ambiguity", "Section 5.2: one model under every metric convention"),
    ("hygiene", "Sections 4.3-6: reporting hygiene of the 37 reporting papers"),
    ("realized-speedup", "Section 2.1: realized (CSR wall-clock) vs theoretical speedup"),
    ("inference-speedup", "Section 2.1/Fig 6: theoretical vs realized speedup of compiled models"),
    ("latency-attribution", "Trace: realized inference latency by layer x kernel format"),
    ("format-crossover", "Tentpole: realized wall-clock of dense/CSR/BSR/bitmap kernels across sparsity ratios"),
    ("sparsity-profile", "Mechanism: per-layer sparsity under Global vs Layerwise ranking"),
    ("serving-latency", "Serving: pruned vs dense tail latency across offered loads (sb-serve, virtual clock)"),
    ("fault-recovery", "Robustness: seeded outage, breaker trip, pruned-model fallback, probe re-close (sb-serve + sb-fault)"),
    ("multi-model-fairness", "Scheduling: WFQ shares, priority classes, and deadlines across tenants (sb-sched, virtual clock)"),
    ("checklist", "Appendix B checklist applied to this suite"),
    ("mnist-saturation", "Motivation: MNIST-like results saturate (Section 4.2)"),
];

fn usage() -> ! {
    eprintln!("usage: expfig <artifact|all|list> [--scale quick|standard] [--results DIR] [--figures DIR]");
    eprintln!("run `expfig list` to see all artifact ids");
    std::process::exit(2);
}

fn main() {
    // fault-recovery injects engine panics on purpose; keep its stderr
    // clean without hiding any real panic.
    sb_bench::silence_injected_panics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut target: Option<String> = None;
    let mut scale = Scale::Standard;
    let mut paths = OutputPaths::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--results" => {
                i += 1;
                paths.results = args.get(i).map(Into::into).unwrap_or_else(|| usage());
            }
            "--figures" => {
                i += 1;
                paths.figures = args.get(i).map(Into::into).unwrap_or_else(|| usage());
            }
            flag if flag.starts_with("--") => usage(),
            id => {
                if target.is_some() {
                    usage();
                }
                target = Some(id.to_string());
            }
        }
        i += 1;
    }
    let target = target.unwrap_or_else(|| usage());

    match target.as_str() {
        "list" => {
            for (id, desc) in ARTIFACTS {
                println!("{id:<26} {desc}");
            }
        }
        "all" => {
            for (id, _) in ARTIFACTS {
                eprintln!("==> {id}");
                render(id, scale, &paths);
            }
        }
        id if ARTIFACTS.iter().any(|(a, _)| a == &id) => {
            print!("{}", render_to_string(id, scale, &paths));
        }
        _ => {
            eprintln!("unknown artifact {target:?}");
            usage();
        }
    }
}

fn render(id: &str, scale: Scale, paths: &OutputPaths) {
    let text = render_to_string(id, scale, paths);
    println!("{text}");
}

fn render_to_string(id: &str, scale: Scale, paths: &OutputPaths) -> String {
    match id {
        "table1" => table1(paths),
        "fig1" => fig1(paths),
        "fig2" => fig2(paths),
        "fig3" => fig3(paths),
        "fig4" => fig4(paths),
        "fig5" => fig5(paths),
        "fig6" => experiment_figure(
            "fig6",
            "Figure 6: Top-1 accuracy for ResNet-18 on ImageNet-like data, for several compression ratios and their corresponding theoretical speedups.",
            &[
                ("imagenet-resnet18", "compression", "ResNet-18 — accuracy vs compression"),
                ("imagenet-resnet18", "speedup", "ResNet-18 — accuracy vs theoretical speedup"),
            ],
            scale,
            paths,
        ),
        "fig7" => experiment_figure(
            "fig7",
            "Figure 7: Top-1 accuracy on CIFAR-like data for several compression ratios (5 strategies, mean ± std over seeds).",
            &[
                ("cifar-vgg", "compression", "CIFAR-VGG"),
                ("resnet56", "compression", "ResNet-56"),
            ],
            scale,
            paths,
        ),
        "fig8" => fig8(scale, paths),
        "fig9" => experiment_figure(
            "fig9",
            "Figure 9: Accuracy for several levels of compression for CIFAR-VGG on CIFAR-like data.",
            &[("cifar-vgg", "compression", "CIFAR-VGG — accuracy vs compression")],
            scale,
            paths,
        ),
        "fig10" => experiment_figure(
            "fig10",
            "Figure 10: Accuracy vs theoretical speedup for CIFAR-VGG on CIFAR-like data.",
            &[("cifar-vgg", "speedup", "CIFAR-VGG — accuracy vs speedup")],
            scale,
            paths,
        ),
        "fig11" => experiment_figure(
            "fig11",
            "Figure 11: Accuracy for several levels of compression for ResNet-20 on CIFAR-like data.",
            &[("resnet20", "compression", "ResNet-20 — accuracy vs compression")],
            scale,
            paths,
        ),
        "fig12" => experiment_figure(
            "fig12",
            "Figure 12: Accuracy vs theoretical speedup for ResNet-20 on CIFAR-like data.",
            &[("resnet20", "speedup", "ResNet-20 — accuracy vs speedup")],
            scale,
            paths,
        ),
        "fig13" => experiment_figure(
            "fig13",
            "Figure 13: Accuracy for several levels of compression for ResNet-56 on CIFAR-like data.",
            &[("resnet56", "compression", "ResNet-56 — accuracy vs compression")],
            scale,
            paths,
        ),
        "fig14" => experiment_figure(
            "fig14",
            "Figure 14: Accuracy vs theoretical speedup for ResNet-56 on CIFAR-like data.",
            &[("resnet56", "speedup", "ResNet-56 — accuracy vs speedup")],
            scale,
            paths,
        ),
        "fig15" => experiment_figure(
            "fig15",
            "Figure 15: Accuracy for several levels of compression for ResNet-110 on CIFAR-like data.",
            &[("resnet110", "compression", "ResNet-110 — accuracy vs compression")],
            scale,
            paths,
        ),
        "fig16" => experiment_figure(
            "fig16",
            "Figure 16: Accuracy vs theoretical speedup for ResNet-110 on CIFAR-like data.",
            &[("resnet110", "speedup", "ResNet-110 — accuracy vs speedup")],
            scale,
            paths,
        ),
        "fig17" => experiment_figure(
            "fig17",
            "Figure 17: Accuracy for several levels of compression for ResNet-18 on ImageNet-like data.",
            &[("imagenet-resnet18", "compression", "ResNet-18 — accuracy vs compression")],
            scale,
            paths,
        ),
        "fig18" => experiment_figure(
            "fig18",
            "Figure 18: Accuracy vs theoretical speedup for ResNet-18 on ImageNet-like data.",
            &[("imagenet-resnet18", "speedup", "ResNet-18 — accuracy vs speedup")],
            scale,
            paths,
        ),
        "ablation-finetune" => ablation_finetune(scale, paths),
        "ablation-schedule" => ablation_pair(
            "ablation-schedule",
            "Ablation: one-shot vs iterative (3-step geometric) pruning schedule, Global Magnitude on ResNet-20.",
            "ablation-schedule-oneshot",
            "ablation-schedule-iterative",
            scale,
            paths,
        ),
        "ablation-classifier" => ablation_pair(
            "ablation-classifier",
            "Ablation: excluding vs including the classifier layer in pruning (paper Appendix C.1), Global Magnitude on CIFAR-VGG.",
            "ablation-classifier-excluded",
            "ablation-classifier-included",
            scale,
            paths,
        ),
        "ablation-structured" => experiment_figure(
            "ablation-structured",
            "Ablation: structured filter pruning vs unstructured magnitude pruning (LeNet-5): structured converts compression into speedup more directly but costs accuracy.",
            &[
                ("ablation-structured", "compression", "LeNet-5 — accuracy vs compression"),
                ("ablation-structured", "speedup", "LeNet-5 — accuracy vs speedup"),
            ],
            scale,
            paths,
        ),
        "ablation-weight-policy" => ablation_multi(
            "ablation-weight-policy",
            "Ablation (Section 2.3 fine-tuning axis / Section 3.2): continuing from trained weights vs rewinding survivors to initialization (lottery ticket) vs reinitializing, with the pruning mask and training budget held constant. Global Magnitude on CIFAR-VGG.",
            &["ablation-policy-finetune", "ablation-policy-rewind", "ablation-policy-reinit"],
            scale,
            paths,
        ),
        "ablation-random-layerwise" => experiment_figure(
            "ablation-random-layerwise",
            "Ablation: global random pruning vs layerwise-proportional random pruning (Appendix B checklist baselines).",
            &[("ablation-random-layerwise", "compression", "ResNet-20 — random baselines")],
            scale,
            paths,
        ),
        "ablation-architecture" => ablation_pair(
            "ablation-architecture",
            "Ablation (Section 5.1, architecture ambiguity): the same pruning methods on two models both reported as \"CIFAR-VGG\" — the base model and a dropout/smaller-head variant — yield different curves.",
            "ablation-arch-base",
            "ablation-arch-variant",
            scale,
            paths,
        ),
        "prune-at-init" => experiment_figure(
            "prune-at-init",
            "Extension (Section 2.2): pruning at initialization. The network is pruned before any training (SNIP-style gradient scores vs magnitude vs random on a random init), then trained with the mask fixed.",
            &[("prune-at-init", "compression", "CIFAR-VGG pruned at initialization")],
            scale,
            paths,
        ),
        "metrics-ambiguity" => metrics_ambiguity(paths),
        "hygiene" => hygiene(paths),
        "realized-speedup" => sb_bench::figures::realized_speedup(paths),
        "inference-speedup" => sb_bench::figures::inference_speedup(scale, paths),
        "latency-attribution" => sb_bench::figures::latency_attribution(paths),
        "format-crossover" => sb_bench::figures::format_crossover(paths),
        "sparsity-profile" => sb_bench::figures::sparsity_profile(paths),
        "serving-latency" => serving_latency(paths),
        "fault-recovery" => sb_bench::figures::fault_recovery(paths),
        "multi-model-fairness" => multi_model_fairness(paths),
        "checklist" => checklist_artifact(scale, paths),
        "mnist-saturation" => experiment_figure(
            "mnist-saturation",
            "Motivation (Section 4.2): on MNIST-like data LeNet-300-100 stays near ceiling across compression ratios, so methods are indistinguishable.",
            &[("mnist-saturation", "compression", "LeNet-300-100 on MNIST-like")],
            scale,
            paths,
        ),
        _ => unreachable!("validated in main"),
    }
}
