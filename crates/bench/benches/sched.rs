//! Multi-model scheduling benchmarks, three parts:
//!
//! 1. **Wall-clock sweep** — a 16x-pruned CSR LeNet-300-100
//!    (interactive, weight 2) and its forced-dense counterpart (batch
//!    class, weight 1) share one pool behind the `sb-sched` WFQ
//!    scheduler. The interactive tenant is held at a fixed, comfortable
//!    rate while the dense tenant sweeps across its measured saturation
//!    knee: the point is that the pruned tenant's p99 stays inside its
//!    deadline at every sweep point, even when the dense tenant is 4x
//!    overloaded. This is the multi-tenant counterpart of
//!    `benches/serve.rs`: what does pruning buy a tenant *under
//!    contention*?
//!
//!    One structural caveat the sweep is calibrated around: completions
//!    are harvested strictly in launch order (that discipline is what
//!    makes the SimClock runs bit-identical across thread counts), so a
//!    cheap interactive batch launched behind a dense one frees its
//!    inflight slot only when the dense batch does. The interactive
//!    tenant's service ceiling is therefore `max_batch` per dense batch
//!    latency — ~15k rps here, far above the 4k rps it is offered.
//! 2. **Autotuner demo** — deterministic SimClock replay of a bursty
//!    two-tenant workload against a 5ms p99 target: the naive shared
//!    batching policy (batch 1, no window) misses the target, the
//!    autotuned per-tenant policies meet it. Asserted, because it is a
//!    pure function of the workload — if this fails the tuner broke.
//! 3. **Quota demo** — deterministic SimClock replay of the interactive
//!    pruned tenant sharing the pool with a dense batch tenant offered
//!    10x its admission-quota rate. With the quota off the dense queue
//!    pins at its cap, every dense launch is a full `max_batch`-128
//!    batch (~7ms), and the interactive tenant's p99 blows through the
//!    5ms target waiting out those batches; with the quota on the dense
//!    backlog stays shallow and the same interactive load lands inside
//!    the target. Asserted in both directions, same rationale as the
//!    tuner demo.
//!
//! Results are written to `BENCH_sched.json` at the repository root so
//! the numbers travel with the code.

use sb_json::{Json, ToJson};
use sb_metrics::median_latency_us;
use sb_sched::{
    autotune, merged_arrivals, profile, simulate, MultiServer, Priority, SchedConfig, TenantLoad,
    TenantPolicy, TenantQuota, TenantSpec, TuneSpec,
};
use sb_serve::{ArrivalProcess, BatchEngine, Clock, InferEngine, ServiceModel, WallClock};
use std::sync::Arc;

const MACS_PER_US: u64 = 2_000;
const BASE_US: u64 = 200;
const FEATURES: usize = 256;
const MAX_BATCH: usize = 16;
const TARGET_P99_US: u64 = 5_000;
const WALL_HORIZON_US: u64 = 200_000;
const SIM_HORIZON_US: u64 = 300_000;

fn lenet_engine(ratio: f64, format: Option<sb_infer::ExecFormat>) -> InferEngine {
    use shrinkbench::{GlobalMagnitude, Pruner};
    let mut rng = sb_tensor::Rng::seed_from(0xBE7C);
    let mut net = sb_nn::models::lenet_300_100(FEATURES, 10, &mut rng);
    if ratio > 1.0 {
        Pruner::default()
            .prune(&mut net, &GlobalMagnitude, ratio, &mut rng)
            .expect("pruning a fresh network succeeds");
    }
    let compiled = sb_infer::CompiledModel::compile(
        &net,
        &sb_infer::CompileOptions {
            force_format: format,
            ..sb_infer::CompileOptions::default()
        },
    );
    let per_sample_us = (compiled.effective_macs() / MACS_PER_US).max(1);
    InferEngine::new(
        compiled,
        ServiceModel {
            base_us: BASE_US,
            per_sample_us,
        },
    )
}

fn sample(tenant: usize, i: usize) -> Vec<f32> {
    let mut rng = sb_rng::Rng::seed_from(0xA11CE ^ ((tenant as u64) << 40) ^ i as u64);
    (0..FEATURES).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(
            "csr-16x",
            2,
            Priority::Interactive,
            TenantPolicy {
                max_batch: MAX_BATCH,
                max_wait_us: 200,
                queue_cap: 128,
                quota: None,
            },
            Arc::new(lenet_engine(16.0, Some(sb_infer::ExecFormat::Csr))),
        ),
        TenantSpec::new(
            "dense",
            1,
            Priority::Batch,
            TenantPolicy {
                max_batch: MAX_BATCH,
                max_wait_us: 200,
                queue_cap: 128,
                quota: None,
            },
            Arc::new(lenet_engine(1.0, Some(sb_infer::ExecFormat::Dense))),
        ),
    ]
}

/// Median wall-clock of one full batch through the engine, µs.
fn batch_latency_us(engine: &dyn BatchEngine) -> f64 {
    let inputs: Vec<f32> = (0..MAX_BATCH).flat_map(|i| sample(0, i)).collect();
    median_latency_us(9, &mut || {
        std::hint::black_box(engine.run_batch(&inputs, MAX_BATCH));
    })
}

/// Open-loop wall-clock driver for the multi-tenant scheduler: spins
/// until each merged arrival is due, submits, and drains.
fn run_multi_wall(
    ms: &mut MultiServer,
    clock: &dyn Clock,
    loads: &[TenantLoad],
    horizon_us: u64,
) -> (Vec<sb_sched::SchedCompletion>, u64) {
    let merged = merged_arrivals(loads, horizon_us);
    let epoch = clock.now_us();
    let mut out = Vec::new();
    for &(at, tenant, i) in &merged {
        let due = epoch + at;
        while clock.now_us() < due {
            ms.pump();
            // Yield rather than spin: on a small machine a spinning
            // driver holds the core for whole scheduler timeslices and
            // starves the pool workers executing the batches.
            std::thread::yield_now();
        }
        ms.submit(tenant, sample(tenant, i), loads[tenant].deadline_us.map(|d| due + d));
        out.append(&mut ms.take_completions());
    }
    out.append(&mut ms.drain_wall());
    // Span of the run: overload keeps completing backlog after the
    // offered window closes; crediting it against the nominal horizon
    // would inflate throughput.
    let elapsed = out
        .iter()
        .map(|c| c.completion.done_us.saturating_sub(epoch))
        .max()
        .unwrap_or(horizon_us)
        .max(horizon_us);
    (out, elapsed)
}

/// Fixed offered rate for the interactive pruned tenant, well under its
/// harvest-order service ceiling (see module docs).
const INTERACTIVE_RPS: f64 = 4_000.0;

fn wall_sweep() -> Vec<Json> {
    let probe = tenants();
    let dense_batch_us = batch_latency_us(probe[1].engine.as_ref());
    let csr_batch_us = batch_latency_us(probe[0].engine.as_ref());
    // With the interactive tenant interleaving on the second slot, the
    // dense tenant effectively owns one inflight slot: its saturation
    // knee is ~ one full batch per measured batch latency.
    let dense_cap_rps = MAX_BATCH as f64 * 1.0e6 / dense_batch_us;
    eprintln!(
        "calibration: dense batch {dense_batch_us:.0}us, csr batch {csr_batch_us:.0}us, \
         dense knee ~{dense_cap_rps:.0} rps, interactive fixed at {INTERACTIVE_RPS:.0} rps"
    );
    let mut points = Vec::new();
    for &frac in &[0.25f64, 1.0, 4.0] {
        let dense_rps = dense_cap_rps * frac;
        let loads = vec![
            TenantLoad {
                arrivals: ArrivalProcess::Uniform {
                    rate_rps: INTERACTIVE_RPS,
                },
                seed: 0x5C4E,
                deadline_us: Some(TARGET_P99_US),
            },
            TenantLoad {
                arrivals: ArrivalProcess::Uniform { rate_rps: dense_rps },
                seed: 0x5C4F,
                deadline_us: None,
            },
        ];
        let clock = Arc::new(WallClock::new());
        let mut ms = MultiServer::new(tenants(), SchedConfig { max_inflight: 2 }, clock.clone());
        let (done, elapsed) = run_multi_wall(&mut ms, clock.as_ref(), &loads, WALL_HORIZON_US);
        let picks = ms.take_picks();
        let p = profile(&ms, &done, &picks, elapsed);
        for t in &p.tenants {
            println!(
                "{:>8} @ dense {:>7.0} rps ({:>4.2}x knee): completed {:>6}  shed {:>5.1}%  \
                 p99 {:>6}us  cost share {:.3} (weight {:.3})",
                t.name,
                dense_rps,
                frac,
                t.serve.completed,
                100.0 * t.serve.rejection_rate(),
                t.serve.p99_us,
                t.cost_share,
                t.weight_share
            );
        }
        points.push(Json::Obj(vec![
            ("dense_offered_rps".to_string(), Json::Float(dense_rps)),
            ("dense_knee_frac".to_string(), Json::Float(frac)),
            (
                "interactive_offered_rps".to_string(),
                Json::Float(INTERACTIVE_RPS),
            ),
            ("profile".to_string(), p.to_json()),
        ]));
    }
    points
}

fn tune_demo() -> Json {
    let base = tenants();
    let loads = vec![
        TenantLoad {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 6_000.0,
                burst: 16,
            },
            seed: 0xB0057,
            deadline_us: None,
        },
        TenantLoad {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 1_500.0,
                burst: 8,
            },
            seed: 0xB0058,
            deadline_us: None,
        },
    ];
    let cfg = SchedConfig { max_inflight: 2 };
    // The naive shared policy: no batching at all, every tenant alike.
    let naive = TenantPolicy {
        max_batch: 1,
        max_wait_us: 0,
        queue_cap: 256,
        quota: None,
    };
    let base: Vec<TenantSpec> = base
        .into_iter()
        .map(|mut t| {
            t.policy = naive;
            t
        })
        .collect();
    let sample_fn = |t: usize, i: usize| sample(t, i);
    let naive_profile = simulate(
        &base,
        cfg,
        &loads,
        SIM_HORIZON_US,
        &[naive, naive],
        &sample_fn,
    );
    let spec = TuneSpec {
        target_p99_us: TARGET_P99_US,
        ..TuneSpec::default()
    };
    let tuned = autotune(&base, cfg, &loads, SIM_HORIZON_US, &spec, &sample_fn);
    for (i, t) in base.iter().enumerate() {
        println!(
            "autotune {:>8}: p99 {:>7}us (naive) -> {:>6}us (tuned, policy {:?})",
            t.name,
            naive_profile.tenants[i].serve.p99_us,
            tuned.profile.tenants[i].serve.p99_us,
            tuned.policies[i]
        );
    }
    // Pure SimClock functions: these are correctness assertions, not
    // wall-clock luck. The burst arrives faster than base_us-dominated
    // single-sample launches can drain it, so the shared no-batching
    // policy must blow the target; the tuner must recover it.
    assert!(
        naive_profile
            .tenants
            .iter()
            .any(|t| t.serve.completed == 0 || t.serve.p99_us > TARGET_P99_US),
        "naive shared policy unexpectedly meets the {TARGET_P99_US}us target"
    );
    assert!(
        tuned
            .profile
            .tenants
            .iter()
            .all(|t| t.serve.completed > 0 && t.serve.p99_us <= TARGET_P99_US),
        "tuned policies miss the {TARGET_P99_US}us p99 target: {:?}",
        tuned
            .profile
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.serve.p99_us))
            .collect::<Vec<_>>()
    );
    println!("autotune: {} simulator replays", tuned.sims);
    Json::Obj(vec![
        ("target_p99_us".to_string(), Json::Int(TARGET_P99_US as i128)),
        ("sims".to_string(), Json::Int(tuned.sims as i128)),
        ("naive_profile".to_string(), naive_profile.to_json()),
        (
            "tuned_policies".to_string(),
            Json::Arr(tuned.policies.iter().map(ToJson::to_json).collect()),
        ),
        ("tuned_profile".to_string(), tuned.profile.to_json()),
    ])
}

/// Dense batch size for the quota demo: one full batch costs
/// `BASE_US + 128 * per_sample` ≈ 7ms, comfortably past the 5ms target,
/// so an interactive request stranded behind one provably misses.
const QUOTA_DENSE_BATCH: usize = 128;
/// The admission quota under test: the dense tenant may sustain 2k rps
/// with a 16-request burst allowance, an order of magnitude below its
/// offered load.
const QUOTA_DENSE: TenantQuota = TenantQuota {
    rate_per_s: 2_000,
    burst: 16,
};

fn quota_demo() -> Json {
    let specs = vec![
        TenantSpec::new(
            "csr-16x",
            2,
            Priority::Interactive,
            TenantPolicy {
                max_batch: MAX_BATCH,
                max_wait_us: 200,
                queue_cap: 128,
                quota: None,
            },
            Arc::new(lenet_engine(16.0, Some(sb_infer::ExecFormat::Csr))),
        ),
        TenantSpec::new(
            "dense",
            1,
            Priority::Batch,
            TenantPolicy {
                max_batch: QUOTA_DENSE_BATCH,
                max_wait_us: 500,
                queue_cap: 256,
                quota: None,
            },
            Arc::new(lenet_engine(1.0, Some(sb_infer::ExecFormat::Dense))),
        ),
    ];
    let loads = vec![
        // Deliberately deadline-free: a deadline would shed the stranded
        // requests and flatter the quota-off p99. The point is to
        // *measure* the latency the interactive tenant actually eats.
        TenantLoad {
            arrivals: ArrivalProcess::Uniform { rate_rps: 2_000.0 },
            seed: 0x0D0A,
            deadline_us: None,
        },
        TenantLoad {
            arrivals: ArrivalProcess::Bursty {
                rate_rps: 10.0 * QUOTA_DENSE.rate_per_s as f64,
                burst: QUOTA_DENSE_BATCH,
            },
            seed: 0x0D0B,
            deadline_us: None,
        },
    ];
    let cfg = SchedConfig { max_inflight: 2 };
    let sample_fn = |t: usize, i: usize| sample(t, i);
    let off = [specs[0].policy, specs[1].policy];
    let on = [
        off[0],
        TenantPolicy {
            quota: Some(QUOTA_DENSE),
            ..off[1]
        },
    ];
    let without = simulate(&specs, cfg, &loads, SIM_HORIZON_US, &off, &sample_fn);
    let with_quota = simulate(&specs, cfg, &loads, SIM_HORIZON_US, &on, &sample_fn);
    for (tag, p) in [("off", &without), ("on", &with_quota)] {
        for t in &p.tenants {
            println!(
                "quota {tag:>3} {:>8}: completed {:>5}  quota shed {:>5}  p99 {:>7}us",
                t.name, t.serve.completed, t.serve.rejected.quota_exceeded, t.serve.p99_us
            );
        }
    }
    // Pure SimClock functions again: the flip across the quota knob is
    // a property of the scheduler, not wall-clock luck.
    let miss = &without.tenants[0].serve;
    assert!(
        miss.completed > 0 && miss.p99_us > TARGET_P99_US,
        "interactive p99 {}us unexpectedly meets the {TARGET_P99_US}us target with quotas off",
        miss.p99_us
    );
    let hit = &with_quota.tenants[0].serve;
    assert!(
        hit.completed > 0 && hit.p99_us <= TARGET_P99_US,
        "interactive p99 {}us misses the {TARGET_P99_US}us target with the dense quota on",
        hit.p99_us
    );
    assert!(
        with_quota.tenants[1].serve.rejected.quota_exceeded > 0,
        "the dense tenant's quota never shed anything"
    );
    Json::Obj(vec![
        ("target_p99_us".to_string(), Json::Int(TARGET_P99_US as i128)),
        ("dense_quota".to_string(), QUOTA_DENSE.to_json()),
        ("quota_off".to_string(), without.to_json()),
        ("quota_on".to_string(), with_quota.to_json()),
    ])
}

fn main() {
    let points = wall_sweep();
    let tune = tune_demo();
    let quota = quota_demo();
    let doc = Json::Obj(vec![
        (
            "workload".to_string(),
            Json::Str(format!(
                "lenet_300_100 fc{FEATURES}: 16x CSR (interactive, w2) vs forced-dense \
                 (batch, w1) behind sb-sched WFQ, max_batch {MAX_BATCH}, 2 in flight; \
                 wall sweep holds the interactive tenant at {INTERACTIVE_RPS} rps and \
                 sweeps the dense tenant across its saturation knee over a \
                 {WALL_HORIZON_US}us horizon; autotune demo {SIM_HORIZON_US}us SimClock \
                 horizon, bursty arrivals, {TARGET_P99_US}us p99 target"
            )),
        ),
        ("wall_sweep".to_string(), Json::Arr(points)),
        ("autotune".to_string(), tune),
        ("quota".to_string(), quota),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sched.json");
    std::fs::write(&out, sb_json::to_string_pretty(&doc).expect("serialize") + "\n")
        .expect("write BENCH_sched.json");
    eprintln!("wrote {}", out.display());
}
