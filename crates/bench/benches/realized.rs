//! Realized vs theoretical speedup: wall-clock of the actual CSR sparse
//! kernel against the dense matmul, across sparsity levels.
//!
//! The paper's "theoretical speedup" metric assumes unstructured sparsity
//! is exploited perfectly; Section 2.1 warns it is not. These benchmarks
//! measure how much of the theoretical speedup the real kernel delivers.

use sb_bench::timer::Timer;
use sb_tensor::{Rng, SparseMatrix, Tensor};

fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[rows, cols], |_| {
        if rng.coin(density) {
            rng.normal()
        } else {
            0.0
        }
    })
}

fn bench_realized_speedup(c: &mut Timer) {
    let mut group = c.benchmark_group("realized-speedup-256x256xb32");
    let mut rng = Rng::seed_from(0);
    let x = Tensor::rand_normal(&[256, 32], 0.0, 1.0, &mut rng);
    let dense_w = random_sparse(256, 256, 1.0, 1);
    group.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(dense_w.matmul(&x)))
    });
    for density in [0.5, 0.25, 0.125, 0.03125] {
        let w = random_sparse(256, 256, density, 2);
        let sparse = SparseMatrix::from_dense(&w);
        group.bench_function(format!("csr-density-{density}"), |b| {
            b.iter(|| std::hint::black_box(sparse.matmul_dense(&x)))
        });
    }
    group.finish();
}

fn main() {
    let mut timer = Timer::new();
    bench_realized_speedup(&mut timer);
    timer.finish();
}
