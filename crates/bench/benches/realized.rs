//! Realized vs theoretical speedup: wall-clock of the actual CSR sparse
//! kernel against the dense matmul, across sparsity levels — and of whole
//! compiled models (`sb-infer`) against their dense-compiled baselines.
//!
//! The paper's "theoretical speedup" metric assumes unstructured sparsity
//! is exploited perfectly; Section 2.1 warns it is not. These benchmarks
//! measure how much of the theoretical speedup the real kernel delivers.
//! All measurements are written to `BENCH_infer.json` at the repository
//! root so the numbers travel with the code.

use sb_bench::timer::Timer;
use sb_infer::formats::{BitmapMatrix, BsrMatrix, BSR_BLOCK_W};
use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
use sb_tensor::{Rng, SparseMatrix, Tensor};
use shrinkbench::structured::FilterNorm;
use shrinkbench::{GlobalMagnitude, Pruner};

fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[rows, cols], |_| {
        if rng.coin(density) {
            rng.normal()
        } else {
            0.0
        }
    })
}

fn bench_realized_speedup(c: &mut Timer) {
    let mut group = c.benchmark_group("realized-speedup-256x256xb32");
    let mut rng = Rng::seed_from(0);
    let x = Tensor::rand_normal(&[256, 32], 0.0, 1.0, &mut rng);
    let dense_w = random_sparse(256, 256, 1.0, 1);
    group.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(dense_w.matmul(&x)))
    });
    for density in [0.5, 0.25, 0.125, 0.03125] {
        let w = random_sparse(256, 256, density, 2);
        let sparse = SparseMatrix::from_dense(&w);
        group.bench_function(format!("csr-density-{density}"), |b| {
            b.iter(|| std::hint::black_box(sparse.matmul_dense(&x)))
        });
    }
    group.finish();
}

/// Single-threaded per-format row kernels on conv2-shaped data (im2col
/// rows of a late conv layer: short rows, weight reused across every
/// spatial position). These are the measurements behind the cost-model
/// constants in `crates/infer/src/compile.rs`: divide each format's
/// ns/iter by its executed lanes to get the per-lane cost relative to
/// the dense stream. The dense and CSR loops replicate the (private)
/// `sb-infer` exec kernels exactly.
fn bench_conv_row_kernels(c: &mut Timer) {
    let (out_f, in_cols, n_rows) = (16usize, 200usize, 512usize);
    let mut rng = Rng::seed_from(7);
    let x = Tensor::rand_normal(&[n_rows, in_cols], 0.0, 1.0, &mut rng);
    let bias = vec![0.1f32; out_f];
    let mut y = vec![0.0f32; n_rows * out_f];
    let mut group = c.benchmark_group("conv-row-kernels-16x200xr512");

    let dense_w = random_sparse(out_f, in_cols, 1.0, 8);
    group.bench_function("dense", |b| {
        b.iter(|| {
            let wd = dense_w.data();
            for (xr, yr) in x.data().chunks_exact(in_cols).zip(y.chunks_exact_mut(out_f)) {
                for (j, o) in yr.iter_mut().enumerate() {
                    let wr = &wd[j * in_cols..(j + 1) * in_cols];
                    let mut acc = 0.0f32;
                    for (&xv, &wv) in xr.iter().zip(wr) {
                        acc += xv * wv;
                    }
                    *o = acc + bias[j];
                }
            }
            std::hint::black_box(&y);
        })
    });
    for density in [0.5, 0.25, 0.125, 0.0625, 0.03125] {
        let w = random_sparse(out_f, in_cols, density, 9);
        let csr = SparseMatrix::from_dense(&w);
        let bsr = BsrMatrix::from_dense(&w, BSR_BLOCK_W);
        let bitmap = BitmapMatrix::from_dense(&w);
        group.bench_function(format!("csr-density-{density}"), |b| {
            b.iter(|| {
                for (xr, yr) in x.data().chunks_exact(in_cols).zip(y.chunks_exact_mut(out_f)) {
                    for (j, o) in yr.iter_mut().enumerate() {
                        let (cols, vals) = csr.row(j);
                        let mut acc = 0.0f32;
                        for (&ci, &v) in cols.iter().zip(vals) {
                            acc += v * xr[ci as usize];
                        }
                        *o = acc + bias[j];
                    }
                }
                std::hint::black_box(&y);
            })
        });
        group.bench_function(format!("bsr-density-{density}"), |b| {
            b.iter(|| {
                bsr.matmul_rows(x.data(), &bias, &mut y);
                std::hint::black_box(&y);
            })
        });
        group.bench_function(format!("bitmap-density-{density}"), |b| {
            b.iter(|| {
                bitmap.matmul_rows(x.data(), &bias, &mut y);
                std::hint::black_box(&y);
            })
        });
    }
    group.finish();
}

/// Compiles `net` twice — cost-model formats and forced-dense — and
/// benches both forwards on the same batch.
fn bench_compiled_pair(c: &mut Timer, group_name: &str, net: &sb_nn::models::Model, x: &Tensor) {
    let auto = CompiledModel::compile(net, &CompileOptions::default());
    let dense = CompiledModel::compile(
        net,
        &CompileOptions {
            force_format: Some(ExecFormat::Dense),
            ..CompileOptions::default()
        },
    );
    let formats: Vec<&str> = auto.plans().iter().map(|p| p.format.label()).collect();
    eprintln!(
        "{group_name}: formats {formats:?}, theoretical {:.2}x, storage {} -> {} bytes",
        auto.dense_macs() as f64 / auto.effective_macs().max(1) as f64,
        dense.storage_bytes(),
        auto.storage_bytes()
    );
    let mut group = c.benchmark_group(group_name);
    group.bench_function("dense-compiled", |b| {
        b.iter(|| std::hint::black_box(dense.forward(x)))
    });
    group.bench_function("auto-compiled", |b| {
        b.iter(|| std::hint::black_box(auto.forward(x)))
    });
    group.finish();
}

/// End-to-end compiled models: unstructured 16× on an FC network (the CSR
/// path) and structured 4× on LeNet-5 (the shrunk-dense path).
fn bench_compiled_models(c: &mut Timer) {
    let mut rng = Rng::seed_from(0xBE7C);

    let mut fc = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    Pruner::default()
        .prune(&mut fc, &GlobalMagnitude, 16.0, &mut rng)
        .expect("pruning a fresh network succeeds");
    let x = Tensor::rand_normal(&[64, 256], 0.0, 1.0, &mut rng);
    bench_compiled_pair(c, "infer-fc256-16x-unstructured", &fc, &x);

    let mut conv = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    Pruner::default()
        .prune(&mut conv, &FilterNorm, 4.0, &mut rng)
        .expect("pruning a fresh network succeeds");
    let x = Tensor::rand_normal(&[64, 1, 16, 16], 0.0, 1.0, &mut rng);
    bench_compiled_pair(c, "infer-lenet5-4x-structured", &conv, &x);
}

/// Forced-format compiled LeNet-5 across unstructured ratios: the
/// whole-model measurement behind the `format-crossover` artifact and
/// the wall-clock floors in `crates/infer/tests/speed.rs`.
fn bench_format_crossover(c: &mut Timer) {
    for ratio in [2.0, 4.0, 16.0] {
        let mut rng = Rng::seed_from(0xC405);
        let mut net = sb_nn::models::lenet5(1, 16, 10, &mut rng);
        Pruner::default()
            .prune(&mut net, &GlobalMagnitude, ratio, &mut rng)
            .expect("pruning a fresh network succeeds");
        let x = Tensor::rand_normal(&[64, 1, 16, 16], 0.0, 1.0, &mut rng);
        let mut group = c.benchmark_group(format!("infer-lenet5-formats-{ratio}x"));
        for fmt in [
            ExecFormat::Dense,
            ExecFormat::Csr,
            ExecFormat::Bsr,
            ExecFormat::Bitmap,
        ] {
            let compiled = CompiledModel::compile(
                &net,
                &CompileOptions {
                    force_format: Some(fmt),
                    ..CompileOptions::default()
                },
            );
            group.bench_function(fmt.label(), |b| {
                b.iter(|| std::hint::black_box(compiled.forward(&x)))
            });
        }
        group.finish();
    }
}

fn main() {
    let mut timer = Timer::new();
    bench_realized_speedup(&mut timer);
    bench_conv_row_kernels(&mut timer);
    bench_format_crossover(&mut timer);
    bench_compiled_models(&mut timer);
    timer.finish();

    // Persist the measurements so the repo carries its own numbers.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_infer.json");
    let json = sb_json::to_string_pretty(&timer.results().to_vec())
        .expect("measurements serialize");
    std::fs::write(&out, json + "\n").expect("write BENCH_infer.json");
    eprintln!("wrote {}", out.display());
}
