//! Benchmarks for the sb-runtime executor: pool lifecycle cost, spawn
//! throughput, `parallel_for` matmul scaling at 1/2/4 workers, and the
//! overhead the runtime adds to the sequential path at 1 worker (the
//! inline path must stay within 10% of raw sequential code, since the
//! single-core CI box runs everything through it).

use sb_bench::timer::Timer;
use sb_runtime::{set_thread_override, Pool};
use sb_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn bench_pool_lifecycle(c: &mut Timer) {
    let mut group = c.benchmark_group("pool-lifecycle");
    for &threads in &[1usize, 4] {
        group.bench_function(format!("spawn-teardown-{threads}t"), |bench| {
            bench.iter(|| {
                let pool = Pool::new(threads);
                std::hint::black_box(pool.threads());
                drop(pool);
            })
        });
    }
    group.finish();
}

fn bench_spawn_throughput(c: &mut Timer) {
    let pool = Pool::new(4);
    c.bench_function("scope-spawn-1000-tasks", |bench| {
        bench.iter(|| {
            let counter = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..1000 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            std::hint::black_box(counter.load(Ordering::Relaxed))
        })
    });
}

fn bench_parallel_matmul_scaling(c: &mut Timer) {
    let mut rng = Rng::seed_from(0);
    let n = 128usize;
    let a = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("parallel-matmul-128");
    for &threads in &[1usize, 2, 4] {
        set_thread_override(Some(threads));
        group.bench_function(format!("{threads}-workers"), |bench| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)))
        });
    }
    set_thread_override(None);
    group.finish();
}

/// Compares the runtime's 1-worker inline path against a hand-written
/// sequential loop on the same workload. Reported (not asserted — this
/// is a bench binary) with the <10% budget the design doc commits to.
fn report_sequential_overhead() {
    let mut rng = Rng::seed_from(1);
    let n = 96usize;
    let a = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
    let reps = 200;

    // Raw sequential reference: the same ikj kernel without any runtime
    // involvement (matvec-free, single thread, no chunk bookkeeping).
    let sequential = |a: &Tensor, b: &Tensor| {
        let (m, k) = (a.dim(0), a.dim(1));
        let nn = b.dim(1);
        let mut out = vec![0.0f32; m * nn];
        let (ad, bd) = (a.data(), b.data());
        for i in 0..m {
            let out_row = &mut out[i * nn..(i + 1) * nn];
            for kk in 0..k {
                let aik = ad[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * nn..(kk + 1) * nn];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        out
    };

    // Warm both paths once.
    std::hint::black_box(sequential(&a, &b));
    set_thread_override(Some(1));
    std::hint::black_box(a.matmul(&b));

    // Best-of-N interleaved passes: a single pass is easily skewed by a
    // scheduler preemption landing in one arm, so take each arm's minimum
    // across alternating passes before comparing.
    let passes = 5;
    let mut raw = std::time::Duration::MAX;
    let mut inline = std::time::Duration::MAX;
    for _ in 0..passes {
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(sequential(&a, &b));
        }
        raw = raw.min(t0.elapsed());

        let t1 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(a.matmul(&b));
        }
        inline = inline.min(t1.elapsed());
    }
    set_thread_override(None);

    let overhead = inline.as_secs_f64() / raw.as_secs_f64() - 1.0;
    println!(
        "sequential-overhead-1-worker   raw {:>10.3?}  runtime {:>10.3?}  overhead {:+.2}% (budget <10%)",
        raw / reps,
        inline / reps,
        overhead * 100.0
    );
}

/// Scheduling-health gate: runs a fixed spawn-heavy workload on a
/// 4-worker pool with tracing forced on and **asserts** (this one is a
/// gate, not a report) that the executor is not thrashing. A worker
/// parks when it finds no work after a steal sweep, so park events
/// scale with idleness, not with load; a healthy pool under a saturating
/// workload parks far less than once per task. A regression in the
/// wake/steal loop (lost wakeups, over-eager parking) shows up here as
/// parks exploding past the per-task budget.
fn check_scheduling_health() {
    sb_trace::set_override(Some(true));
    let _ = sb_trace::take_report(); // drop counts the benches above left

    let tasks = 2_000usize;
    let rounds = 4;
    let pool = Pool::new(4);
    let counter = AtomicUsize::new(0);
    for _ in 0..rounds {
        pool.scope(|s| {
            for _ in 0..tasks {
                s.spawn(|| {
                    // Enough work that workers overlap rather than one
                    // worker draining its own deque before the others wake.
                    std::hint::black_box((0..256u64).sum::<u64>());
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    drop(pool);
    assert_eq!(counter.load(Ordering::Relaxed), tasks * rounds);

    let report = sb_trace::take_report();
    sb_trace::set_override(None);
    let total = |name: &str| {
        report
            .scheduling_counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let spawned = total("tasks_spawned");
    let stolen = total("tasks_stolen");
    let parks = total("park_events");
    println!(
        "scheduling-health-4-workers    spawned {spawned}  stolen {stolen}  parks {parks}  \
         (budget: parks <= 2x spawned + 64)"
    );
    assert_eq!(spawned as usize, tasks * rounds, "every task is counted");
    // Budget: one park per task would already mean workers sleep between
    // every two tasks; 2x plus slack for startup/teardown races is the
    // loudest we accept before calling the wake path broken.
    let budget = 2 * spawned + 64;
    assert!(
        parks <= budget,
        "scheduling health: {parks} park events for {spawned} tasks \
         (budget {budget}) — the pool is thrashing its park/wake path"
    );
}

fn main() {
    let mut timer = Timer::new();
    bench_pool_lifecycle(&mut timer);
    bench_spawn_throughput(&mut timer);
    bench_parallel_matmul_scaling(&mut timer);
    timer.finish();
    report_sequential_overhead();
    check_scheduling_health();
}
