//! Wall-clock serving comparison: 16x-pruned CSR vs forced-dense
//! LeNet-300-100 behind the `sb-serve` micro-batcher, swept across
//! offered loads at a fixed p99 deadline.
//!
//! The per-batch story (`benches/realized.rs`) says the CSR kernel is a
//! few times faster at 16x; this bench asks what that buys *as a
//! service*: the maximum offered load each model sustains — p99 within
//! the deadline, negligible shed — before queueing eats the deadline
//! budget. Offered loads are calibrated to the measured dense batch
//! latency so the sweep brackets the dense saturation knee on any
//! machine. Results are written to `BENCH_serve.json` at the repository
//! root so the numbers travel with the code.

use sb_json::{Json, ToJson};
use sb_metrics::median_latency_us;
use sb_serve::{
    profile, run_open_loop_wall, ArrivalProcess, BatchEngine, InferEngine, LoadSpec, ServeConfig,
    Server, ServiceModel, WallClock,
};
use sb_tensor::{Rng, Tensor};
use shrinkbench::{GlobalMagnitude, Pruner};
use std::sync::Arc;

const RATIO: f64 = 16.0;
const MAX_BATCH: usize = 16;
const DEADLINE_US: u64 = 5_000;
const HORIZON_US: u64 = 400_000;
/// A point "sustains" its offered load when p99 is inside the deadline
/// and less than 1% of offered requests were shed.
const MAX_SHED: f64 = 0.01;

fn compile(net: &sb_nn::models::Model, fmt: sb_infer::ExecFormat) -> sb_infer::CompiledModel {
    sb_infer::CompiledModel::compile(
        net,
        &sb_infer::CompileOptions {
            force_format: Some(fmt),
            ..sb_infer::CompileOptions::default()
        },
    )
}

/// Median wall-clock of one full `MAX_BATCH`-sample batch, µs.
fn batch_latency_us(engine: &InferEngine, samples: &[Vec<f32>]) -> f64 {
    let inputs: Vec<f32> = (0..MAX_BATCH)
        .flat_map(|i| samples[i % samples.len()].iter().copied())
        .collect();
    median_latency_us(9, &mut || {
        std::hint::black_box(engine.run_batch(&inputs, MAX_BATCH));
    })
}

fn serve_point(
    net: &sb_nn::models::Model,
    fmt: sb_infer::ExecFormat,
    rps: f64,
    samples: &[Vec<f32>],
) -> sb_metrics::ServeProfile {
    // Fresh server per point: the wall clock's epoch is its creation, so
    // every run starts cold at t=0 with an empty queue.
    let clock = Arc::new(WallClock::new());
    let engine = InferEngine::new(
        compile(net, fmt),
        // Service model is unused under a wall clock; priced anyway for
        // completeness.
        ServiceModel {
            base_us: 0,
            per_sample_us: 1,
        },
    );
    let mut server = Server::new(
        engine,
        ServeConfig {
            max_batch: MAX_BATCH,
            max_wait_us: 200,
            queue_cap: 128,
            max_inflight: 2,
        },
        clock.clone(),
    );
    let spec = LoadSpec {
        arrivals: ArrivalProcess::Uniform { rate_rps: rps },
        horizon_us: HORIZON_US,
        seed: 0x5E4E,
        deadline_us: Some(DEADLINE_US),
    };
    let done = run_open_loop_wall(&mut server, clock.as_ref(), &spec, |i| {
        samples[i % samples.len()].clone()
    });
    // Throughput over the *actual* span of the run, not the nominal
    // horizon: an overloaded server keeps completing backlog long after
    // the offered-load window closes, and dividing by the nominal
    // horizon would credit that backlog as extra rate.
    let elapsed_us = done
        .iter()
        .map(|c| c.done_us)
        .max()
        .unwrap_or(HORIZON_US)
        .max(HORIZON_US);
    profile(&done, elapsed_us)
}

fn sustains(p: &sb_metrics::ServeProfile) -> bool {
    p.completed > 0 && p.p99_us <= DEADLINE_US && p.rejection_rate() <= MAX_SHED
}

fn main() {
    let mut rng = Rng::seed_from(0xBE7C);
    let mut net = sb_nn::models::lenet_300_100(256, 10, &mut rng);
    Pruner::default()
        .prune(&mut net, &GlobalMagnitude, RATIO, &mut rng)
        .expect("pruning a fresh network succeeds");
    let mut input_rng = Rng::seed_from(2);
    let samples: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            Tensor::rand_normal(&[256], 0.0, 1.0, &mut input_rng)
                .data()
                .to_vec()
        })
        .collect();

    // Calibrate the sweep to this machine's dense capacity so the
    // offered loads bracket the dense knee wherever the bench runs.
    let dummy_service = ServiceModel {
        base_us: 0,
        per_sample_us: 1,
    };
    let dense_batch_us = batch_latency_us(
        &InferEngine::new(compile(&net, sb_infer::ExecFormat::Dense), dummy_service),
        &samples,
    );
    let csr_batch_us = batch_latency_us(
        &InferEngine::new(compile(&net, sb_infer::ExecFormat::Csr), dummy_service),
        &samples,
    );
    // Two batches in flight: capacity ~ 2 * batch / latency.
    let dense_cap_rps = 2.0 * MAX_BATCH as f64 * 1.0e6 / dense_batch_us;
    let load_fractions = [0.125f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    eprintln!(
        "calibration: dense batch {dense_batch_us:.0}us, csr batch {csr_batch_us:.0}us, \
         dense capacity ~{dense_cap_rps:.0} rps; sweeping {load_fractions:?} x dense capacity"
    );

    let mut points: Vec<Json> = Vec::new();
    let mut best: Vec<(String, f64)> = Vec::new();
    for (label, fmt) in [
        ("dense", sb_infer::ExecFormat::Dense),
        ("csr", sb_infer::ExecFormat::Csr),
    ] {
        let mut max_sustained = 0.0f64;
        for &frac in &load_fractions {
            let rps = dense_cap_rps * frac;
            let p = serve_point(&net, fmt, rps, &samples);
            let ok = sustains(&p);
            if ok {
                max_sustained = max_sustained.max(p.throughput_rps);
            }
            println!(
                "{label:>5} @ {rps:>8.0} rps: completed {:>6}  shed {:>5.1}%  p50 {:>6}us  p99 {:>6}us  mean batch {:>5.2}  {}",
                p.completed,
                100.0 * p.rejection_rate(),
                p.p50_us,
                p.p99_us,
                p.mean_batch,
                if ok { "sustained" } else { "OVER" }
            );
            points.push(Json::Obj(vec![
                ("model".to_string(), Json::Str(label.to_string())),
                ("offered_rps".to_string(), Json::Float(rps)),
                ("sustained".to_string(), Json::Bool(ok)),
                ("profile".to_string(), p.to_json()),
            ]));
        }
        println!("{label:>5} max sustained throughput: {max_sustained:.0} rps");
        best.push((label.to_string(), max_sustained));
    }

    assert!(
        best[1].1 > best[0].1,
        "16x CSR should sustain strictly more than forced-dense \
         (csr {:.0} rps vs dense {:.0} rps)",
        best[1].1,
        best[0].1
    );

    let doc = Json::Obj(vec![
        (
            "workload".to_string(),
            Json::Str(format!(
                "lenet_300_100 fc256, {RATIO}x global magnitude, open-loop uniform arrivals, \
                 max_batch {MAX_BATCH}, 200us window, queue 128, {DEADLINE_US}us deadline, \
                 {HORIZON_US}us horizon"
            )),
        ),
        (
            "calibration".to_string(),
            Json::Obj(vec![
                ("dense_batch_us".to_string(), Json::Float(dense_batch_us)),
                ("csr_batch_us".to_string(), Json::Float(csr_batch_us)),
                ("dense_cap_rps".to_string(), Json::Float(dense_cap_rps)),
            ]),
        ),
        (
            "max_sustained_rps".to_string(),
            Json::Obj(
                best.iter()
                    .map(|(l, v)| (l.clone(), Json::Float(*v)))
                    .collect(),
            ),
        ),
        ("points".to_string(), Json::Arr(points)),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&out, sb_json::to_string_pretty(&doc).expect("serialize") + "\n")
        .expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
}
