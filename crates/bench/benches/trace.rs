//! The cost of carrying sb-trace instrumentation when tracing is off.
//!
//! Every span/counter call site compiles to one relaxed atomic load on
//! the disabled path. This bench measures that per-call cost directly,
//! counts how many instrumentation events a representative traced
//! workload (prune + fine-tune + compiled inference) actually emits, and
//! **asserts** that the extrapolated disabled-path overhead is under the
//! 2% budget the design doc commits to. It can afford to assert — spans
//! are deliberately coarse (per epoch, per grid cell, per layer×block),
//! so the event count is orders of magnitude below the arithmetic the
//! workload performs between events.

use sb_tensor::Rng;
use std::time::{Duration, Instant};

/// Per-call cost of a disabled span open/close, in nanoseconds.
fn disabled_span_cost() -> f64 {
    sb_trace::set_override(Some(false));
    let calls = 2_000_000u32;
    // Warm.
    for _ in 0..1000 {
        let _ = std::hint::black_box(sb_trace::span("off"));
    }
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..calls {
            let _ = std::hint::black_box(sb_trace::span("off"));
        }
        best = best.min(t.elapsed());
    }
    best.as_secs_f64() * 1e9 / calls as f64
}

/// Per-call cost of a disabled counter add, in nanoseconds.
fn disabled_add_cost() -> f64 {
    sb_trace::set_override(Some(false));
    let calls = 2_000_000u32;
    for _ in 0..1000 {
        sb_trace::add(sb_trace::CounterId::Flops, 1);
    }
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..calls {
            sb_trace::add(sb_trace::CounterId::Flops, 1);
        }
        best = best.min(t.elapsed());
    }
    best.as_secs_f64() * 1e9 / calls as f64
}

/// The representative workload: prune a small trained MLP, fine-tune it,
/// and run compiled inference — the three instrumented phases a grid
/// cell exercises.
fn workload() {
    use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
    use sb_nn::{models, Adam, TrainConfig, Trainer};
    use shrinkbench::{prune_and_finetune, FinetuneConfig, GlobalMagnitude};

    let data = SyntheticVision::new(DatasetSpec::mnist_like(0).scaled_down(8));
    let spec = data.spec();
    let mut rng = Rng::seed_from(0);
    let mut net = models::mlp(
        spec.channels * spec.side * spec.side,
        &[32],
        spec.classes,
        &mut rng,
    );
    let mut opt = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    });
    let mut erng = Rng::seed_from(1);
    trainer
        .fit(
            &mut net,
            &mut opt,
            |_| {
                let mut fork = erng.fork(0);
                batches_of(&data, Split::Train, 32, Some(&mut fork), true)
            },
            &[],
        )
        .unwrap();
    let cfg = FinetuneConfig {
        epochs: 1,
        batch_size: 32,
        flatten_input: true,
        patience: None,
        ..FinetuneConfig::default()
    };
    let mut prng = Rng::seed_from(2);
    prune_and_finetune(&mut net, &GlobalMagnitude, 4.0, &data, &cfg, &mut prng).unwrap();
    let compiled = sb_infer::CompiledModel::compile(&net, &sb_infer::CompileOptions::default());
    let (x, _) = batches_of(&data, Split::Val, 32, None, true)
        .into_iter()
        .next()
        .unwrap();
    for _ in 0..10 {
        std::hint::black_box(compiled.forward(&x));
    }
}

fn count_spans(node: &sb_trace::TraceNode) -> u64 {
    node.count + node.children.iter().map(count_spans).sum::<u64>()
}

fn main() {
    let span_ns = disabled_span_cost();
    let add_ns = disabled_add_cost();

    // Untraced workload wall time (best of 3 to shed scheduler noise).
    sb_trace::set_override(Some(false));
    workload(); // warm (first call pays lazy pool/dataset setup)
    let mut untraced = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        workload();
        untraced = untraced.min(t.elapsed());
    }

    // Traced run: count the instrumentation events the workload emits.
    sb_trace::set_override(Some(true));
    let _ = sb_trace::take_report();
    workload();
    let report = sb_trace::take_report();
    sb_trace::set_override(None);
    let spans: u64 = report.roots.iter().map(count_spans).sum();
    // Upper bound on counter calls: only compiled-kernel layer spans add
    // counters (two each); charging every span two adds overcounts.
    let adds = 2 * spans;

    let extrapolated_ns = spans as f64 * span_ns + adds as f64 * add_ns;
    let overhead = extrapolated_ns / (untraced.as_secs_f64() * 1e9);
    println!(
        "disabled-span     {span_ns:>8.2} ns/call\n\
         disabled-add      {add_ns:>8.2} ns/call\n\
         workload          {untraced:>10.3?} untraced, {spans} spans emitted when traced\n\
         disabled-overhead {:>8.4}% extrapolated (budget <2%)",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "disabled-path tracing overhead {:.4}% exceeds the 2% budget",
        overhead * 100.0
    );
}
