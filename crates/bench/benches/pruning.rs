//! Microbenchmarks for the pruning primitives: scoring, mask
//! construction, mask application, and profiling.

use sb_bench::timer::{BatchSize, Timer};
use sb_metrics::ModelProfile;
use sb_tensor::{Rng, Tensor};
use shrinkbench::masks::{keep_fraction_for_compression, masks_from_scores};
use shrinkbench::{
    GlobalGradient, GlobalMagnitude, LayerMagnitude, Pruner, PruneSettings, RandomPruning, Scope,
    Strategy, StrategyKind,
};
use std::collections::BTreeMap;

fn pretrainedish() -> sb_nn::models::Model {
    let mut rng = Rng::seed_from(0);
    sb_nn::models::cifar_vgg(3, 16, 10, 8, &mut rng)
}

fn bench_strategy_prune(c: &mut Timer) {
    let mut group = c.benchmark_group("prune-cifar-vgg-w8");
    group.sample_size(20);
    let mut rng = Rng::seed_from(1);
    let score_batch = (
        Tensor::rand_normal(&[16, 3, 16, 16], 0.0, 1.0, &mut rng),
        (0..16).map(|i| i % 10).collect::<Vec<_>>(),
    );
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("global-magnitude", Box::new(GlobalMagnitude)),
        ("layer-magnitude", Box::new(LayerMagnitude)),
        ("global-gradient", Box::new(GlobalGradient)),
        ("random", Box::new(RandomPruning::global())),
        ("filter-norm", StrategyKind::FilterNorm.build()),
    ];
    for (name, strategy) in &strategies {
        group.bench_function(*name, |bench| {
            bench.iter_batched(
                pretrainedish,
                |mut net| {
                    let pruner = Pruner::new(PruneSettings {
                        score_batch: Some(score_batch.clone()),
                        ..PruneSettings::default()
                    });
                    let mut rng = Rng::seed_from(2);
                    std::hint::black_box(
                        pruner
                            .prune(&mut net, strategy.as_ref(), 4.0, &mut rng)
                            .unwrap(),
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_mask_construction(c: &mut Timer) {
    let mut rng = Rng::seed_from(3);
    let mut scores: BTreeMap<String, Tensor> = BTreeMap::new();
    for i in 0..8 {
        scores.insert(
            format!("layer{i}.weight"),
            Tensor::rand_uniform(&[64, 128], 0.0, 1.0, &mut rng),
        );
    }
    let mut group = c.benchmark_group("masks-from-scores-64k");
    for scope in [Scope::Global, Scope::Layerwise] {
        group.bench_function(format!("{scope:?}"), |bench| {
            bench.iter(|| std::hint::black_box(masks_from_scores(&scores, 0.25, scope)))
        });
    }
    group.finish();
}

fn bench_profile_and_targeting(c: &mut Timer) {
    let net = pretrainedish();
    c.bench_function("model-profile-measure", |bench| {
        bench.iter(|| std::hint::black_box(ModelProfile::measure(&net)))
    });
    c.bench_function("keep-fraction-targeting", |bench| {
        bench.iter(|| {
            for compression in [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0] {
                std::hint::black_box(keep_fraction_for_compression(
                    1_000_000, 12_000, compression,
                ));
            }
        })
    });
}

fn main() {
    let mut timer = Timer::new();
    bench_strategy_prune(&mut timer);
    bench_mask_construction(&mut timer);
    bench_profile_and_targeting(&mut timer);
    timer.finish();
}
