//! Microbenchmarks for the numerical substrate: the kernels whose cost
//! dominates every experiment in the reproduction.

use sb_bench::timer::{BatchSize, Timer};
use sb_nn::{models, Layer, Mode, Network};
use sb_tensor::{im2col, Conv2dGeometry, Rng, Tensor};

fn bench_matmul(c: &mut Timer) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)))
        });
        group.bench_function(format!("{n}x{n}-transposed"), |bench| {
            bench.iter(|| std::hint::black_box(a.matmul_transposed(&b)))
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Timer) {
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding_h: 1,
        padding_w: 1,
    };
    let mut rng = Rng::seed_from(1);
    let x = Tensor::rand_normal(&[8, 8, 16, 16], 0.0, 1.0, &mut rng);
    c.bench_function("im2col-8x8x16x16-k3", |bench| {
        bench.iter(|| std::hint::black_box(im2col(&x, &geom)))
    });
}

fn bench_conv_forward_backward(c: &mut Timer) {
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding_h: 1,
        padding_w: 1,
    };
    let mut rng = Rng::seed_from(2);
    let x = Tensor::rand_normal(&[8, 8, 16, 16], 0.0, 1.0, &mut rng);
    c.bench_function("conv2d-forward", |bench| {
        let mut conv = sb_nn::Conv2d::new("c", 16, geom, &mut rng);
        bench.iter(|| std::hint::black_box(conv.forward(&x, Mode::Eval)))
    });
    c.bench_function("conv2d-forward-backward", |bench| {
        let mut conv = sb_nn::Conv2d::new("c", 16, geom, &mut rng);
        bench.iter_batched(
            || x.clone(),
            |x| {
                let y = conv.forward(&x, Mode::Train);
                std::hint::black_box(conv.backward(&Tensor::ones(y.dims())))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_model_forward(c: &mut Timer) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::rand_normal(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("model-forward");
    group.sample_size(20);
    let mut vgg = models::cifar_vgg(3, 16, 10, 8, &mut rng);
    group.bench_function("cifar-vgg-w8-b16", |bench| {
        bench.iter(|| std::hint::black_box(vgg.forward(&x, Mode::Eval)))
    });
    let mut resnet = models::resnet_cifar(20, 3, 16, 10, 4, &mut rng);
    group.bench_function("resnet20-w4-b16", |bench| {
        bench.iter(|| std::hint::black_box(resnet.forward(&x, Mode::Eval)))
    });
    group.finish();
}

fn main() {
    let mut timer = Timer::new();
    bench_matmul(&mut timer);
    bench_im2col(&mut timer);
    bench_conv_forward_backward(&mut timer);
    bench_model_forward(&mut timer);
    timer.finish();
}
