//! One wall-clock benchmark per paper artifact.
//!
//! Table 1 and Figures 1–5 are benchmarked at full fidelity (they are
//! pure computations over the embedded corpus). Figures 6–18 are
//! benchmarked through their *workload kernel* — one complete
//! (prune → fine-tune → evaluate) grid cell of the experiment backing the
//! figure, at micro scale — so `cargo bench` terminates in minutes while
//! still exercising the exact code path `expfig <figure>` runs. The full
//! grids are regenerated with `expfig`, not the bench harness.

use sb_bench::timer::{BatchSize, Timer};
use sb_bench::configs::{experiment_config, Scale};
use sb_corpus::data::build_corpus;
use sb_corpus::{fragmentation, graph, tradeoff};
use sb_data::SyntheticVision;
use sb_nn::NetworkExt;
use sb_tensor::Rng;
use shrinkbench::experiment::ExperimentRunner;
use shrinkbench::prune_and_finetune;

fn bench_meta_analysis_artifacts(c: &mut Timer) {
    let corpus = build_corpus();
    c.bench_function("table1", |b| {
        b.iter(|| std::hint::black_box(fragmentation::pair_counts(&corpus, 4)))
    });
    c.bench_function("fig1", |b| {
        b.iter(|| std::hint::black_box(tradeoff::figure1(&corpus)))
    });
    c.bench_function("fig2", |b| {
        b.iter(|| std::hint::black_box(graph::comparison_histograms(&corpus)))
    });
    c.bench_function("fig3", |b| {
        b.iter(|| std::hint::black_box(fragmentation::figure3_grid(&corpus)))
    });
    c.bench_function("fig4", |b| {
        b.iter(|| {
            std::hint::black_box((
                fragmentation::pairs_per_paper(&corpus),
                fragmentation::points_per_curve(&corpus),
            ))
        })
    });
    c.bench_function("fig5", |b| {
        b.iter(|| std::hint::black_box(tradeoff::figure5(&corpus)))
    });
    c.bench_function("corpus-construction", |b| {
        b.iter(|| std::hint::black_box(build_corpus()))
    });
}

/// One grid cell of the experiment backing a figure, shrunk hard.
fn bench_cell(c: &mut Timer, bench_name: &str, experiment_id: &str, strategy_index: usize) {
    let mut cfg = experiment_config(experiment_id, Scale::Quick)
        .unwrap_or_else(|| panic!("unknown experiment {experiment_id}"));
    cfg.data_scale *= 4; // even smaller than quick
    cfg.pretrain.epochs = 1;
    cfg.finetune.epochs = 1;
    cfg.finetune.patience = None;
    let data = SyntheticVision::new(cfg.dataset.spec(cfg.data_scale, cfg.data_seed));
    let (net, _, snapshot) = ExperimentRunner::pretrain(&cfg, &data);
    let strategy = cfg.strategies[strategy_index.min(cfg.strategies.len() - 1)].build();
    let mut finetune = cfg.finetune.clone();
    finetune.flatten_input = cfg.model.flatten_input();
    let mut group = c.benchmark_group("experiment-cells");
    group.sample_size(10);
    let net = std::cell::RefCell::new(net);
    group.bench_function(bench_name, |b| {
        b.iter_batched(
            || snapshot.clone(),
            |snap| {
                let mut net = net.borrow_mut();
                net.restore(&snap);
                let mut rng = Rng::seed_from(5);
                std::hint::black_box(
                    prune_and_finetune(&mut *net, strategy.as_ref(), 4.0, &data, &finetune, &mut rng)
                        .unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_experiment_figures(c: &mut Timer) {
    // fig6 / fig17 / fig18 share the imagenet-resnet18 workload.
    bench_cell(c, "fig6-fig17-fig18-cell", "imagenet-resnet18", 0);
    // fig7 / fig9 / fig10 share cifar-vgg; fig13/fig14 share resnet56.
    bench_cell(c, "fig7-fig9-fig10-cell", "cifar-vgg", 0);
    bench_cell(c, "fig11-fig12-cell", "resnet20", 0);
    bench_cell(c, "fig13-fig14-cell", "resnet56", 0);
    bench_cell(c, "fig15-fig16-cell", "resnet110", 0);
    // fig8's workload: magnitude pruning from an alternative pretrain.
    bench_cell(c, "fig8-cell", "weights-b", 0);
    // Ablation workloads.
    bench_cell(c, "ablation-schedule-cell", "ablation-schedule-iterative", 0);
    bench_cell(c, "ablation-structured-cell", "ablation-structured", 0);
}

fn main() {
    let mut timer = Timer::new();
    bench_meta_analysis_artifacts(&mut timer);
    bench_experiment_figures(&mut timer);
    timer.finish();
}
