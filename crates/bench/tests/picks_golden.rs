//! Golden-file test for the pick-log artifact: the dequeue-decision
//! stream of a pinned virtual-clock scheduler scenario must render
//! byte-for-byte as committed (the same renderer backs
//! `schedload --picks`). The scenario is built to produce contested
//! picks — mixed priority classes, deadline-carrying and deadline-free
//! queue heads, a quota'd tenant — so the record shape *and* the
//! EDF-within-class pick order are both pinned.
//!
//! To regenerate after an intentional change to the pick record or the
//! dequeue policy:
//!
//! ```text
//! BLESS=1 cargo test -p sb-bench --test picks_golden
//! ```

use sb_bench::picks::render_picks;
use sb_sched::{MultiServer, Priority, SchedConfig, TenantPolicy, TenantQuota, TenantSpec};
use sb_serve::{EchoEngine, ServiceModel, SimClock};
use std::path::Path;
use std::sync::Arc;

/// Replays a small scripted workload on the virtual clock and renders
/// its pick log. One inflight slot and staggered deadlines force the
/// scheduler to arbitrate between classes, head deadlines, and WFQ
/// vtime on nearly every launch.
fn scenario() -> String {
    let clock = Arc::new(SimClock::new());
    let policy = |max_batch: usize, quota: Option<TenantQuota>| TenantPolicy {
        max_batch,
        max_wait_us: 100,
        queue_cap: 8,
        quota,
    };
    let engine = |base_us: u64, per_sample_us: u64| {
        Arc::new(EchoEngine::new(
            1,
            4,
            ServiceModel {
                base_us,
                per_sample_us,
            },
        ))
    };
    let specs = vec![
        TenantSpec::new("fast", 2, Priority::Interactive, policy(4, None), engine(100, 20)),
        TenantSpec::new(
            "slow",
            1,
            Priority::Batch,
            policy(
                4,
                Some(TenantQuota {
                    rate_per_s: 10_000,
                    burst: 2,
                }),
            ),
            engine(300, 50),
        ),
        TenantSpec::new("edge", 1, Priority::Interactive, policy(2, None), engine(100, 20)),
    ];
    let mut ms = MultiServer::new(specs, SchedConfig { max_inflight: 1 }, clock.clone());
    // `(time_us, tenant, absolute deadline)` — tenants 0 and 2 contend
    // within the interactive class with and without head deadlines;
    // tenant 1 waits behind both despite its earlier arrivals.
    let script: &[(u64, usize, Option<u64>)] = &[
        (0, 1, None),
        (0, 1, Some(5_000)),
        (10, 2, Some(900)),
        (20, 0, None),
        (120, 0, Some(2_000)),
        (130, 2, None),
        (150, 1, None),
        (400, 0, Some(1_500)),
        (410, 2, Some(1_200)),
    ];
    for &(t, tenant, deadline) in script {
        while let Some(ev) = ms.next_event_us() {
            if ev >= t {
                break;
            }
            clock.advance_to(ev);
            ms.pump();
        }
        clock.advance_to(t);
        ms.submit(tenant, vec![tenant as f32], deadline);
    }
    ms.begin_drain();
    while !ms.is_idle() {
        let ev = ms.next_event_us().expect("non-idle scheduler has an event");
        clock.advance_to(ev);
        ms.pump();
    }
    let _ = ms.take_completions();
    render_picks(&ms.take_picks())
}

#[test]
fn pick_log_matches_golden_file() {
    let rendered = scenario();
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/picks.golden.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("bless golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "pick-log output drifted from the golden file; if the dequeue \
         policy or record change is intentional, regenerate it (see \
         module docs)"
    );
}
