//! Golden-file test for `trace-diff`: the regression table for a pinned
//! pair of trace artifacts must render byte-for-byte as committed.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! BLESS=1 cargo test -p sb-bench --test tracediff_golden
//! ```

use sb_bench::tracediff::{parse_report, render_diff};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn diff_table_matches_golden_file() {
    let a = parse_report(&fixture("before.trace.json")).expect("before parses");
    let b = parse_report(&fixture("after.trace.json")).expect("after parses");
    let rendered = render_diff("before", "after", &a, &b);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/trace_diff.golden.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("bless golden file");
        return;
    }
    let golden = fixture("trace_diff.golden.txt");
    assert_eq!(
        rendered, golden,
        "trace-diff output drifted from the golden file; if the format \
         change is intentional, regenerate it (see module docs)"
    );
}
