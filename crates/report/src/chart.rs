//! ASCII line charts for rendering tradeoff curves in a terminal.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct ChartSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; need not be sorted.
    pub points: Vec<(f64, f64)>,
}

impl ChartSeries {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        ChartSeries {
            label: label.into(),
            points,
        }
    }
}

/// A fixed-size character-grid line chart with optional log-scaled x-axis
/// (compression ratios are plotted on log axes throughout the paper).
///
/// # Example
///
/// ```
/// use sb_report::{AsciiChart, ChartSeries};
///
/// let chart = AsciiChart::new("accuracy vs compression", 40, 10)
///     .log_x(true)
///     .series(ChartSeries::new("magnitude", vec![(1.0, 0.9), (32.0, 0.6)]));
/// let text = chart.render();
/// assert!(text.contains("magnitude"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    log_x: bool,
    x_label: String,
    y_label: String,
    series: Vec<ChartSeries>,
}

const MARKERS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates an empty chart of `width × height` plot cells.
    ///
    /// # Panics
    ///
    /// Panics if `width < 8` or `height < 4`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "chart too small to render");
        AsciiChart {
            title: title.into(),
            width,
            height,
            log_x: false,
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Enables base-2 logarithmic x-scaling.
    pub fn log_x(mut self, enabled: bool) -> Self {
        self.log_x = enabled;
        self
    }

    /// Sets the axis captions.
    pub fn axis_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a series.
    pub fn series(mut self, series: ChartSeries) -> Self {
        self.series.push(series);
        self
    }

    fn x_of(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    /// Renders the chart to a multi-line string (empty series → a note).
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, y)| (self.x_of(x), y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];

        for (si, series) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            // Sort and draw segments between consecutive points.
            let mut path: Vec<(f64, f64)> = series
                .points
                .iter()
                .map(|&(x, y)| (self.x_of(x), y))
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .collect();
            path.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("filtered finite"));
            let to_cell = |x: f64, y: f64| -> (usize, usize) {
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                (cx.min(self.width - 1), self.height - 1 - cy.min(self.height - 1))
            };
            for w in path.windows(2) {
                let (x0, y0) = to_cell(w[0].0, w[0].1);
                let (x1, y1) = to_cell(w[1].0, w[1].1);
                // Linear interpolation in cell space.
                let steps = (x1.abs_diff(x0)).max(y1.abs_diff(y0)).max(1);
                for s in 0..=steps {
                    let t = s as f64 / steps as f64;
                    let cx = (x0 as f64 + t * (x1 as f64 - x0 as f64)).round() as usize;
                    let cy = (y0 as f64 + t * (y1 as f64 - y0 as f64)).round() as usize;
                    grid[cy.min(self.height - 1)][cx.min(self.width - 1)] = marker;
                }
            }
            for &(x, y) in &path {
                let (cx, cy) = to_cell(x, y);
                grid[cy][cx] = marker;
            }
        }

        let y_caption = if self.y_label.is_empty() { String::new() } else { format!("  ({})", self.y_label) };
        out.push_str(&format!("{y_max:>9.3} ┤{y_caption}\n"));
        for row in &grid {
            out.push_str("          │");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{y_min:>9.3} └{}\n", "─".repeat(self.width)));
        let x_caption = if self.x_label.is_empty() { String::new() } else { format!(" ({})", self.x_label) };
        let x_lo = if self.log_x { 2f64.powf(x_min) } else { x_min };
        let x_hi = if self.log_x { 2f64.powf(x_max) } else { x_max };
        out.push_str(&format!(
            "           {x_lo:<12.3}{:>width$.3}{x_caption}\n",
            x_hi,
            width = self.width.saturating_sub(12)
        ));
        for (si, series) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "   {} {}\n",
                MARKERS[si % MARKERS.len()],
                series.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_and_legend() {
        let chart = AsciiChart::new("test", 30, 8)
            .series(ChartSeries::new("alpha", vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(ChartSeries::new("beta", vec![(0.0, 1.0), (1.0, 0.0)]));
        let text = chart.render();
        assert!(text.contains("== test =="));
        assert!(text.contains("o alpha"));
        assert!(text.contains("+ beta"));
    }

    #[test]
    fn empty_chart_notes_no_data() {
        let text = AsciiChart::new("empty", 20, 5).render();
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn log_x_spreads_octaves_evenly() {
        // Points at 1, 2, 4 should land at even spacing under log-x.
        let chart = AsciiChart::new("log", 21, 5)
            .log_x(true)
            .series(ChartSeries::new("s", vec![(1.0, 0.0), (2.0, 1.0), (4.0, 2.0)]));
        let text = chart.render();
        // Midpoint marker should appear near column 10.
        let mid_row: &str = text
            .lines()
            .find(|l| l.contains('o') && l.contains('│'))
            .unwrap();
        assert!(mid_row.len() > 10);
    }

    #[test]
    fn increasing_series_has_marker_in_top_right() {
        let chart = AsciiChart::new("up", 20, 6)
            .series(ChartSeries::new("s", vec![(0.0, 0.0), (10.0, 10.0)]));
        let text = chart.render();
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("          │")).collect();
        assert_eq!(rows.len(), 6);
        // Top row's marker should be to the right of the bottom row's.
        let top = rows[0].rfind('o').unwrap();
        let bottom = rows[5].find('o').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn constant_series_renders_without_panic() {
        let chart = AsciiChart::new("flat", 20, 5)
            .series(ChartSeries::new("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let text = chart.render();
        assert!(text.contains('o'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let chart = AsciiChart::new("nan", 20, 5)
            .series(ChartSeries::new("s", vec![(f64::NAN, 1.0), (1.0, 2.0), (2.0, 3.0)]));
        let text = chart.render();
        assert!(text.contains('o'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        AsciiChart::new("x", 2, 2);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn log_x_clamps_nonpositive_values() {
        // Zero/negative x under log scaling must not panic or poison the
        // chart with NaN/-inf artifacts.
        let chart = AsciiChart::new("clamp", 20, 5)
            .log_x(true)
            .series(ChartSeries::new("s", vec![(0.0, 1.0), (1.0, 2.0), (4.0, 3.0)]));
        let text = chart.render();
        assert!(text.contains('o'));
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn single_point_series_renders() {
        let chart = AsciiChart::new("dot", 20, 5)
            .series(ChartSeries::new("s", vec![(3.0, 7.0)]));
        let text = chart.render();
        assert!(text.contains('o'));
    }

    #[test]
    fn many_series_cycle_markers() {
        let mut chart = AsciiChart::new("many", 24, 6);
        for i in 0..10 {
            chart = chart.series(ChartSeries::new(
                format!("s{i}"),
                vec![(0.0, i as f64), (1.0, i as f64 + 1.0)],
            ));
        }
        let text = chart.render();
        // Markers repeat after 8 series; legend should list all 10.
        assert_eq!(text.matches("s0").count() + text.matches("s1").count() >= 2, true);
        assert!(text.contains("o s0"));
        assert!(text.contains("o s8"), "marker cycling");
    }
}
