#![warn(missing_docs)]

//! Reporting utilities: markdown tables, CSV writers, and ASCII line
//! charts rendering tradeoff curves in a terminal.
//!
//! Every table and figure of the reproduction is ultimately emitted
//! through this crate, so the formats stay consistent across the
//! meta-analysis figures and the ShrinkBench experiment figures.

mod chart;
mod table;

pub use chart::{AsciiChart, ChartSeries};
pub use table::{write_csv, Table};
