//! Markdown and CSV table rendering.

use std::fmt::Write as _;

/// A simple column-aligned table that renders as GitHub-flavored
/// markdown.
///
/// # Example
///
/// ```
/// use sb_report::Table;
///
/// let mut t = Table::new(vec!["Dataset", "Papers"]);
/// t.row(vec!["ImageNet".to_string(), "22".to_string()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| ImageNet | 22"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<1$}|", "", w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish: quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table to `path` as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_csv(table: &Table, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "hello".into()]);
        t.row(vec!["22".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new(vec!["c"]);
        t.row(vec!["say \"hi\"".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let path = std::env::temp_dir().join("sb-report-test/out.csv");
        write_csv(&sample(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("hello"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
