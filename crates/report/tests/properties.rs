//! Property-based tests for the report formats: markdown/CSV tables and
//! ASCII charts, on the in-repo `sb-check` harness.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng};
use sb_report::{AsciiChart, ChartSeries, Table};

/// Pinned suite seed for replayable failures.
const SUITE: u64 = 0x7E45_0006;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// A random cell, occasionally containing the characters CSV must quote.
fn gen_cell(rng: &mut Rng) -> String {
    let len = rng.below(8);
    let mut s = String::new();
    for _ in 0..len {
        let c = match rng.below(10) {
            0 => ',',
            1 => '"',
            2 => ' ',
            k => (b'a' + (k as u8 - 3)) as char,
        };
        s.push(c);
    }
    s
}

/// Column count, then rows of cells (all rows the same width, as the
/// experiment harness always produces).
fn gen_table_data(rng: &mut Rng) -> (Vec<String>, Vec<Vec<String>>) {
    let cols = rng.below(4) + 1;
    let headers = (0..cols).map(|c| format!("col{c}")).collect();
    let rows = (0..rng.below(6))
        .map(|_| (0..cols).map(|_| gen_cell(rng)).collect())
        .collect();
    (headers, rows)
}

fn build(headers: &[String], rows: &[Vec<String>]) -> Table {
    let mut t = Table::new(headers.to_vec());
    for r in rows {
        t.row(r.clone());
    }
    t
}

fn gen_points(rng: &mut Rng) -> Vec<(f64, f64)> {
    (0..rng.below(12))
        .map(|_| {
            (
                rng.uniform(0.1, 1000.0) as f64,
                rng.uniform(-100.0, 100.0) as f64,
            )
        })
        .collect()
}

#[test]
fn csv_has_one_line_per_row_plus_header() {
    check(
        "report::csv_has_one_line_per_row_plus_header",
        cfg(),
        gen_table_data,
        |(headers, rows)| {
            let t = build(headers, rows);
            prop_assert_eq!(t.len(), rows.len());
            prop_assert_eq!(t.is_empty(), rows.is_empty());
            let csv = t.to_csv();
            // Quoted cells embed no raw newlines here, so lines == rows+1.
            prop_assert_eq!(csv.lines().count(), rows.len() + 1);
            prop_assert!(csv.ends_with('\n'));
            Ok(())
        },
    );
}

#[test]
fn csv_quotes_exactly_the_cells_that_need_it() {
    check(
        "report::csv_quotes_exactly_the_cells_that_need_it",
        cfg(),
        gen_table_data,
        |(headers, rows)| {
            let t = build(headers, rows);
            let csv = t.to_csv();
            for (line, row) in csv.lines().skip(1).zip(rows) {
                for cell in row {
                    if cell.contains(',') || cell.contains('"') {
                        let quoted = format!("\"{}\"", cell.replace('"', "\"\""));
                        prop_assert!(
                            line.contains(&quoted),
                            "line {:?} missing quoted form of {:?}",
                            line,
                            cell
                        );
                    } else {
                        prop_assert!(line.contains(cell.as_str()));
                    }
                }
                // Unquoted commas delimit fields; a well-formed line has
                // at least cols-1 commas.
                prop_assert!(line.matches(',').count() >= headers.len() - 1);
            }
            Ok(())
        },
    );
}

#[test]
fn markdown_rows_align_and_contain_every_cell() {
    check(
        "report::markdown_rows_align_and_contain_every_cell",
        cfg(),
        gen_table_data,
        |(headers, rows)| {
            let t = build(headers, rows);
            let md = t.to_markdown();
            let lines: Vec<&str> = md.lines().collect();
            // header + separator + one line per row
            prop_assert_eq!(lines.len(), rows.len() + 2);
            // Column-aligned: every line is the same width and is piped.
            let width = lines[0].len();
            for line in &lines {
                prop_assert_eq!(line.len(), width);
                prop_assert!(line.starts_with('|') && line.ends_with('|'));
            }
            prop_assert!(lines[1].chars().all(|c| c == '|' || c == '-'));
            for (line, row) in lines.iter().skip(2).zip(rows) {
                for cell in row {
                    prop_assert!(line.contains(cell.as_str()));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn chart_renders_any_finite_points_without_panic() {
    check(
        "report::chart_renders_any_finite_points_without_panic",
        cfg(),
        |rng| (gen_points(rng), gen_points(rng), rng.coin(0.5)),
        |(a, b, log_x)| {
            let chart = AsciiChart::new("tradeoff", 40, 10)
                .log_x(*log_x)
                .axis_labels("compression", "Δ top-1")
                .series(ChartSeries::new("magnitude", a.clone()))
                .series(ChartSeries::new("random", b.clone()));
            let out = chart.render();
            prop_assert!(out.starts_with("== tradeoff ==\n"));
            if a.is_empty() && b.is_empty() {
                prop_assert!(out.contains("(no data)"));
            } else {
                // Legend and axes appear whenever there is data.
                prop_assert!(out.contains("magnitude") || out.contains("random"));
                prop_assert!(out.contains("compression"));
            }
            Ok(())
        },
    );
}

#[test]
fn chart_drops_non_finite_points_instead_of_failing() {
    check(
        "report::chart_drops_non_finite_points_instead_of_failing",
        cfg(),
        gen_points,
        |pts| {
            // Splice non-finite values into a copy; render must behave as
            // if they were absent.
            let mut dirty = pts.clone();
            dirty.push((f64::NAN, 1.0));
            dirty.push((2.0, f64::INFINITY));
            dirty.push((f64::NEG_INFINITY, f64::NAN));
            let clean_out = AsciiChart::new("t", 30, 8)
                .series(ChartSeries::new("s", pts.clone()))
                .render();
            let dirty_out = AsciiChart::new("t", 30, 8)
                .series(ChartSeries::new("s", dirty))
                .render();
            prop_assert_eq!(dirty_out, clean_out);
            Ok(())
        },
    );
}

#[test]
fn single_point_charts_render_with_padded_ranges() {
    check(
        "report::single_point_charts_render_with_padded_ranges",
        cfg(),
        |rng| {
            (
                rng.uniform(0.5, 100.0) as f64,
                rng.uniform(-50.0, 50.0) as f64,
            )
        },
        |&(x, y)| {
            // Degenerate x/y ranges are padded rather than dividing by
            // zero.
            let out = AsciiChart::new("point", 20, 6)
                .series(ChartSeries::new("s", vec![(x, y)]))
                .render();
            prop_assert!(out.starts_with("== point ==\n"));
            prop_assert!(!out.contains("(no data)"));
            prop_assert!(out.lines().count() > 3);
            Ok(())
        },
    );
}
