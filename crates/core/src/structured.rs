//! Structured (filter-level) pruning — the "structure" axis of the
//! paper's Section 2.3.
//!
//! Unstructured pruning produces element-sparse tensors that real dense
//! hardware cannot exploit directly; structured pruning removes whole
//! convolution filters (output channels), keeping the computation dense
//! (Li et al. 2016). This module provides:
//!
//! * [`prune_filters`] — exact filter-granular masking by smallest L1
//!   norm, the Li et al. heuristic;
//! * [`FilterNorm`] — a [`Strategy`] adapter so structured pruning can be
//!   swept by the same experiment harness as the unstructured baselines
//!   (each weight is scored by its filter's norm; at most one boundary
//!   filter per layer is split by the top-k cut).

use crate::strategy::{Scope, ScoreEntry, Strategy};
use sb_nn::{Network, ParamKind};
use sb_tensor::{Rng, Tensor};

/// Masks the fraction `prune_fraction` of each convolution's filters with
/// the smallest L1 norms (rounding down, so at least one filter always
/// survives). Linear weights and the classifier are untouched.
///
/// Returns the number of filters removed.
///
/// # Panics
///
/// Panics if `prune_fraction` is outside `[0, 1)`.
pub fn prune_filters(network: &mut dyn Network, prune_fraction: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&prune_fraction),
        "prune_fraction must be in [0, 1)"
    );
    let mut removed = 0usize;
    network.visit_params(&mut |p| {
        if p.kind() != ParamKind::ConvWeight {
            return;
        }
        let dims = p.value().dims().to_vec();
        let (filters, patch) = (dims[0], dims[1]);
        let mut norms: Vec<(usize, f32)> = (0..filters)
            .map(|f| {
                let row = &p.value().data()[f * patch..(f + 1) * patch];
                (f, row.iter().map(|v| v.abs()).sum())
            })
            .collect();
        norms.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let kill = ((filters as f64 * prune_fraction) as usize).min(filters - 1);
        let mut mask = Tensor::ones(&dims);
        for &(f, _) in norms.iter().take(kill) {
            for v in &mut mask.data_mut()[f * patch..(f + 1) * patch] {
                *v = 0.0;
            }
        }
        removed += kill;
        p.set_mask(mask);
    });
    removed
}

/// Filter-norm scoring as a [`Strategy`]: every weight inherits its
/// filter's mean absolute value, so layerwise top-k keeps whole filters
/// (up to one split boundary filter per layer). Non-convolutional weights
/// fall back to plain magnitude so the strategy composes with
/// fully-connected heads.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterNorm;

impl Strategy for FilterNorm {
    fn label(&self) -> String {
        "Filter Norm (structured)".to_string()
    }

    fn scope(&self) -> Scope {
        Scope::Layerwise
    }

    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        let dims = entry.value.dims();
        if dims.len() != 2 || !entry.name.contains("conv") {
            return entry.value.abs();
        }
        let (filters, patch) = (dims[0], dims[1]);
        let mut scores = Tensor::zeros(dims);
        for f in 0..filters {
            let row = &entry.value.data()[f * patch..(f + 1) * patch];
            let norm: f32 = row.iter().map(|v| v.abs()).sum::<f32>() / patch as f32;
            for v in &mut scores.data_mut()[f * patch..(f + 1) * patch] {
                *v = norm;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_metrics::ModelProfile;
    use sb_nn::models;
    use sb_tensor::Rng;

    #[test]
    fn prune_filters_removes_whole_rows() {
        let mut rng = Rng::seed_from(0);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        let removed = prune_filters(&mut net, 0.5);
        assert!(removed > 0);
        net.visit_params_ref(&mut |p| {
            if p.kind() != ParamKind::ConvWeight {
                return;
            }
            let dims = p.value().dims();
            let (filters, patch) = (dims[0], dims[1]);
            let mask = p.mask().expect("conv weights masked");
            for f in 0..filters {
                let row = &mask.data()[f * patch..(f + 1) * patch];
                let sum: f32 = row.iter().sum();
                assert!(
                    sum == 0.0 || sum == patch as f32,
                    "filter {f} partially masked"
                );
            }
        });
    }

    #[test]
    fn prune_filters_keeps_at_least_one() {
        let mut rng = Rng::seed_from(1);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        prune_filters(&mut net, 0.99);
        net.visit_params_ref(&mut |p| {
            if p.kind() == ParamKind::ConvWeight {
                assert!(p.effective_params() > 0);
            }
        });
    }

    #[test]
    fn structured_pruning_reduces_flops() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        prune_filters(&mut net, 0.5);
        let p = ModelProfile::measure(&net);
        assert!(p.theoretical_speedup() > 1.3);
    }

    #[test]
    fn filter_norm_scores_are_row_constant() {
        let mut rng = Rng::seed_from(3);
        let value = Tensor::rand_normal(&[4, 9], 0.0, 1.0, &mut rng);
        let entry = ScoreEntry {
            name: "stage1.conv1.weight",
            value: &value,
            grad: None,
        };
        let scores = FilterNorm.score(&entry, &mut rng);
        for f in 0..4 {
            let row = &scores.data()[f * 9..(f + 1) * 9];
            assert!(row.iter().all(|&v| v == row[0]));
        }
    }

    #[test]
    fn filter_norm_falls_back_to_magnitude_for_linear() {
        let mut rng = Rng::seed_from(4);
        let value = Tensor::from_slice(&[-1.0, 2.0]);
        let entry = ScoreEntry {
            name: "fc1.weight",
            value: &value,
            grad: None,
        };
        let scores = FilterNorm.score(&entry, &mut rng);
        assert_eq!(scores.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "prune_fraction")]
    fn full_fraction_rejected() {
        let mut rng = Rng::seed_from(5);
        let mut net = models::lenet5(1, 16, 10, &mut rng);
        prune_filters(&mut net, 1.0);
    }
}
