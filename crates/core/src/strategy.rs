//! The pruning-strategy abstraction and the paper's five baselines.

use sb_tensor::{Rng, Tensor};
use sb_json::json_enum;

/// Whether scores are ranked across the whole network or within each
/// parameter tensor (paper Section 2.3, "Scoring": local vs global
/// comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Rank all prunable weights against each other.
    Global,
    /// Rank weights within each tensor; every tensor keeps the same
    /// fraction.
    Layerwise,
}

json_enum!(Scope { Global, Layerwise });

/// A view of one prunable parameter handed to [`Strategy::score`].
#[derive(Debug)]
pub struct ScoreEntry<'a> {
    /// Parameter name.
    pub name: &'a str,
    /// Current weight values.
    pub value: &'a Tensor,
    /// Gradient evaluated on the scoring minibatch; `None` when the
    /// strategy declared it does not need gradients.
    pub grad: Option<&'a Tensor>,
}

/// A pruning heuristic: assigns a saliency score to every weight.
///
/// Higher score ⇒ more important ⇒ kept longer. This is the extension
/// point of the framework — ShrinkBench's design goal is that evaluating
/// a *new* method requires implementing exactly this trait (mirroring the
/// Python library's mask-callback API).
///
/// # Example: a custom "scaled magnitude" method
///
/// ```
/// use shrinkbench::{Scope, ScoreEntry, Strategy};
/// use sb_tensor::{Rng, Tensor};
///
/// struct ScaledMagnitude;
///
/// impl Strategy for ScaledMagnitude {
///     fn label(&self) -> String { "Scaled Magnitude".into() }
///     fn scope(&self) -> Scope { Scope::Global }
///     fn score(&self, entry: &ScoreEntry, _rng: &mut Rng) -> Tensor {
///         // Normalize each tensor's magnitudes by its own largest one.
///         let m = entry.value.abs();
///         let peak = m.max().max(1e-12);
///         m.scale(1.0 / peak)
///     }
/// }
/// ```
pub trait Strategy: Send {
    /// Human-readable method name used in reports and figure legends.
    fn label(&self) -> String;

    /// Global or layerwise ranking.
    fn scope(&self) -> Scope;

    /// Whether [`ScoreEntry::grad`] must be populated (the runner will
    /// evaluate one scoring minibatch before pruning, as in the paper's
    /// Appendix C.1).
    fn needs_gradients(&self) -> bool {
        false
    }

    /// Computes a score tensor with the same shape as `entry.value`.
    fn score(&self, entry: &ScoreEntry<'_>, rng: &mut Rng) -> Tensor;
}

/// **Global Magnitude Pruning** — "prunes the weights with the lowest
/// absolute value anywhere in the network" (Section 7.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalMagnitude;

impl Strategy for GlobalMagnitude {
    fn label(&self) -> String {
        "Global Weight".to_string()
    }
    fn scope(&self) -> Scope {
        Scope::Global
    }
    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        entry.value.abs()
    }
}

/// **Layerwise Magnitude Pruning** — "for each layer, prunes the weights
/// with the lowest absolute value" (Section 7.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerMagnitude;

impl Strategy for LayerMagnitude {
    fn label(&self) -> String {
        "Layer Weight".to_string()
    }
    fn scope(&self) -> Scope {
        Scope::Layerwise
    }
    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        entry.value.abs()
    }
}

/// **Global Gradient Magnitude Pruning** — "prunes the weights with the
/// lowest absolute value of (weight × gradient), evaluated on a batch of
/// inputs" (Section 7.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalGradient;

impl Strategy for GlobalGradient {
    fn label(&self) -> String {
        "Global Gradient".to_string()
    }
    fn scope(&self) -> Scope {
        Scope::Global
    }
    fn needs_gradients(&self) -> bool {
        true
    }
    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        let grad = entry
            .grad
            .expect("GlobalGradient requires gradients; the pruner must supply a scoring batch");
        (entry.value * grad).abs()
    }
}

/// **Layerwise Gradient Magnitude Pruning** — per-layer variant of
/// [`GlobalGradient`] (Section 7.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerGradient;

impl Strategy for LayerGradient {
    fn label(&self) -> String {
        "Layer Gradient".to_string()
    }
    fn scope(&self) -> Scope {
        Scope::Layerwise
    }
    fn needs_gradients(&self) -> bool {
        true
    }
    fn score(&self, entry: &ScoreEntry<'_>, _rng: &mut Rng) -> Tensor {
        let grad = entry
            .grad
            .expect("LayerGradient requires gradients; the pruner must supply a scoring batch");
        (entry.value * grad).abs()
    }
}

/// **Random Pruning** — "prunes each weight independently with
/// probability equal to the fraction of the network to be pruned"
/// (Section 7.2). With [`Scope::Global`] the kept fraction varies by
/// tensor; with [`Scope::Layerwise`] each tensor keeps the same fraction
/// (the "random pruning baseline with the same layerwise pruning
/// proportions" of the Appendix B checklist).
#[derive(Debug, Clone, Copy)]
pub struct RandomPruning {
    scope: Scope,
}

impl RandomPruning {
    /// Random pruning ranked globally.
    pub fn global() -> Self {
        RandomPruning { scope: Scope::Global }
    }

    /// Random pruning with per-layer proportions.
    pub fn layerwise() -> Self {
        RandomPruning {
            scope: Scope::Layerwise,
        }
    }
}

impl Strategy for RandomPruning {
    fn label(&self) -> String {
        match self.scope {
            Scope::Global => "Random".to_string(),
            Scope::Layerwise => "Random (layerwise)".to_string(),
        }
    }
    fn scope(&self) -> Scope {
        self.scope
    }
    fn score(&self, entry: &ScoreEntry<'_>, rng: &mut Rng) -> Tensor {
        Tensor::rand_uniform(entry.value.dims(), 0.0, 1.0, rng)
    }
}

/// Serializable identifier for the built-in strategies, used by
/// experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// [`GlobalMagnitude`].
    GlobalMagnitude,
    /// [`LayerMagnitude`].
    LayerMagnitude,
    /// [`GlobalGradient`].
    GlobalGradient,
    /// [`LayerGradient`].
    LayerGradient,
    /// [`RandomPruning::global`].
    Random,
    /// [`RandomPruning::layerwise`].
    RandomLayerwise,
    /// [`crate::structured::FilterNorm`] — structured filter pruning.
    FilterNorm,
}

json_enum!(StrategyKind {
    GlobalMagnitude,
    LayerMagnitude,
    GlobalGradient,
    LayerGradient,
    Random,
    RandomLayerwise,
    FilterNorm,
});

impl StrategyKind {
    /// All five baselines reported in the paper's Figure 7.
    pub const FIGURE7: [StrategyKind; 5] = [
        StrategyKind::GlobalMagnitude,
        StrategyKind::LayerMagnitude,
        StrategyKind::GlobalGradient,
        StrategyKind::LayerGradient,
        StrategyKind::Random,
    ];

    /// The four non-random baselines reported in the paper's Figure 6
    /// (ImageNet experiments omit random pruning).
    pub const FIGURE6: [StrategyKind; 4] = [
        StrategyKind::GlobalMagnitude,
        StrategyKind::LayerMagnitude,
        StrategyKind::GlobalGradient,
        StrategyKind::LayerGradient,
    ];

    /// Instantiates the strategy.
    pub fn build(&self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::GlobalMagnitude => Box::new(GlobalMagnitude),
            StrategyKind::LayerMagnitude => Box::new(LayerMagnitude),
            StrategyKind::GlobalGradient => Box::new(GlobalGradient),
            StrategyKind::LayerGradient => Box::new(LayerGradient),
            StrategyKind::Random => Box::new(RandomPruning::global()),
            StrategyKind::RandomLayerwise => Box::new(RandomPruning::layerwise()),
            StrategyKind::FilterNorm => Box::new(crate::structured::FilterNorm),
        }
    }

    /// The figure-legend label of the built strategy.
    pub fn label(&self) -> String {
        self.build().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_with<'a>(value: &'a Tensor, grad: Option<&'a Tensor>) -> ScoreEntry<'a> {
        ScoreEntry {
            name: "w",
            value,
            grad,
        }
    }

    #[test]
    fn magnitude_scores_are_absolute_values() {
        let v = Tensor::from_slice(&[-3.0, 1.0, -0.5]);
        let mut rng = Rng::seed_from(0);
        let s = GlobalMagnitude.score(&entry_with(&v, None), &mut rng);
        assert_eq!(s.data(), &[3.0, 1.0, 0.5]);
        let s2 = LayerMagnitude.score(&entry_with(&v, None), &mut rng);
        assert_eq!(s2.data(), s.data());
    }

    #[test]
    fn gradient_scores_multiply_weight_and_grad() {
        let v = Tensor::from_slice(&[2.0, -1.0]);
        let g = Tensor::from_slice(&[-0.5, -3.0]);
        let mut rng = Rng::seed_from(0);
        let s = GlobalGradient.score(&entry_with(&v, Some(&g)), &mut rng);
        assert_eq!(s.data(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "requires gradients")]
    fn gradient_strategy_without_grads_panics() {
        let v = Tensor::from_slice(&[1.0]);
        let mut rng = Rng::seed_from(0);
        GlobalGradient.score(&entry_with(&v, None), &mut rng);
    }

    #[test]
    fn random_scores_are_deterministic_per_rng() {
        let v = Tensor::zeros(&[8]);
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        let s1 = RandomPruning::global().score(&entry_with(&v, None), &mut r1);
        let s2 = RandomPruning::global().score(&entry_with(&v, None), &mut r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(StrategyKind::GlobalMagnitude.label(), "Global Weight");
        assert_eq!(StrategyKind::LayerMagnitude.label(), "Layer Weight");
        assert_eq!(StrategyKind::GlobalGradient.label(), "Global Gradient");
        assert_eq!(StrategyKind::LayerGradient.label(), "Layer Gradient");
        assert_eq!(StrategyKind::Random.label(), "Random");
    }

    #[test]
    fn needs_gradients_flags() {
        assert!(!GlobalMagnitude.needs_gradients());
        assert!(GlobalGradient.needs_gradients());
        assert!(LayerGradient.needs_gradients());
        assert!(!RandomPruning::global().needs_gradients());
    }

    #[test]
    fn kind_round_trips_through_json() {
        for kind in StrategyKind::FIGURE7 {
            let json = sb_json::to_string(&kind).unwrap();
            let back: StrategyKind = sb_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }
}
