#![warn(missing_docs)]

//! # shrinkbench — standardized neural-network pruning evaluation, in Rust
//!
//! A from-scratch reproduction of **ShrinkBench**, the framework introduced
//! by Blalock, Gonzalez Ortiz, Frankle & Guttag in *"What is the State of
//! Neural Network Pruning?"* (MLSys 2020). It provides:
//!
//! * **Pruning primitives** — binary masks over named parameters, score →
//!   mask conversion with global or layerwise ranking
//!   ([`masks`](crate::masks)), and compression-ratio targeting that
//!   accounts for unprunable parameters.
//! * **Baseline strategies** (paper Section 7.2) — global/layerwise
//!   magnitude pruning, global/layerwise gradient-magnitude pruning, and
//!   random pruning (global and layerwise-proportional), all implementing
//!   the open [`Strategy`] trait so user methods plug in identically.
//! * **Algorithm 1** (prune + fine-tune, Section 2.2) — one-shot and
//!   iterative schedules with early stopping
//!   ([`prune_and_finetune`]).
//! * **An experiment runner** — multi-seed sweeps over (dataset, model,
//!   strategy, compression) grids with deterministic seeding, JSON result
//!   persistence, and mean ± std aggregation ([`experiment`]).
//! * **Structured pruning** (Section 2.3's structure axis) — filter-level
//!   masks for convolutions ([`structured`]).
//!
//! # Quickstart
//!
//! ```no_run
//! use shrinkbench::{GlobalMagnitude, Pruner, PruneSettings};
//! use sb_nn::models;
//! use sb_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let mut net = models::lenet_300_100(256, 10, &mut rng);
//! let pruner = Pruner::new(PruneSettings::default());
//! let outcome = pruner.prune(&mut net, &GlobalMagnitude, 4.0, &mut rng)?;
//! println!("compression {:.2}×, speedup {:.2}×",
//!          outcome.compression_ratio, outcome.theoretical_speedup);
//! # Ok::<(), shrinkbench::PruneError>(())
//! ```

pub mod checklist;
pub mod experiment;
mod finetune;
pub mod masks;
mod pruner;
mod strategy;
pub mod structured;

pub use finetune::{
    prune_and_finetune, prune_and_retrain, FinetuneConfig, OptimizerKind, PruneFinetuneResult,
    ScheduleKind, WeightPolicy,
};
pub use pruner::{PruneError, PruneOutcome, PruneSettings, Pruner};
pub use strategy::{
    GlobalGradient, GlobalMagnitude, LayerGradient, LayerMagnitude, RandomPruning, Scope,
    ScoreEntry, Strategy, StrategyKind,
};
