//! Algorithm 1 of the paper: prune and fine-tune.
//!
//! ```text
//! W ← trainToConvergence(f(X; W))     (caller provides the trained net)
//! M ← 1^|W|
//! for i in 1..N:
//!     M ← prune(M, score(W))
//!     W ← fineTune(f(X; M ⊙ W))
//! return M, W
//! ```

use crate::pruner::{PruneError, PruneOutcome, Pruner, PruneSettings};
use crate::strategy::Strategy;
use sb_data::{batches_of, Split, SyntheticVision};
use sb_nn::{
    evaluate, Adam, EarlyStopping, EvalMetrics, LrSchedule, Network, NetworkExt, Optimizer, Sgd,
    TrainConfig, Trainer,
};
use sb_tensor::Rng;
use sb_json::{json_enum, json_struct, FromJson, Json, JsonError, ToJson};

/// Which optimizer fine-tuning (or pretraining) uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with Nesterov momentum 0.9 (the paper's ImageNet fine-tuning
    /// setup, Appendix C.2).
    SgdNesterov {
        /// Base learning rate.
        lr: f32,
    },
    /// Adam (the paper's CIFAR-10 fine-tuning setup, Appendix C.2).
    Adam {
        /// Base learning rate.
        lr: f32,
    },
}

impl ToJson for OptimizerKind {
    fn to_json(&self) -> Json {
        match self {
            OptimizerKind::SgdNesterov { lr } => Json::Obj(vec![(
                "SgdNesterov".to_string(),
                Json::Obj(vec![("lr".to_string(), lr.to_json())]),
            )]),
            OptimizerKind::Adam { lr } => Json::Obj(vec![(
                "Adam".to_string(),
                Json::Obj(vec![("lr".to_string(), lr.to_json())]),
            )]),
        }
    }
}

impl FromJson for OptimizerKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(body) = v.get("SgdNesterov") {
            return Ok(OptimizerKind::SgdNesterov {
                lr: sb_json::field(body, "lr")?,
            });
        }
        if let Some(body) = v.get("Adam") {
            return Ok(OptimizerKind::Adam {
                lr: sb_json::field(body, "lr")?,
            });
        }
        Err(JsonError::Mismatch {
            expected: "OptimizerKind variant (SgdNesterov or Adam)".to_string(),
            found: v.type_name().to_string(),
        })
    }
}

impl OptimizerKind {
    /// Instantiates the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::SgdNesterov { lr } => {
                Box::new(Sgd::new(lr).momentum(0.9).nesterov(true))
            }
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

/// One-shot vs iterative pruning (the "scheduling" axis of Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Prune to the target ratio in a single step, then fine-tune.
    OneShot,
    /// Prune in `iterations` geometric steps, fine-tuning between steps
    /// (Han et al. 2015 style).
    Iterative {
        /// Number of prune → fine-tune rounds.
        iterations: usize,
    },
}

impl ToJson for ScheduleKind {
    fn to_json(&self) -> Json {
        match self {
            ScheduleKind::OneShot => Json::Str("OneShot".to_string()),
            ScheduleKind::Iterative { iterations } => Json::Obj(vec![(
                "Iterative".to_string(),
                Json::Obj(vec![("iterations".to_string(), iterations.to_json())]),
            )]),
        }
    }
}

impl FromJson for ScheduleKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            if s == "OneShot" {
                return Ok(ScheduleKind::OneShot);
            }
            return Err(JsonError::UnknownVariant { name: s.clone() });
        }
        if let Some(body) = v.get("Iterative") {
            return Ok(ScheduleKind::Iterative {
                iterations: sb_json::field(body, "iterations")?,
            });
        }
        Err(JsonError::Mismatch {
            expected: "ScheduleKind variant (OneShot or Iterative)".to_string(),
            found: v.type_name().to_string(),
        })
    }
}

/// What weights training starts from after masks are installed — the
/// "fine-tuning" axis of the paper's Section 2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum WeightPolicy {
    /// Continue from the trained weights (the near-universal default).
    #[default]
    Finetune,
    /// Rewind surviving weights to their values at initialization
    /// (Frankle & Carbin 2019's lottery-ticket procedure). Requires the
    /// caller to supply the initialization snapshot.
    RewindToInit,
    /// Reinitialize surviving weights randomly and retrain from scratch
    /// with the mask fixed (Liu et al. 2019's "scratch" control).
    Reinitialize,
}

json_enum!(WeightPolicy { Finetune, RewindToInit, Reinitialize });

/// Configuration for [`prune_and_finetune`].
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Fine-tuning epochs (total across iterations).
    pub epochs: usize,
    /// Minibatch size for fine-tuning and scoring.
    pub batch_size: usize,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// One-shot or iterative pruning.
    pub schedule: ScheduleKind,
    /// Early-stopping patience (epochs); `None` disables.
    pub patience: Option<usize>,
    /// Whether the model consumes flattened `[N, D]` inputs (MLPs).
    pub flatten_input: bool,
    /// Whether to exclude the classifier layer from pruning.
    pub exclude_classifier: bool,
    /// What weights post-pruning training starts from. Defaults when the
    /// field is absent, so configs written before this axis existed still
    /// parse.
    pub weight_policy: WeightPolicy,
}

json_struct!(FinetuneConfig {
    epochs,
    batch_size,
    optimizer,
    schedule,
    patience,
    flatten_input,
    exclude_classifier;
    weight_policy
});

impl Default for FinetuneConfig {
    /// The paper's CIFAR-10 fine-tuning setup scaled to this substrate:
    /// Adam at `3e-4`, batch size 64, early stopping.
    fn default() -> Self {
        FinetuneConfig {
            epochs: 4,
            batch_size: 64,
            optimizer: OptimizerKind::Adam { lr: 3e-4 },
            schedule: ScheduleKind::OneShot,
            patience: Some(2),
            flatten_input: false,
            exclude_classifier: true,
            weight_policy: WeightPolicy::Finetune,
        }
    }
}

/// Everything measured from one prune + fine-tune run.
#[derive(Debug, Clone)]
pub struct PruneFinetuneResult {
    /// Compression requested.
    pub target_compression: f64,
    /// Compression achieved (all parameters counted).
    pub compression: f64,
    /// Theoretical speedup achieved.
    pub speedup: f64,
    /// Validation metrics immediately after pruning, before any
    /// fine-tuning.
    pub before_finetune: EvalMetrics,
    /// Validation metrics after fine-tuning.
    pub after_finetune: EvalMetrics,
    /// Number of fine-tuning epochs actually run.
    pub epochs_run: usize,
}

json_struct!(PruneFinetuneResult {
    target_compression,
    compression,
    speedup,
    before_finetune,
    after_finetune,
    epochs_run
});

/// Runs Algorithm 1 on an already-trained network.
///
/// The network is pruned with `strategy` to `target_compression` (in one
/// shot or geometrically over iterations per `config.schedule`) and
/// fine-tuned on `data`'s training split; metrics are reported on the
/// validation split. All randomness (batch order, scoring batch choice,
/// random pruning) flows from `rng`.
///
/// # Errors
///
/// Propagates [`PruneError`] from the pruning step.
pub fn prune_and_finetune(
    network: &mut dyn Network,
    strategy: &dyn Strategy,
    target_compression: f64,
    data: &SyntheticVision,
    config: &FinetuneConfig,
    rng: &mut Rng,
) -> Result<PruneFinetuneResult, PruneError> {
    prune_and_retrain(network, strategy, target_compression, data, config, None, rng)
}

/// [`prune_and_finetune`] with an explicit initialization snapshot, which
/// [`WeightPolicy::RewindToInit`] rewinds surviving weights to.
///
/// # Errors
///
/// Propagates [`PruneError`]; additionally requires `init_snapshot` when
/// the config selects `RewindToInit`.
///
/// # Panics
///
/// Panics if `RewindToInit` is requested without an `init_snapshot`.
pub fn prune_and_retrain(
    network: &mut dyn Network,
    strategy: &dyn Strategy,
    target_compression: f64,
    data: &SyntheticVision,
    config: &FinetuneConfig,
    init_snapshot: Option<&[sb_nn::ParamSnapshot]>,
    rng: &mut Rng,
) -> Result<PruneFinetuneResult, PruneError> {
    let val = batches_of(data, Split::Val, config.batch_size, None, config.flatten_input);
    let iterations = match config.schedule {
        ScheduleKind::OneShot => 1,
        ScheduleKind::Iterative { iterations } => iterations.max(1),
    };
    let epochs_per_iter = (config.epochs / iterations).max(1);

    let mut outcome: Option<PruneOutcome> = None;
    let mut before: Option<EvalMetrics> = None;
    let mut epochs_run = 0usize;

    for iter in 1..=iterations {
        // Geometric intermediate ratio: c^(i/N).
        let ratio = target_compression.powf(iter as f64 / iterations as f64);

        // Scoring batch for gradient strategies: one training minibatch.
        let score_batch = if strategy.needs_gradients() {
            let mut fork = rng.fork(0x5C0E);
            batches_of(data, Split::Train, config.batch_size, Some(&mut fork), config.flatten_input)
                .into_iter()
                .next()
        } else {
            None
        };
        let pruner = Pruner::new(PruneSettings {
            exclude_classifier: config.exclude_classifier,
            score_batch,
            monotone: true,
        });
        outcome = Some({
            let _prune = sb_trace::span("prune");
            pruner.prune(network, strategy, ratio, rng)?
        });

        if before.is_none() {
            before = Some(evaluate(network, &val));
        }

        // The fine-tuning axis (Section 2.3): where training resumes from.
        // Masks are preserved across the weight reset: collect them, swap
        // the weights, and re-install.
        match config.weight_policy {
            WeightPolicy::Finetune => {}
            WeightPolicy::RewindToInit => {
                let init = init_snapshot
                    .expect("WeightPolicy::RewindToInit requires an initialization snapshot");
                let mut masks: Vec<Option<sb_tensor::Tensor>> = Vec::new();
                network.visit_params_ref(&mut |p| masks.push(p.mask().cloned()));
                let mut i = 0usize;
                network.visit_params(&mut |p| {
                    assert_eq!(init[i].name, p.name(), "init snapshot order mismatch");
                    *p.value_mut() = init[i].value.clone();
                    if let Some(mask) = &masks[i] {
                        p.set_mask(mask.clone());
                    }
                    i += 1;
                });
            }
            WeightPolicy::Reinitialize => {
                let mut reinit_rng = rng.fork(0x12E1);
                network.visit_params(&mut |p| {
                    if p.kind().prunable_by_default() {
                        let dims = p.value().dims().to_vec();
                        let fan_in = dims.last().copied().unwrap_or(1).max(1);
                        *p.value_mut() =
                            sb_tensor::Tensor::kaiming_normal(&dims, fan_in, &mut reinit_rng);
                    }
                    p.apply_mask();
                });
            }
        }

        // Fine-tune with masks pinned (optimizer re-applies them).
        let mut optimizer = config.optimizer.build();
        let trainer = Trainer::new(TrainConfig {
            epochs: epochs_per_iter,
            schedule: LrSchedule::Fixed,
            early_stopping: config.patience.map(|p| EarlyStopping { patience: p }),
            restore_best: true,
        });
        let mut epoch_rng = rng.fork(iter as u64);
        let pre_finetune = network.snapshot();
        let _finetune = sb_trace::span("finetune");
        match trainer.fit(
            network,
            optimizer.as_mut(),
            |epoch| {
                let mut fork = epoch_rng.fork(epoch as u64);
                batches_of(
                    data,
                    Split::Train,
                    config.batch_size,
                    Some(&mut fork),
                    config.flatten_input,
                )
            },
            &val,
        ) {
            Ok(report) => epochs_run += report.epoch_losses.len(),
            Err(_diverged) => {
                // Fine-tuning blew up (non-finite activations). The run
                // is still a valid data point: fall back to the pruned,
                // un-fine-tuned network rather than aborting the grid.
                network.restore(&pre_finetune);
            }
        }
    }

    let outcome = outcome.expect("at least one iteration ran");
    let after = evaluate(network, &val);
    Ok(PruneFinetuneResult {
        target_compression,
        compression: outcome.compression_ratio,
        speedup: outcome.theoretical_speedup,
        before_finetune: before.expect("measured in first iteration"),
        after_finetune: after,
        epochs_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{GlobalMagnitude, RandomPruning};
    use sb_data::DatasetSpec;
    use sb_nn::models;

    fn quick_data() -> SyntheticVision {
        SyntheticVision::new(DatasetSpec::mnist_like(0).scaled_down(8))
    }

    fn pretrained(data: &SyntheticVision) -> impl Network {
        let mut rng = Rng::seed_from(0);
        let spec = data.spec();
        let mut net = models::mlp(spec.channels * spec.side * spec.side, &[32], spec.classes, &mut rng);
        let mut opt = Adam::new(1e-3);
        let trainer = Trainer::new(TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        });
        let mut erng = Rng::seed_from(1);
        trainer
            .fit(
                &mut net,
                &mut opt,
                |_| {
                    let mut fork = erng.fork(0);
                    batches_of(data, Split::Train, 32, Some(&mut fork), true)
                },
                &[],
            )
            .unwrap();
        net
    }

    fn quick_config() -> FinetuneConfig {
        FinetuneConfig {
            epochs: 2,
            batch_size: 32,
            flatten_input: true,
            patience: None,
            ..FinetuneConfig::default()
        }
    }

    #[test]
    fn finetune_recovers_accuracy_after_moderate_pruning() {
        let data = quick_data();
        let mut net = pretrained(&data);
        let mut rng = Rng::seed_from(2);
        let result = prune_and_finetune(
            &mut net,
            &GlobalMagnitude,
            2.0,
            &data,
            &quick_config(),
            &mut rng,
        )
        .unwrap();
        assert!((result.compression - 2.0).abs() < 0.1);
        assert!(
            result.after_finetune.top1 >= result.before_finetune.top1 - 0.05,
            "fine-tuning should not lose accuracy: {} -> {}",
            result.before_finetune.top1,
            result.after_finetune.top1
        );
    }

    #[test]
    fn magnitude_beats_random_at_high_compression() {
        let data = quick_data();
        let cfg = quick_config();
        let mut rng = Rng::seed_from(3);

        let mut net_mag = pretrained(&data);
        let r_mag =
            prune_and_finetune(&mut net_mag, &GlobalMagnitude, 8.0, &data, &cfg, &mut rng)
                .unwrap();
        let mut net_rand = pretrained(&data);
        let r_rand = prune_and_finetune(
            &mut net_rand,
            &RandomPruning::global(),
            8.0,
            &data,
            &cfg,
            &mut rng,
        )
        .unwrap();
        // Before fine-tuning, magnitude pruning should retain much more
        // accuracy than random pruning (the paper's most replicated
        // finding, Section 3.2).
        assert!(
            r_mag.before_finetune.top1 > r_rand.before_finetune.top1,
            "magnitude {} vs random {}",
            r_mag.before_finetune.top1,
            r_rand.before_finetune.top1
        );
    }

    #[test]
    fn iterative_schedule_reaches_target() {
        let data = quick_data();
        let mut net = pretrained(&data);
        let mut rng = Rng::seed_from(4);
        let cfg = FinetuneConfig {
            schedule: ScheduleKind::Iterative { iterations: 3 },
            epochs: 3,
            ..quick_config()
        };
        let result =
            prune_and_finetune(&mut net, &GlobalMagnitude, 8.0, &data, &cfg, &mut rng).unwrap();
        assert!((result.compression - 8.0).abs() / 8.0 < 0.05);
        assert!(result.epochs_run >= 3);
    }

    #[test]
    fn masks_survive_finetuning() {
        let data = quick_data();
        let mut net = pretrained(&data);
        let mut rng = Rng::seed_from(5);
        prune_and_finetune(&mut net, &GlobalMagnitude, 4.0, &data, &quick_config(), &mut rng)
            .unwrap();
        // Every masked weight must still be exactly zero.
        net.visit_params(&mut |p| {
            if let Some(mask) = p.mask() {
                let mask = mask.clone();
                for (v, m) in p.value().data().iter().zip(mask.data()) {
                    if *m == 0.0 {
                        assert_eq!(*v, 0.0);
                    }
                }
            }
        });
    }

    #[test]
    fn results_serialize() {
        let data = quick_data();
        let mut net = pretrained(&data);
        let mut rng = Rng::seed_from(6);
        let result =
            prune_and_finetune(&mut net, &GlobalMagnitude, 2.0, &data, &quick_config(), &mut rng)
                .unwrap();
        let json = sb_json::to_string(&result).unwrap();
        assert!(json.contains("compression"));
    }
}
