//! Score → mask conversion and compression-ratio targeting.
//!
//! These are the arithmetic heart of the framework: given saliency scores
//! for every prunable tensor and a desired compression ratio, decide
//! exactly which weights survive.

use crate::strategy::Scope;
use sb_tensor::Tensor;
use std::collections::BTreeMap;

/// Keep-fraction of *prunable* weights required to hit an overall
/// compression ratio `c`, given that `unprunable` parameters (biases,
/// batch norm, excluded classifier) always survive.
///
/// Solving `total / c = keep·prunable + unprunable` for `keep`. The result
/// is clamped to `[0, 1]`; a compression ratio so large that even pruning
/// every prunable weight cannot reach it yields `0.0` (the caller can
/// detect this by comparing achieved vs requested compression, mirroring
/// how real pruned models bottom out against their dense layers).
///
/// # Panics
///
/// Panics if `compression < 1` or `prunable == 0`.
pub fn keep_fraction_for_compression(
    prunable: usize,
    unprunable: usize,
    compression: f64,
) -> f64 {
    assert!(compression >= 1.0, "compression ratio must be ≥ 1");
    assert!(prunable > 0, "no prunable parameters");
    let total = (prunable + unprunable) as f64;
    let target_nonzero = total / compression;
    ((target_nonzero - unprunable as f64) / prunable as f64).clamp(0.0, 1.0)
}

/// Builds binary masks keeping the top-scoring fraction of weights.
///
/// * `scores`: per-tensor saliency scores (higher ⇒ kept), keyed by
///   parameter name. Entries already pruned must be scored `-∞` by the
///   caller if they must stay pruned.
/// * `keep_fraction`: fraction of all scored weights to keep.
/// * `scope`: [`Scope::Global`] ranks all weights together;
///   [`Scope::Layerwise`] splits the same global budget across tensors by
///   largest remainder, then ranks within each tensor.
///
/// Non-finite scores are never kept: the keep budget is capped to the
/// finite-score count, so an iterative schedule whose request exceeds the
/// remaining prunable budget saturates instead of resurrecting weights
/// the pruner pinned at `-∞`.
///
/// Deterministic: ties are broken by (name, index) order.
///
/// # Panics
///
/// Panics if `scores` is empty, any score is NaN, or `keep_fraction` is
/// outside `[0, 1]`.
pub fn masks_from_scores(
    scores: &BTreeMap<String, Tensor>,
    keep_fraction: f64,
    scope: Scope,
) -> BTreeMap<String, Tensor> {
    assert!(!scores.is_empty(), "no score tensors given");
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep_fraction {keep_fraction} outside [0, 1]"
    );
    for (name, s) in scores {
        assert!(
            !s.data().iter().any(|v| v.is_nan()),
            "scores for {name} contain NaN"
        );
    }
    match scope {
        Scope::Layerwise => {
            let counts = layerwise_keep_counts(scores, keep_fraction);
            scores
                .iter()
                .map(|(name, s)| (name.clone(), top_k_mask(s, counts[name])))
                .collect()
        }
        Scope::Global => {
            let total: usize = scores.values().map(Tensor::numel).sum();
            let mut all: Vec<f32> = Vec::with_capacity(total);
            for s in scores.values() {
                all.extend(s.data().iter().copied().filter(|v| v.is_finite()));
            }
            let k = round_count(total, keep_fraction).min(all.len());
            if k == 0 {
                return scores
                    .iter()
                    .map(|(n, s)| (n.clone(), Tensor::zeros(s.dims())))
                    .collect();
            }
            if k == all.len() {
                // The budget covers every keepable entry; the rest are
                // pinned pruned.
                return scores
                    .iter()
                    .map(|(n, s)| {
                        let mut mask = Tensor::zeros(s.dims());
                        for (i, &v) in s.data().iter().enumerate() {
                            if v.is_finite() {
                                mask.data_mut()[i] = 1.0;
                            }
                        }
                        (n.clone(), mask)
                    })
                    .collect();
            }
            // Threshold = k-th largest finite score overall.
            all.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN checked above"));
            let threshold = all[k - 1];
            // Keep strictly-above first, then fill remaining quota among
            // exact-threshold entries in deterministic (name, index) order.
            let above: usize = all[..k].iter().filter(|&&v| v > threshold).count();
            let mut tie_quota = k - above;
            scores
                .iter()
                .map(|(name, s)| {
                    let mut mask = Tensor::zeros(s.dims());
                    for (i, &v) in s.data().iter().enumerate() {
                        if !v.is_finite() {
                            continue;
                        }
                        if v > threshold {
                            mask.data_mut()[i] = 1.0;
                        } else if v == threshold && tie_quota > 0 {
                            mask.data_mut()[i] = 1.0;
                            tie_quota -= 1;
                        }
                    }
                    (name.clone(), mask)
                })
                .collect()
        }
    }
}

fn round_count(n: usize, fraction: f64) -> usize {
    ((n as f64 * fraction).round() as usize).min(n)
}

/// Largest-remainder split of the global keep budget across tensors.
///
/// Rounding `nᵢ·f` independently per tensor lets achieved compression
/// drift from requested by up to one weight *per tensor* — material when
/// a model has many small tensors. Instead the total budget
/// `round(total·f)` is fixed first, every tensor gets `⌊nᵢ·f⌋`, and the
/// leftover units go to the largest fractional remainders (ties broken by
/// name order), so the summed keep count equals the global target exactly.
fn layerwise_keep_counts(
    scores: &BTreeMap<String, Tensor>,
    fraction: f64,
) -> BTreeMap<String, usize> {
    let total: usize = scores.values().map(Tensor::numel).sum();
    let target = round_count(total, fraction);
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut remainders: Vec<(f64, &str)> = Vec::new();
    let mut allotted = 0usize;
    for (name, s) in scores {
        let exact = s.numel() as f64 * fraction;
        let base = (exact.floor() as usize).min(s.numel());
        allotted += base;
        counts.insert(name.clone(), base);
        if base < s.numel() {
            remainders.push((exact - base as f64, name));
        }
    }
    let mut leftover = target.saturating_sub(allotted);
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(b.1)));
    for (_, name) in remainders {
        if leftover == 0 {
            break;
        }
        *counts.get_mut(name).expect("inserted above") += 1;
        leftover -= 1;
    }
    debug_assert_eq!(leftover, 0, "keep budget exceeds distributable capacity");
    counts
}

/// Mask keeping the `k` highest-scoring finite entries of one tensor
/// (deterministic index-order tie-breaking). Non-finite scores are never
/// kept, so `k` saturates at the finite-score count.
fn top_k_mask(scores: &Tensor, k: usize) -> Tensor {
    let mut idx: Vec<usize> = (0..scores.numel())
        .filter(|&i| scores.data()[i].is_finite())
        .collect();
    let k = k.min(idx.len());
    let mut mask = Tensor::zeros(scores.dims());
    if k == 0 {
        return mask;
    }
    idx.sort_unstable_by(|&a, &b| {
        scores.data()[b]
            .partial_cmp(&scores.data()[a])
            .expect("NaN checked by caller")
            .then(a.cmp(&b))
    });
    for &i in &idx[..k] {
        mask.data_mut()[i] = 1.0;
    }
    mask
}

/// Count of kept (1.0) entries across a mask set.
pub fn kept_count(masks: &BTreeMap<String, Tensor>) -> usize {
    masks
        .values()
        .map(|m| m.data().iter().filter(|&&v| v == 1.0).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_of(pairs: &[(&str, &[f32])]) -> BTreeMap<String, Tensor> {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), Tensor::from_slice(v)))
            .collect()
    }

    #[test]
    fn keep_fraction_accounts_for_unprunable() {
        // 90 prunable + 10 unprunable, target 2× ⇒ keep 50 total ⇒ 40
        // prunable ⇒ 4/9.
        let f = keep_fraction_for_compression(90, 10, 2.0);
        assert!((f - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn keep_fraction_saturates_at_zero() {
        // 10 unprunable alone exceed total/c ⇒ keep nothing prunable.
        assert_eq!(keep_fraction_for_compression(90, 10, 100.0), 0.0);
    }

    #[test]
    fn keep_fraction_of_one_at_unit_compression() {
        assert_eq!(keep_fraction_for_compression(50, 50, 1.0), 1.0);
    }

    #[test]
    fn global_keeps_largest_across_tensors() {
        let scores = scores_of(&[("a", &[0.9, 0.1]), ("b", &[0.8, 0.2])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[1.0, 0.0]);
        assert_eq!(masks["b"].data(), &[1.0, 0.0]);
    }

    #[test]
    fn global_can_empty_a_whole_tensor() {
        let scores = scores_of(&[("a", &[0.9, 0.8]), ("b", &[0.1, 0.2])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[1.0, 1.0]);
        assert_eq!(masks["b"].data(), &[0.0, 0.0]);
    }

    #[test]
    fn layerwise_keeps_fraction_per_tensor() {
        let scores = scores_of(&[("a", &[0.9, 0.8, 0.0, 0.1]), ("b", &[0.1, 0.2, 0.3, 0.4])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Layerwise);
        assert_eq!(masks["a"].data(), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(masks["b"].data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn exact_count_kept_globally() {
        let scores = scores_of(&[("a", &[0.5, 0.4, 0.3]), ("b", &[0.2, 0.1, 0.05, 0.9])]);
        for f in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let masks = masks_from_scores(&scores, f, Scope::Global);
            assert_eq!(kept_count(&masks), (7.0 * f).round() as usize);
        }
    }

    #[test]
    fn ties_are_broken_deterministically_and_exactly() {
        // All-equal scores: exactly k survive, not all of them.
        let scores = scores_of(&[("a", &[1.0; 6])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(kept_count(&masks), 3);
        let again = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks, again);
    }

    #[test]
    fn neg_infinity_scores_never_survive() {
        let scores = scores_of(&[("a", &[f32::NEG_INFINITY, 0.5, f32::NEG_INFINITY, 0.1])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn keep_everything_and_nothing() {
        let scores = scores_of(&[("a", &[0.1, 0.2])]);
        assert_eq!(
            masks_from_scores(&scores, 1.0, Scope::Global)["a"].data(),
            &[1.0, 1.0]
        );
        assert_eq!(
            masks_from_scores(&scores, 0.0, Scope::Layerwise)["a"].data(),
            &[0.0, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        let scores = scores_of(&[("a", &[f32::NAN, 1.0])]);
        masks_from_scores(&scores, 0.5, Scope::Global);
    }

    #[test]
    fn budget_past_finite_count_never_resurrects_globally() {
        // Regression: k > finite-score count used to push the threshold to
        // -∞, and the tie-fill loop then re-kept pinned-pruned entries.
        let scores = scores_of(&[
            ("a", &[f32::NEG_INFINITY, 0.5, f32::NEG_INFINITY]),
            ("b", &[f32::NEG_INFINITY, 0.1]),
        ]);
        for f in [0.6, 0.8, 1.0] {
            let masks = masks_from_scores(&scores, f, Scope::Global);
            assert_eq!(masks["a"].data(), &[0.0, 1.0, 0.0], "keep={f}");
            assert_eq!(masks["b"].data(), &[0.0, 1.0], "keep={f}");
        }
    }

    #[test]
    fn budget_past_finite_count_never_resurrects_layerwise() {
        let scores = scores_of(&[("a", &[f32::NEG_INFINITY, 0.5, f32::NEG_INFINITY, 0.1])]);
        for f in [0.75, 1.0] {
            let masks = masks_from_scores(&scores, f, Scope::Layerwise);
            assert_eq!(masks["a"].data(), &[0.0, 1.0, 0.0, 1.0], "keep={f}");
        }
    }

    #[test]
    fn positive_infinity_scores_never_survive() {
        // "Never keep non-finite" covers +∞ too, not just the pruner's -∞.
        let scores = scores_of(&[("a", &[f32::INFINITY, 0.5, 0.1])]);
        for scope in [Scope::Global, Scope::Layerwise] {
            let masks = masks_from_scores(&scores, 0.5, scope);
            assert_eq!(masks["a"].data()[0], 0.0, "{scope:?}");
        }
    }

    #[test]
    fn layerwise_budget_matches_global_rounding() {
        // Five 3-element tensors at keep 0.5: per-tensor rounding would
        // keep 2 each (10 total, 67% achieved); the largest-remainder
        // split keeps round(15·0.5) = 8 exactly.
        let pairs: Vec<(String, Tensor)> = (0..5)
            .map(|i| (format!("t{i}"), Tensor::from_slice(&[0.3, 0.2, 0.1])))
            .collect();
        let scores: BTreeMap<String, Tensor> = pairs.into_iter().collect();
        let masks = masks_from_scores(&scores, 0.5, Scope::Layerwise);
        assert_eq!(kept_count(&masks), 8);
        // Deterministic: equal remainders break ties by name order, so the
        // first three tensors get the extra unit.
        for (i, (_, m)) in masks.iter().enumerate() {
            let kept = m.data().iter().filter(|&&v| v == 1.0).count();
            assert_eq!(kept, if i < 3 { 2 } else { 1 });
        }
    }

    #[test]
    fn layerwise_extra_units_follow_largest_remainder() {
        // t0: 5·0.7 = 3.5 (rem .5), t1: 3·0.7 = 2.1 (rem .1); target =
        // round(8·0.7) = 6 ⇒ bases 3+2, the leftover unit goes to t0.
        let scores = scores_of(&[("t0", &[5.0, 4.0, 3.0, 2.0, 1.0]), ("t1", &[0.3, 0.2, 0.1])]);
        let masks = masks_from_scores(&scores, 0.7, Scope::Layerwise);
        assert_eq!(masks["t0"].data(), &[1.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(masks["t1"].data(), &[1.0, 1.0, 0.0]);
    }
}
