//! Score → mask conversion and compression-ratio targeting.
//!
//! These are the arithmetic heart of the framework: given saliency scores
//! for every prunable tensor and a desired compression ratio, decide
//! exactly which weights survive.

use crate::strategy::Scope;
use sb_tensor::Tensor;
use std::collections::BTreeMap;

/// Keep-fraction of *prunable* weights required to hit an overall
/// compression ratio `c`, given that `unprunable` parameters (biases,
/// batch norm, excluded classifier) always survive.
///
/// Solving `total / c = keep·prunable + unprunable` for `keep`. The result
/// is clamped to `[0, 1]`; a compression ratio so large that even pruning
/// every prunable weight cannot reach it yields `0.0` (the caller can
/// detect this by comparing achieved vs requested compression, mirroring
/// how real pruned models bottom out against their dense layers).
///
/// # Panics
///
/// Panics if `compression < 1` or `prunable == 0`.
pub fn keep_fraction_for_compression(
    prunable: usize,
    unprunable: usize,
    compression: f64,
) -> f64 {
    assert!(compression >= 1.0, "compression ratio must be ≥ 1");
    assert!(prunable > 0, "no prunable parameters");
    let total = (prunable + unprunable) as f64;
    let target_nonzero = total / compression;
    ((target_nonzero - unprunable as f64) / prunable as f64).clamp(0.0, 1.0)
}

/// Builds binary masks keeping the top-scoring fraction of weights.
///
/// * `scores`: per-tensor saliency scores (higher ⇒ kept), keyed by
///   parameter name. Entries already pruned must be scored `-∞` by the
///   caller if they must stay pruned.
/// * `keep_fraction`: fraction of all scored weights to keep.
/// * `scope`: [`Scope::Global`] ranks all weights together;
///   [`Scope::Layerwise`] keeps `keep_fraction` of each tensor.
///
/// Deterministic: ties are broken by (name, index) order.
///
/// # Panics
///
/// Panics if `scores` is empty, any score is NaN, or `keep_fraction` is
/// outside `[0, 1]`.
pub fn masks_from_scores(
    scores: &BTreeMap<String, Tensor>,
    keep_fraction: f64,
    scope: Scope,
) -> BTreeMap<String, Tensor> {
    assert!(!scores.is_empty(), "no score tensors given");
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep_fraction {keep_fraction} outside [0, 1]"
    );
    for (name, s) in scores {
        assert!(
            !s.data().iter().any(|v| v.is_nan()),
            "scores for {name} contain NaN"
        );
    }
    match scope {
        Scope::Layerwise => scores
            .iter()
            .map(|(name, s)| {
                let k = round_count(s.numel(), keep_fraction);
                (name.clone(), top_k_mask(s, k))
            })
            .collect(),
        Scope::Global => {
            let total: usize = scores.values().map(Tensor::numel).sum();
            let k = round_count(total, keep_fraction);
            // Threshold = k-th largest score overall.
            let mut all: Vec<f32> = Vec::with_capacity(total);
            for s in scores.values() {
                all.extend_from_slice(s.data());
            }
            if k == 0 {
                return scores
                    .iter()
                    .map(|(n, s)| (n.clone(), Tensor::zeros(s.dims())))
                    .collect();
            }
            if k >= total {
                return scores
                    .iter()
                    .map(|(n, s)| (n.clone(), Tensor::ones(s.dims())))
                    .collect();
            }
            all.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN checked above"));
            let threshold = all[k - 1];
            // Keep strictly-above first, then fill remaining quota among
            // exact-threshold entries in deterministic (name, index) order.
            let above: usize = all[..k].iter().filter(|&&v| v > threshold).count();
            let mut tie_quota = k - above;
            scores
                .iter()
                .map(|(name, s)| {
                    let mut mask = Tensor::zeros(s.dims());
                    for (i, &v) in s.data().iter().enumerate() {
                        if v > threshold {
                            mask.data_mut()[i] = 1.0;
                        } else if v == threshold && tie_quota > 0 {
                            mask.data_mut()[i] = 1.0;
                            tie_quota -= 1;
                        }
                    }
                    (name.clone(), mask)
                })
                .collect()
        }
    }
}

fn round_count(n: usize, fraction: f64) -> usize {
    ((n as f64 * fraction).round() as usize).min(n)
}

/// Mask keeping the `k` highest-scoring entries of one tensor
/// (deterministic index-order tie-breaking).
fn top_k_mask(scores: &Tensor, k: usize) -> Tensor {
    let n = scores.numel();
    if k >= n {
        return Tensor::ones(scores.dims());
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores.data()[b]
            .partial_cmp(&scores.data()[a])
            .expect("NaN checked by caller")
            .then(a.cmp(&b))
    });
    let mut mask = Tensor::zeros(scores.dims());
    for &i in &idx[..k] {
        mask.data_mut()[i] = 1.0;
    }
    mask
}

/// Count of kept (1.0) entries across a mask set.
pub fn kept_count(masks: &BTreeMap<String, Tensor>) -> usize {
    masks
        .values()
        .map(|m| m.data().iter().filter(|&&v| v == 1.0).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_of(pairs: &[(&str, &[f32])]) -> BTreeMap<String, Tensor> {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), Tensor::from_slice(v)))
            .collect()
    }

    #[test]
    fn keep_fraction_accounts_for_unprunable() {
        // 90 prunable + 10 unprunable, target 2× ⇒ keep 50 total ⇒ 40
        // prunable ⇒ 4/9.
        let f = keep_fraction_for_compression(90, 10, 2.0);
        assert!((f - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn keep_fraction_saturates_at_zero() {
        // 10 unprunable alone exceed total/c ⇒ keep nothing prunable.
        assert_eq!(keep_fraction_for_compression(90, 10, 100.0), 0.0);
    }

    #[test]
    fn keep_fraction_of_one_at_unit_compression() {
        assert_eq!(keep_fraction_for_compression(50, 50, 1.0), 1.0);
    }

    #[test]
    fn global_keeps_largest_across_tensors() {
        let scores = scores_of(&[("a", &[0.9, 0.1]), ("b", &[0.8, 0.2])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[1.0, 0.0]);
        assert_eq!(masks["b"].data(), &[1.0, 0.0]);
    }

    #[test]
    fn global_can_empty_a_whole_tensor() {
        let scores = scores_of(&[("a", &[0.9, 0.8]), ("b", &[0.1, 0.2])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[1.0, 1.0]);
        assert_eq!(masks["b"].data(), &[0.0, 0.0]);
    }

    #[test]
    fn layerwise_keeps_fraction_per_tensor() {
        let scores = scores_of(&[("a", &[0.9, 0.8, 0.0, 0.1]), ("b", &[0.1, 0.2, 0.3, 0.4])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Layerwise);
        assert_eq!(masks["a"].data(), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(masks["b"].data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn exact_count_kept_globally() {
        let scores = scores_of(&[("a", &[0.5, 0.4, 0.3]), ("b", &[0.2, 0.1, 0.05, 0.9])]);
        for f in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let masks = masks_from_scores(&scores, f, Scope::Global);
            assert_eq!(kept_count(&masks), (7.0 * f).round() as usize);
        }
    }

    #[test]
    fn ties_are_broken_deterministically_and_exactly() {
        // All-equal scores: exactly k survive, not all of them.
        let scores = scores_of(&[("a", &[1.0; 6])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(kept_count(&masks), 3);
        let again = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks, again);
    }

    #[test]
    fn neg_infinity_scores_never_survive() {
        let scores = scores_of(&[("a", &[f32::NEG_INFINITY, 0.5, f32::NEG_INFINITY, 0.1])]);
        let masks = masks_from_scores(&scores, 0.5, Scope::Global);
        assert_eq!(masks["a"].data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn keep_everything_and_nothing() {
        let scores = scores_of(&[("a", &[0.1, 0.2])]);
        assert_eq!(
            masks_from_scores(&scores, 1.0, Scope::Global)["a"].data(),
            &[1.0, 1.0]
        );
        assert_eq!(
            masks_from_scores(&scores, 0.0, Scope::Layerwise)["a"].data(),
            &[0.0, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_rejected() {
        let scores = scores_of(&[("a", &[f32::NAN, 1.0])]);
        masks_from_scores(&scores, 0.5, Scope::Global);
    }
}
