//! The paper's Appendix B, as code: a report card that scores an
//! evaluation setup against the published best-practice checklist.
//!
//! The paper closes with a checklist reviewers should apply to pruning
//! papers. Because this framework *is* the experimental setup, most items
//! are decidable mechanically from an [`ExperimentConfig`] grid — so the
//! harness can refuse to call an evaluation complete when it would fail
//! the paper's own standards.

use crate::experiment::{DatasetKind, ExperimentConfig, RunRecord};
use crate::strategy::StrategyKind;
use sb_json::json_struct;

/// One checklist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecklistItem {
    /// The requirement, paraphrased from Appendix B.
    pub requirement: String,
    /// Whether the configuration satisfies it.
    pub satisfied: bool,
    /// What was found.
    pub detail: String,
}

json_struct!(ChecklistItem { requirement, satisfied, detail });

/// A scored checklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecklistReport {
    /// All evaluated items.
    pub items: Vec<ChecklistItem>,
}

json_struct!(ChecklistReport { items });

impl ChecklistReport {
    /// Number of satisfied items.
    pub fn satisfied(&self) -> usize {
        self.items.iter().filter(|i| i.satisfied).count()
    }

    /// True when every item passes.
    pub fn all_satisfied(&self) -> bool {
        self.satisfied() == self.items.len()
    }
}

impl std::fmt::Display for ChecklistReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "checklist: {}/{} satisfied", self.satisfied(), self.items.len())?;
        for item in &self.items {
            writeln!(
                f,
                "  [{}] {} — {}",
                if item.satisfied { "x" } else { " " },
                item.requirement,
                item.detail
            )?;
        }
        Ok(())
    }
}

fn item(requirement: &str, satisfied: bool, detail: String) -> ChecklistItem {
    ChecklistItem {
        requirement: requirement.to_string(),
        satisfied,
        detail,
    }
}

/// Scores one experiment grid (a single dataset/architecture pair)
/// against the per-experiment checklist items.
pub fn evaluate_experiment(config: &ExperimentConfig, records: &[RunRecord]) -> ChecklistReport {
    let mut items = Vec::new();

    let ratios: Vec<f64> = {
        let mut r = config.compressions.clone();
        r.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        r.dedup();
        r
    };
    let sweep = ratios.iter().filter(|&&c| c > 1.0).count();
    items.push(item(
        "data across ≥5 compression ratios, including extreme ones",
        sweep >= 5 || (sweep >= 4 && ratios.last().copied().unwrap_or(0.0) >= 16.0),
        format!("{sweep} pruned ratios up to {:?}×", ratios.last().copied().unwrap_or(1.0)),
    ));

    items.push(item(
        "multiple runs with separate random seeds",
        config.seeds.len() >= 3,
        format!("{} seeds", config.seeds.len()),
    ));

    items.push(item(
        "random pruning baseline included",
        config
            .strategies
            .iter()
            .any(|s| matches!(s, StrategyKind::Random | StrategyKind::RandomLayerwise)),
        format!("{} strategies", config.strategies.len()),
    ));

    items.push(item(
        "magnitude pruning baseline included",
        config
            .strategies
            .iter()
            .any(|s| matches!(s, StrategyKind::GlobalMagnitude | StrategyKind::LayerMagnitude)),
        format!("{:?}", config.strategies),
    ));

    items.push(item(
        "not a MNIST-scale-only evaluation",
        config.dataset != DatasetKind::MnistLike,
        config.dataset.label().to_string(),
    ));

    let has_dense_control = records
        .iter()
        .all(|r| r.pretrain_top1 > 0.0 || r.target_compression != 1.0)
        && !records.is_empty();
    items.push(item(
        "metrics reported for the unpruned control",
        has_dense_control,
        format!("{} records carry pretrain accuracy", records.len()),
    ));

    let both_metrics = records
        .iter()
        .all(|r| r.compression >= 1.0 && r.speedup >= 1.0 - 1e-9);
    items.push(item(
        "both compression ratio and theoretical speedup reported",
        both_metrics && !records.is_empty(),
        "RunRecord carries both by construction".to_string(),
    ));

    let both_accuracies = records.iter().all(|r| r.top5 >= r.top1);
    items.push(item(
        "both Top-1 and Top-5 accuracy reported",
        both_accuracies && !records.is_empty(),
        "RunRecord carries both by construction".to_string(),
    ));

    ChecklistReport { items }
}

/// Scores a whole evaluation campaign: the cross-experiment items
/// (≥3 dataset/architecture pairs, modern ones included).
pub fn evaluate_suite(configs: &[&ExperimentConfig]) -> ChecklistReport {
    let mut items = Vec::new();
    let mut pairs: Vec<(String, String)> = configs
        .iter()
        .map(|c| (c.dataset.label().to_string(), c.model.label()))
        .collect();
    pairs.sort();
    pairs.dedup();
    items.push(item(
        "≥3 (dataset, architecture) pairs evaluated",
        pairs.len() >= 3,
        format!("{} pairs: {pairs:?}", pairs.len()),
    ));
    let non_mnist = configs
        .iter()
        .filter(|c| c.dataset != DatasetKind::MnistLike)
        .count();
    items.push(item(
        "includes modern, large-scale configurations (not only MNIST/LeNet)",
        non_mnist >= 2,
        format!("{non_mnist} non-MNIST experiment grids"),
    ));
    ChecklistReport { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ModelKind, PretrainConfig};
    use crate::finetune::FinetuneConfig;

    fn good_config() -> ExperimentConfig {
        ExperimentConfig {
            id: "check".into(),
            dataset: DatasetKind::CifarLike,
            data_scale: 1,
            data_seed: 0,
            model: ModelKind::CifarVgg { base_width: 8 },
            strategies: vec![
                StrategyKind::GlobalMagnitude,
                StrategyKind::LayerMagnitude,
                StrategyKind::Random,
            ],
            compressions: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            seeds: vec![1, 2, 3],
            pretrain: PretrainConfig::default(),
            finetune: FinetuneConfig::default(),
        }
    }

    fn record(c: f64) -> RunRecord {
        RunRecord {
            experiment: "check".into(),
            strategy: "Global Weight".into(),
            target_compression: c,
            seed: 1,
            compression: c,
            speedup: c,
            top1: 0.8,
            top5: 0.95,
            top1_before_finetune: 0.5,
            pretrain_top1: 0.92,
            pretrain_top5: 0.99,
            realized_speedup: None,
            latency_us: None,
        }
    }

    #[test]
    fn compliant_config_passes_everything() {
        let records: Vec<RunRecord> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&c| record(c))
            .collect();
        let report = evaluate_experiment(&good_config(), &records);
        assert!(report.all_satisfied(), "{report}");
    }

    #[test]
    fn single_seed_fails_central_tendency_item() {
        let mut cfg = good_config();
        cfg.seeds = vec![1];
        let report = evaluate_experiment(&cfg, &[record(2.0)]);
        assert!(!report.all_satisfied());
        let failing = report
            .items
            .iter()
            .find(|i| i.requirement.contains("random seeds"))
            .unwrap();
        assert!(!failing.satisfied);
    }

    #[test]
    fn missing_random_baseline_is_flagged() {
        let mut cfg = good_config();
        cfg.strategies = vec![StrategyKind::GlobalMagnitude];
        let report = evaluate_experiment(&cfg, &[record(2.0)]);
        assert!(report
            .items
            .iter()
            .any(|i| i.requirement.contains("random pruning") && !i.satisfied));
    }

    #[test]
    fn mnist_only_evaluation_is_flagged() {
        let mut cfg = good_config();
        cfg.dataset = DatasetKind::MnistLike;
        let report = evaluate_experiment(&cfg, &[record(2.0)]);
        assert!(report
            .items
            .iter()
            .any(|i| i.requirement.contains("MNIST") && !i.satisfied));
    }

    #[test]
    fn suite_requires_three_pairs() {
        let a = good_config();
        let mut b = good_config();
        b.model = ModelKind::ResNetCifar { depth: 56, base_width: 4 };
        let mut c = good_config();
        c.dataset = DatasetKind::ImagenetLike;
        c.model = ModelKind::ResNet18 { base_width: 4 };
        let suite = evaluate_suite(&[&a, &b, &c]);
        assert!(suite.all_satisfied(), "{suite}");
        let too_small = evaluate_suite(&[&a]);
        assert!(!too_small.all_satisfied());
    }

    #[test]
    fn report_display_is_readable() {
        let report = evaluate_experiment(&good_config(), &[record(4.0)]);
        let text = report.to_string();
        assert!(text.contains("checklist:"));
        assert!(text.contains("[x]") || text.contains("[ ]"));
    }
}
