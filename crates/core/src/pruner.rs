//! The [`Pruner`]: applies a [`Strategy`] to a network at a target
//! compression ratio.

use crate::masks::{keep_fraction_for_compression, masks_from_scores};
use crate::strategy::{ScoreEntry, Strategy};
use sb_metrics::ModelProfile;
use sb_nn::{cross_entropy, Batch, Mode, Network, NetworkExt, OpInfo};
use sb_tensor::{Rng, Tensor};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Pruning-time policy knobs.
#[derive(Debug, Clone)]
pub struct PruneSettings {
    /// Exclude the final classifier weight from pruning (paper Appendix
    /// C.1: "we did not prune the classifier layer preceding the
    /// softmax"). Default `true`.
    pub exclude_classifier: bool,
    /// Scoring minibatch for gradient-based strategies ("a single
    /// minibatch is used to compute the gradients", Appendix C.1).
    pub score_batch: Option<Batch>,
    /// Keep already-pruned weights pruned when re-pruning (iterative
    /// schedules). Default `true`; setting `false` allows mask "reviving"
    /// (Section 4.1 credits this idea to Tresp et al. 1997).
    pub monotone: bool,
}

impl Default for PruneSettings {
    fn default() -> Self {
        PruneSettings {
            exclude_classifier: true,
            score_batch: None,
            monotone: true,
        }
    }
}

/// What a pruning application achieved.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Compression requested.
    pub target_compression: f64,
    /// Compression actually achieved (counts all parameters).
    pub compression_ratio: f64,
    /// Theoretical speedup achieved (ratio of multiply-adds).
    pub theoretical_speedup: f64,
    /// Full structural profile after pruning.
    pub profile: ModelProfile,
}

/// Errors from [`Pruner::prune`].
#[derive(Debug, Clone, PartialEq)]
pub enum PruneError {
    /// A gradient-based strategy was used without a scoring batch.
    MissingScoreBatch {
        /// Label of the offending strategy.
        strategy: String,
    },
    /// The requested compression is below 1.
    InvalidCompression {
        /// The offending value.
        requested: f64,
    },
    /// The network has no prunable parameters.
    NothingPrunable,
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::MissingScoreBatch { strategy } => write!(
                f,
                "strategy {strategy:?} needs gradients but no score batch was provided"
            ),
            PruneError::InvalidCompression { requested } => {
                write!(f, "compression ratio must be ≥ 1, got {requested}")
            }
            PruneError::NothingPrunable => write!(f, "network has no prunable parameters"),
        }
    }
}

impl Error for PruneError {}

/// Applies pruning strategies to networks.
#[derive(Debug, Clone, Default)]
pub struct Pruner {
    settings: PruneSettings,
}

impl Pruner {
    /// Creates a pruner with the given settings.
    pub fn new(settings: PruneSettings) -> Self {
        Pruner { settings }
    }

    /// The active settings.
    pub fn settings(&self) -> &PruneSettings {
        &self.settings
    }

    /// Name of the classifier weight (the weight of the last linear op),
    /// if any.
    fn classifier_weight(network: &dyn Network) -> Option<String> {
        network.ops().into_iter().rev().find_map(|op| match op {
            OpInfo::Linear { weight_name, .. } => Some(weight_name),
            OpInfo::Conv2d { .. } => None,
        })
    }

    /// Installs masks on `network` so that its overall compression ratio
    /// is (approximately) `compression`, choosing survivors according to
    /// `strategy`.
    ///
    /// The achieved ratio can fall short of an extreme request when the
    /// unprunable parameters alone exceed the target size; the outcome
    /// reports the achieved value.
    ///
    /// # Errors
    ///
    /// See [`PruneError`].
    pub fn prune(
        &self,
        network: &mut dyn Network,
        strategy: &dyn Strategy,
        compression: f64,
        rng: &mut Rng,
    ) -> Result<PruneOutcome, PruneError> {
        if !compression.is_finite() || compression < 1.0 {
            return Err(PruneError::InvalidCompression {
                requested: compression,
            });
        }
        let classifier = if self.settings.exclude_classifier {
            Self::classifier_weight(network)
        } else {
            None
        };

        // Gradient pass for gradient-based strategies.
        if strategy.needs_gradients() {
            let (x, labels) = self
                .settings
                .score_batch
                .as_ref()
                .ok_or_else(|| PruneError::MissingScoreBatch {
                    strategy: strategy.label(),
                })?;
            network.zero_grads();
            let logits = network.forward(x, Mode::Train);
            let out = cross_entropy(&logits, labels);
            network.backward(&out.grad_logits);
        }

        // Score every prunable tensor.
        let mut scores: BTreeMap<String, Tensor> = BTreeMap::new();
        let mut prunable = 0usize;
        let mut unprunable = 0usize;
        let monotone = self.settings.monotone;
        network.visit_params_ref(&mut |p| {
            if !p.kind().counts_as_parameter() {
                return; // running stats are neither prunable nor counted
            }
            let is_prunable =
                p.kind().prunable_by_default() && Some(p.name()) != classifier.as_deref();
            if !is_prunable {
                unprunable += p.numel();
                return;
            }
            prunable += p.numel();
            let entry = ScoreEntry {
                name: p.name(),
                value: p.value(),
                grad: strategy.needs_gradients().then(|| p.grad()),
            };
            let mut s = strategy.score(&entry, rng);
            assert_eq!(
                s.dims(),
                p.value().dims(),
                "strategy {:?} returned scores of wrong shape for {}",
                strategy.label(),
                p.name()
            );
            if monotone {
                if let Some(mask) = p.mask() {
                    for (sv, &mv) in s.data_mut().iter_mut().zip(mask.data()) {
                        if mv == 0.0 {
                            *sv = f32::NEG_INFINITY;
                        }
                    }
                }
            }
            scores.insert(p.name().to_string(), s);
        });
        if prunable == 0 {
            return Err(PruneError::NothingPrunable);
        }

        let keep = keep_fraction_for_compression(prunable, unprunable, compression);
        let masks = masks_from_scores(&scores, keep, strategy.scope());

        network.visit_params(&mut |p| {
            if let Some(mask) = masks.get(p.name()) {
                p.set_mask(mask.clone());
            }
        });

        let profile = ModelProfile::measure(network);
        Ok(PruneOutcome {
            target_compression: compression,
            compression_ratio: profile.compression_ratio(),
            theoretical_speedup: profile.theoretical_speedup(),
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{GlobalGradient, GlobalMagnitude, LayerMagnitude, RandomPruning};
    use sb_nn::models;

    fn net() -> impl Network {
        let mut rng = Rng::seed_from(0);
        models::lenet_300_100(64, 10, &mut rng)
    }

    #[test]
    fn hits_target_compression_within_tolerance() {
        let mut network = net();
        let mut rng = Rng::seed_from(1);
        for c in [2.0, 4.0, 8.0] {
            let mut fresh = net();
            let outcome = Pruner::default()
                .prune(&mut fresh, &GlobalMagnitude, c, &mut rng)
                .unwrap();
            assert!(
                (outcome.compression_ratio - c).abs() / c < 0.02,
                "target {c}, got {}",
                outcome.compression_ratio
            );
        }
        // Sanity: pruning the same network twice to increasing ratios.
        let o1 = Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 2.0, &mut rng)
            .unwrap();
        let o2 = Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 4.0, &mut rng)
            .unwrap();
        assert!(o2.compression_ratio > o1.compression_ratio);
    }

    #[test]
    fn classifier_is_excluded_by_default() {
        let mut network = net();
        let mut rng = Rng::seed_from(2);
        Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 16.0, &mut rng)
            .unwrap();
        network.visit_params_ref(&mut |p| {
            if p.name() == "fc3.weight" {
                assert!(p.mask().is_none(), "classifier should not be masked");
            }
            if p.name() == "fc1.weight" {
                assert!(p.mask().is_some());
            }
        });
    }

    #[test]
    fn classifier_can_be_included() {
        let mut network = net();
        let mut rng = Rng::seed_from(3);
        let pruner = Pruner::new(PruneSettings {
            exclude_classifier: false,
            ..PruneSettings::default()
        });
        pruner
            .prune(&mut network, &GlobalMagnitude, 16.0, &mut rng)
            .unwrap();
        network.visit_params_ref(&mut |p| {
            if p.name() == "fc3.weight" {
                assert!(p.mask().is_some());
            }
        });
    }

    #[test]
    fn magnitude_keeps_largest_weights() {
        let mut network = net();
        let mut rng = Rng::seed_from(4);
        Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 4.0, &mut rng)
            .unwrap();
        // Every surviving weight must be ≥ every pruned weight in
        // magnitude — check within one tensor (global threshold implies
        // per-tensor consistency).
        network.visit_params_ref(&mut |p| {
            if p.name() != "fc1.weight" {
                return;
            }
            let mask = p.mask().unwrap();
            let kept_min = p
                .value()
                .data()
                .iter()
                .zip(mask.data())
                .filter(|(_, &m)| m == 1.0)
                .map(|(&v, _)| v.abs())
                .fold(f32::INFINITY, f32::min);
            // Pruned entries were zeroed, so compare against the snapshot
            // through scores: pruned values are now zero, kept_min > 0.
            assert!(kept_min > 0.0);
        });
    }

    #[test]
    fn layerwise_prunes_same_fraction_per_layer() {
        let mut network = net();
        let mut rng = Rng::seed_from(5);
        Pruner::default()
            .prune(&mut network, &LayerMagnitude, 4.0, &mut rng)
            .unwrap();
        let mut fractions = Vec::new();
        network.visit_params_ref(&mut |p| {
            if p.mask().is_some() {
                fractions.push(p.effective_params() as f64 / p.numel() as f64);
            }
        });
        assert!(fractions.len() >= 2);
        let first = fractions[0];
        for f in &fractions {
            assert!((f - first).abs() < 0.02, "{fractions:?}");
        }
    }

    #[test]
    fn gradient_strategy_requires_batch() {
        let mut network = net();
        let mut rng = Rng::seed_from(6);
        let err = Pruner::default()
            .prune(&mut network, &GlobalGradient, 2.0, &mut rng)
            .unwrap_err();
        assert!(matches!(err, PruneError::MissingScoreBatch { .. }));
    }

    #[test]
    fn gradient_strategy_with_batch_works() {
        let mut network = net();
        let mut rng = Rng::seed_from(7);
        let batch = (Tensor::rand_normal(&[4, 64], 0.0, 1.0, &mut rng), vec![0, 1, 2, 3]);
        let pruner = Pruner::new(PruneSettings {
            score_batch: Some(batch),
            ..PruneSettings::default()
        });
        let outcome = pruner
            .prune(&mut network, &GlobalGradient, 4.0, &mut rng)
            .unwrap();
        assert!((outcome.compression_ratio - 4.0).abs() < 0.2);
    }

    #[test]
    fn monotone_repruning_never_revives() {
        let mut network = net();
        let mut rng = Rng::seed_from(8);
        Pruner::default()
            .prune(&mut network, &RandomPruning::global(), 4.0, &mut rng)
            .unwrap();
        let mut first_masks: BTreeMap<String, Vec<f32>> = BTreeMap::new();
        network.visit_params_ref(&mut |p| {
            if let Some(m) = p.mask() {
                first_masks.insert(p.name().to_string(), m.data().to_vec());
            }
        });
        Pruner::default()
            .prune(&mut network, &RandomPruning::global(), 8.0, &mut rng)
            .unwrap();
        network.visit_params_ref(&mut |p| {
            if let Some(m) = p.mask() {
                let old = &first_masks[p.name()];
                for (i, (&new_v, &old_v)) in m.data().iter().zip(old).enumerate() {
                    assert!(
                        !(new_v == 1.0 && old_v == 0.0),
                        "{}[{i}] was revived",
                        p.name()
                    );
                }
            }
        });
    }

    #[test]
    fn repruning_past_prunable_budget_never_revives() {
        // Regression: prune hard, then re-prune with a keep budget larger
        // than the surviving finite-score count (a looser ratio, and the
        // degenerate 1.0 "keep everything" request). The old global
        // tie-break pushed the threshold to -∞ and resurrected every
        // pinned-pruned weight.
        for (first, second) in [(8.0, 2.0), (8.0, 1.0), (16.0, 1.5)] {
            let mut network = net();
            let mut rng = Rng::seed_from(12);
            let o1 = Pruner::default()
                .prune(&mut network, &GlobalMagnitude, first, &mut rng)
                .unwrap();
            let mut first_masks: BTreeMap<String, Vec<f32>> = BTreeMap::new();
            network.visit_params_ref(&mut |p| {
                if let Some(m) = p.mask() {
                    first_masks.insert(p.name().to_string(), m.data().to_vec());
                }
            });
            let o2 = Pruner::default()
                .prune(&mut network, &GlobalMagnitude, second, &mut rng)
                .unwrap();
            // Monotone: compression saturates at the first pass's level
            // instead of dropping back toward the looser request.
            assert!(
                o2.compression_ratio >= o1.compression_ratio * 0.999,
                "{first}→{second}: {} fell below {}",
                o2.compression_ratio,
                o1.compression_ratio
            );
            network.visit_params_ref(&mut |p| {
                if let Some(m) = p.mask() {
                    let old = &first_masks[p.name()];
                    for (i, (&new_v, &old_v)) in m.data().iter().zip(old).enumerate() {
                        assert!(
                            !(new_v == 1.0 && old_v == 0.0),
                            "{first}→{second}: {}[{i}] was revived",
                            p.name()
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn invalid_compression_rejected() {
        let mut network = net();
        let mut rng = Rng::seed_from(9);
        let err = Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 0.5, &mut rng)
            .unwrap_err();
        assert!(matches!(err, PruneError::InvalidCompression { .. }));
    }

    #[test]
    fn extreme_compression_saturates_gracefully() {
        let mut network = net();
        let mut rng = Rng::seed_from(10);
        let outcome = Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 1e9, &mut rng)
            .unwrap();
        // Achieved compression is bounded by the dense remainder.
        assert!(outcome.compression_ratio < 1e9);
        assert!(outcome.compression_ratio > 10.0);
    }

    #[test]
    fn unit_compression_keeps_everything() {
        let mut network = net();
        let mut rng = Rng::seed_from(11);
        let outcome = Pruner::default()
            .prune(&mut network, &GlobalMagnitude, 1.0, &mut rng)
            .unwrap();
        assert!((outcome.compression_ratio - 1.0).abs() < 1e-9);
        assert!((outcome.theoretical_speedup - 1.0).abs() < 1e-9);
    }
}
