//! Multi-seed experiment orchestration: the part of ShrinkBench that
//! "compute[s] metrics across many models, datasets, random seeds, and
//! levels of pruning" (paper Section 7.1).
//!
//! An [`ExperimentConfig`] fully determines a result grid: datasets and
//! pretrained weights are derived from fixed seeds, and each
//! (strategy, compression, seed) cell reruns Algorithm 1 from the same
//! pretrained snapshot. Results persist as JSON so figures can be
//! regenerated without recomputation.

use crate::finetune::{prune_and_retrain, FinetuneConfig, OptimizerKind};
use crate::strategy::StrategyKind;
use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_metrics::{mean_std, MeanStd};
use sb_nn::{
    evaluate, models, EarlyStopping, EvalMetrics, LrSchedule, NetworkExt, ParamSnapshot,
    TrainConfig, Trainer,
};
use sb_runtime::{JobQueue, JobSpec};
use sb_tensor::Rng;
use sb_json::{json_enum, json_struct, FromJson, Json, JsonError, ToJson};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which synthetic dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// [`DatasetSpec::mnist_like`].
    MnistLike,
    /// [`DatasetSpec::cifar_like`].
    CifarLike,
    /// [`DatasetSpec::imagenet_like`].
    ImagenetLike,
}

json_enum!(DatasetKind { MnistLike, CifarLike, ImagenetLike });

impl DatasetKind {
    /// Materializes the spec, shrunken by `scale` (1 = full size).
    pub fn spec(&self, scale: usize, seed: u64) -> DatasetSpec {
        let base = match self {
            DatasetKind::MnistLike => DatasetSpec::mnist_like(seed),
            DatasetKind::CifarLike => DatasetSpec::cifar_like(seed),
            DatasetKind::ImagenetLike => DatasetSpec::imagenet_like(seed),
        };
        if scale > 1 {
            base.scaled_down(scale)
        } else {
            base
        }
    }

    /// Display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST-like",
            DatasetKind::CifarLike => "CIFAR-like",
            DatasetKind::ImagenetLike => "ImageNet-like",
        }
    }
}

/// Which architecture an experiment prunes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// [`models::lenet_300_100`].
    Lenet300_100,
    /// [`models::lenet5`].
    Lenet5,
    /// [`models::cifar_vgg`] at the given stem width.
    CifarVgg {
        /// Stage-1 channel count (original: 64).
        base_width: usize,
    },
    /// [`models::cifar_vgg_variant`] — the dropout/smaller-head variant
    /// used by the architecture-ambiguity experiment.
    CifarVggVariant {
        /// Stage-1 channel count.
        base_width: usize,
    },
    /// [`models::resnet_cifar`] of the given depth and stem width.
    ResNetCifar {
        /// Depth `6n + 2` (20, 56, 110, ...).
        depth: usize,
        /// Stem channel count (original: 16).
        base_width: usize,
    },
    /// [`models::resnet18`] at the given stem width.
    ResNet18 {
        /// Stem channel count (original: 64).
        base_width: usize,
    },
}

impl ToJson for ModelKind {
    fn to_json(&self) -> Json {
        // Externally tagged, matching the layout the previous serde-based
        // format wrote: unit variants as strings, payload variants as
        // single-key objects.
        let tagged = |name: &str, fields: Vec<(String, Json)>| {
            Json::Obj(vec![(name.to_string(), Json::Obj(fields))])
        };
        match self {
            ModelKind::Lenet300_100 => Json::Str("Lenet300_100".to_string()),
            ModelKind::Lenet5 => Json::Str("Lenet5".to_string()),
            ModelKind::CifarVgg { base_width } => tagged(
                "CifarVgg",
                vec![("base_width".to_string(), base_width.to_json())],
            ),
            ModelKind::CifarVggVariant { base_width } => tagged(
                "CifarVggVariant",
                vec![("base_width".to_string(), base_width.to_json())],
            ),
            ModelKind::ResNetCifar { depth, base_width } => tagged(
                "ResNetCifar",
                vec![
                    ("depth".to_string(), depth.to_json()),
                    ("base_width".to_string(), base_width.to_json()),
                ],
            ),
            ModelKind::ResNet18 { base_width } => tagged(
                "ResNet18",
                vec![("base_width".to_string(), base_width.to_json())],
            ),
        }
    }
}

impl FromJson for ModelKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "Lenet300_100" => Ok(ModelKind::Lenet300_100),
                "Lenet5" => Ok(ModelKind::Lenet5),
                other => Err(JsonError::UnknownVariant {
                    name: other.to_string(),
                }),
            };
        }
        if let Some(body) = v.get("CifarVgg") {
            return Ok(ModelKind::CifarVgg {
                base_width: sb_json::field(body, "base_width")?,
            });
        }
        if let Some(body) = v.get("CifarVggVariant") {
            return Ok(ModelKind::CifarVggVariant {
                base_width: sb_json::field(body, "base_width")?,
            });
        }
        if let Some(body) = v.get("ResNetCifar") {
            return Ok(ModelKind::ResNetCifar {
                depth: sb_json::field(body, "depth")?,
                base_width: sb_json::field(body, "base_width")?,
            });
        }
        if let Some(body) = v.get("ResNet18") {
            return Ok(ModelKind::ResNet18 {
                base_width: sb_json::field(body, "base_width")?,
            });
        }
        Err(JsonError::Mismatch {
            expected: "ModelKind variant".to_string(),
            found: v.type_name().to_string(),
        })
    }
}

impl ModelKind {
    /// Builds the network for `spec`, seeding weights from `weights_rng`.
    pub fn build(&self, spec: &DatasetSpec, weights_rng: &mut Rng) -> models::Model {
        match self {
            ModelKind::Lenet300_100 => models::lenet_300_100(
                spec.channels * spec.side * spec.side,
                spec.classes,
                weights_rng,
            ),
            ModelKind::Lenet5 => models::lenet5(spec.channels, spec.side, spec.classes, weights_rng),
            ModelKind::CifarVgg { base_width } => {
                models::cifar_vgg(spec.channels, spec.side, spec.classes, *base_width, weights_rng)
            }
            ModelKind::CifarVggVariant { base_width } => models::cifar_vgg_variant(
                spec.channels,
                spec.side,
                spec.classes,
                *base_width,
                weights_rng,
            ),
            ModelKind::ResNetCifar { depth, base_width } => models::resnet_cifar(
                *depth,
                spec.channels,
                spec.side,
                spec.classes,
                *base_width,
                weights_rng,
            ),
            ModelKind::ResNet18 { base_width } => {
                models::resnet18(spec.channels, spec.side, spec.classes, *base_width, weights_rng)
            }
        }
    }

    /// Whether the architecture consumes flattened `[N, D]` inputs.
    pub fn flatten_input(&self) -> bool {
        matches!(self, ModelKind::Lenet300_100)
    }

    /// Display name used in reports.
    pub fn label(&self) -> String {
        match self {
            ModelKind::Lenet300_100 => "LeNet-300-100".to_string(),
            ModelKind::Lenet5 => "LeNet-5".to_string(),
            ModelKind::CifarVgg { .. } => "CIFAR-VGG".to_string(),
            // Deliberately the same display label as the base model —
            // that is Section 5.1's point.
            ModelKind::CifarVggVariant { .. } => "CIFAR-VGG".to_string(),
            ModelKind::ResNetCifar { depth, .. } => format!("ResNet-{depth}"),
            ModelKind::ResNet18 { .. } => "ResNet-18".to_string(),
        }
    }
}

/// How the initial ("pretrained") model is obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainConfig {
    /// Training epochs to convergence.
    pub epochs: usize,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for weight initialization and batch order (fixing it gives
    /// the standardized pretrained weights ShrinkBench ships).
    pub weights_seed: u64,
    /// Early-stopping patience, if any.
    pub patience: Option<usize>,
}

json_struct!(PretrainConfig { epochs, optimizer, batch_size, weights_seed, patience });

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            epochs: 20,
            optimizer: OptimizerKind::Adam { lr: 1e-3 },
            batch_size: 64,
            weights_seed: 0xA11CE,
            patience: Some(4),
        }
    }
}

/// A full experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Unique identifier (cache key and report title).
    pub id: String,
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Dataset shrink divisor (1 = preset size).
    pub data_scale: usize,
    /// Dataset generation seed.
    pub data_seed: u64,
    /// Architecture.
    pub model: ModelKind,
    /// Pruning strategies to sweep.
    pub strategies: Vec<StrategyKind>,
    /// Target compression ratios (the paper recommends
    /// `{2, 4, 8, 16, 32}`; 1 is allowed as the dense control).
    pub compressions: Vec<f64>,
    /// Random seeds (paper: three per CIFAR configuration).
    pub seeds: Vec<u64>,
    /// Pretraining recipe.
    pub pretrain: PretrainConfig,
    /// Fine-tuning recipe.
    pub finetune: FinetuneConfig,
}

json_struct!(ExperimentConfig {
    id,
    dataset,
    data_scale,
    data_seed,
    model,
    strategies,
    compressions,
    seeds,
    pretrain,
    finetune
});

/// One grid cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Experiment id this record belongs to.
    pub experiment: String,
    /// Strategy legend label.
    pub strategy: String,
    /// Requested compression.
    pub target_compression: f64,
    /// Run seed.
    pub seed: u64,
    /// Achieved compression ratio.
    pub compression: f64,
    /// Achieved theoretical speedup.
    pub speedup: f64,
    /// Validation Top-1 after fine-tuning.
    pub top1: f32,
    /// Validation Top-5 after fine-tuning.
    pub top5: f32,
    /// Validation Top-1 after pruning, before fine-tuning.
    pub top1_before_finetune: f32,
    /// Pretrained (dense) model's validation Top-1 — the control the
    /// paper insists on reporting.
    pub pretrain_top1: f32,
    /// Pretrained model's validation Top-5.
    pub pretrain_top5: f32,
    /// Wall-clock speedup of the `sb-infer`-compiled pruned model over
    /// the dense-compiled baseline; `None` when the runner did not
    /// measure latency (the default — timing is machine-dependent and
    /// would break record-level reproducibility).
    pub realized_speedup: Option<f64>,
    /// Median compiled-forward latency per evaluation batch, in
    /// microseconds; `None` when latency was not measured.
    pub latency_us: Option<f64>,
}

json_struct!(RunRecord {
    experiment,
    strategy,
    target_compression,
    seed,
    compression,
    speedup,
    top1,
    top5,
    top1_before_finetune,
    pretrain_top1,
    pretrain_top5,
    realized_speedup,
    latency_us
});

/// Mean ± std summary of one (strategy, compression) cell across seeds.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Strategy legend label.
    pub strategy: String,
    /// Requested compression.
    pub target_compression: f64,
    /// Achieved compression across seeds.
    pub compression: MeanStd,
    /// Achieved speedup across seeds.
    pub speedup: MeanStd,
    /// Top-1 after fine-tuning.
    pub top1: MeanStd,
    /// Top-5 after fine-tuning.
    pub top5: MeanStd,
    /// Realized (wall-clock) speedup across the seeds that measured it;
    /// `None` when no record in the cell carries latency data.
    pub realized_speedup: Option<MeanStd>,
    /// Median compiled-forward latency across measuring seeds (µs).
    pub latency_us: Option<MeanStd>,
}

json_struct!(CellSummary {
    strategy,
    target_compression,
    compression,
    speedup,
    top1,
    top5,
    realized_speedup,
    latency_us
});

/// Executes experiment grids with JSON result caching.
#[derive(Debug, Clone, Default)]
pub struct ExperimentRunner {
    /// Directory for cached results; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Print per-cell progress to stderr.
    pub verbose: bool,
    /// Also compile each pruned model with `sb-infer` and record its
    /// wall-clock latency and realized speedup over a dense-compiled
    /// baseline. Off by default: timings are machine-dependent, so
    /// enabling this intentionally gives up byte-identical re-runs of
    /// the record stream (the deterministic fields are unaffected).
    pub measure_latency: bool,
}

struct CacheFile {
    config: ExperimentConfig,
    records: Vec<RunRecord>,
}

json_struct!(CacheFile { config, records });

/// One persisted grid cell: the record plus the fingerprint of the
/// configuration it was computed under, so a cell file left behind by a
/// *different* grid definition can never be resumed by mistake.
struct CellCacheFile {
    fingerprint: String,
    record: RunRecord,
}

json_struct!(CellCacheFile { fingerprint, record });

/// Outcome of a grid run, including how much of it was resumed from the
/// per-cell cache rather than recomputed.
#[derive(Debug, Clone)]
pub struct GridRunSummary {
    /// One record per (strategy, compression, seed) cell, in grid order.
    pub records: Vec<RunRecord>,
    /// Cells loaded from cache (whole-grid or per-cell) without training.
    pub resumed: usize,
    /// Cells actually computed in this run.
    pub computed: usize,
}

/// FNV-1a 64-bit over the config's canonical JSON, as a hex string.
/// (Hex rather than a JSON number: sb-json numbers are f64-backed, which
/// cannot represent every u64 exactly.)
fn config_fingerprint(config: &ExperimentConfig) -> String {
    let text = sb_json::to_string(config).expect("config serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

impl ExperimentRunner {
    /// Creates a runner caching into `dir`.
    pub fn with_cache(dir: impl Into<PathBuf>) -> Self {
        ExperimentRunner {
            cache_dir: Some(dir.into()),
            verbose: false,
            measure_latency: false,
        }
    }

    fn cache_path(&self, id: &str) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(format!("{id}.json")))
    }

    /// Pretrains the experiment's model on its dataset, returning the
    /// network, its validation metrics, and the snapshot reused by every
    /// grid cell.
    pub fn pretrain(
        config: &ExperimentConfig,
        data: &SyntheticVision,
    ) -> (models::Model, EvalMetrics, Vec<ParamSnapshot>) {
        let (net, metrics, trained, _init) = Self::pretrain_with_init(config, data);
        (net, metrics, trained)
    }

    /// Like [`ExperimentRunner::pretrain`], additionally returning the
    /// snapshot taken *before* training — the rewind target for
    /// lottery-ticket-style weight policies.
    pub fn pretrain_with_init(
        config: &ExperimentConfig,
        data: &SyntheticVision,
    ) -> (
        models::Model,
        EvalMetrics,
        Vec<ParamSnapshot>,
        Vec<ParamSnapshot>,
    ) {
        let mut weights_rng = Rng::seed_from(config.pretrain.weights_seed);
        let mut net = config.model.build(data.spec(), &mut weights_rng);
        let init_snapshot = net.snapshot();
        let flatten = config.model.flatten_input();
        let val = batches_of(data, Split::Val, config.pretrain.batch_size, None, flatten);
        let mut optimizer = config.pretrain.optimizer.build();
        let trainer = Trainer::new(TrainConfig {
            epochs: config.pretrain.epochs,
            schedule: LrSchedule::Fixed,
            early_stopping: config
                .pretrain
                .patience
                .map(|p| EarlyStopping { patience: p }),
            restore_best: true,
        });
        let mut epoch_rng = Rng::seed_from(config.pretrain.weights_seed ^ 0x0E90C4);
        trainer
            .fit(
                &mut net,
                optimizer.as_mut(),
                |epoch| {
                    let mut fork = epoch_rng.fork(epoch as u64);
                    batches_of(
                        data,
                        Split::Train,
                        config.pretrain.batch_size,
                        Some(&mut fork),
                        flatten,
                    )
                },
                &val,
            )
            .unwrap_or_else(|d| panic!("pretraining diverged: {d}"));
        let metrics = evaluate(&mut net, &val);
        let snapshot = net.snapshot();
        (net, metrics, snapshot, init_snapshot)
    }

    /// Runs (or loads from cache) the full grid.
    pub fn run(&self, config: &ExperimentConfig) -> Vec<RunRecord> {
        self.run_with_summary(config).records
    }

    /// Runs the grid, reporting how many cells were resumed from cache.
    ///
    /// Cells are submitted to a [`JobQueue`] in grid order (strategy ×
    /// compression × seed) and joined in that same order, so the record
    /// vector — and everything serialized from it — is identical for any
    /// `SB_RUNTIME_THREADS`. Each cell is a pure function of the config:
    /// the model is rebuilt from `weights_seed` and restored from the
    /// pretrained snapshot inside the job, so no RNG or parameter state
    /// leaks between cells regardless of execution order.
    ///
    /// With a cache directory set, every finished cell is persisted as
    /// `{id}.cells/cell-s{si}-c{ci}-r{wi}.json` tagged with the config's
    /// fingerprint; an interrupted grid rerun loads those cells instead of
    /// retraining them.
    pub fn run_with_summary(&self, config: &ExperimentConfig) -> GridRunSummary {
        let summary = {
            let _grid = sb_trace::span_with(|| format!("grid:{}", config.id));
            self.run_grid(config)
        };
        // The grid span is closed (and this thread's buffers flushed), so
        // the snapshot below contains everything the grid recorded.
        if sb_trace::enabled() {
            if let Some(dir) = &self.cache_dir {
                let trace = sb_trace::report().subtree(&format!("grid:{}", config.id));
                let _ = fs::create_dir_all(dir);
                if let Ok(json) = sb_json::to_string_pretty(&trace) {
                    let _ = fs::write(dir.join(format!("{}.trace.json", config.id)), json);
                }
                let _ = fs::write(
                    dir.join(format!("{}.flame.txt", config.id)),
                    trace.flamegraph(),
                );
            }
        }
        summary
    }

    fn run_grid(&self, config: &ExperimentConfig) -> GridRunSummary {
        if let Some(path) = self.cache_path(&config.id) {
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(cache) = sb_json::from_slice::<CacheFile>(&bytes) {
                    if &cache.config == config {
                        if self.verbose {
                            eprintln!("[{}] loaded {} cached records", config.id, cache.records.len());
                        }
                        let resumed = cache.records.len();
                        sb_trace::count(sb_trace::CounterId::CacheHits, 1);
                        sb_trace::count(sb_trace::CounterId::CellsResumed, resumed as u64);
                        return GridRunSummary { records: cache.records, resumed, computed: 0 };
                    }
                }
            }
        }

        let data = Arc::new(SyntheticVision::new(
            config.dataset.spec(config.data_scale, config.data_seed),
        ));
        let t0 = Instant::now();
        let (_net, pre_metrics, snapshot, init_snapshot) = {
            let _pretrain = sb_trace::span("pretrain");
            Self::pretrain_with_init(config, &data)
        };
        let snapshot = Arc::new(snapshot);
        let init_snapshot = Arc::new(init_snapshot);
        if self.verbose {
            eprintln!(
                "[{}] pretrained {} on {}: top1 {:.3} top5 {:.3} ({:?})",
                config.id,
                config.model.label(),
                data.spec().name,
                pre_metrics.top1,
                pre_metrics.top5,
                t0.elapsed()
            );
        }

        let mut finetune = config.finetune.clone();
        finetune.flatten_input = config.model.flatten_input();

        let fingerprint = config_fingerprint(config);
        let cell_dir = self.cache_dir.as_ref().map(|d| d.join(format!("{}.cells", config.id)));
        if let Some(dir) = &cell_dir {
            let _ = fs::create_dir_all(dir);
        }

        // Submit every cell in grid order; cached cells short-circuit to
        // `Done`. Joining the handles in the same order reassembles the
        // exact sequential record vector.
        enum Slot {
            Done(RunRecord),
            Pending(sb_runtime::JobHandle<RunRecord>),
        }
        let queue = JobQueue::new();
        let mut slots = Vec::new();
        let mut resumed = 0usize;
        for (si, kind) in config.strategies.iter().enumerate() {
            for (ci, &compression) in config.compressions.iter().enumerate() {
                for (wi, &seed) in config.seeds.iter().enumerate() {
                    let cell_path = cell_dir
                        .as_ref()
                        .map(|d| d.join(format!("cell-s{si}-c{ci}-r{wi}.json")));
                    if let Some(path) = &cell_path {
                        if let Ok(bytes) = fs::read(path) {
                            if let Ok(cell) = sb_json::from_slice::<CellCacheFile>(&bytes) {
                                if cell.fingerprint == fingerprint {
                                    resumed += 1;
                                    sb_trace::count(sb_trace::CounterId::CacheHits, 1);
                                    slots.push(Slot::Done(cell.record));
                                    continue;
                                }
                            }
                        }
                    }
                    let job = CellJob {
                        id: config.id.clone(),
                        model: config.model.clone(),
                        strategy: kind.clone(),
                        compression,
                        seed,
                        weights_seed: config.pretrain.weights_seed,
                        finetune: finetune.clone(),
                        data: Arc::clone(&data),
                        snapshot: Arc::clone(&snapshot),
                        init_snapshot: Arc::clone(&init_snapshot),
                        pre_metrics,
                        fingerprint: fingerprint.clone(),
                        cell_path,
                        verbose: self.verbose,
                        measure_latency: self.measure_latency,
                    };
                    let spec = JobSpec::new()
                        .label(format!("{}:cell-s{si}-c{ci}-r{wi}", config.id));
                    slots.push(Slot::Pending(queue.submit(spec, move |_ctx| job.run())));
                }
            }
        }

        let total = slots.len();
        let mut records = Vec::with_capacity(total);
        for slot in slots {
            match slot {
                Slot::Done(record) => records.push(record),
                Slot::Pending(handle) => records.push(
                    handle
                        .join()
                        .unwrap_or_else(|e| panic!("pruning failed in {}: {e}", config.id)),
                ),
            }
        }
        let computed = total - resumed;
        sb_trace::count(sb_trace::CounterId::CellsResumed, resumed as u64);
        sb_trace::count(sb_trace::CounterId::CellsComputed, computed as u64);
        if self.verbose {
            eprintln!(
                "[{}] grid complete: {computed} computed, {resumed} resumed ({:?})",
                config.id,
                t0.elapsed()
            );
        }

        if let Some(path) = self.cache_path(&config.id) {
            if let Some(parent) = path.parent() {
                let _ = fs::create_dir_all(parent);
            }
            let cache = CacheFile {
                config: config.clone(),
                records: records.clone(),
            };
            if let Ok(json) = sb_json::to_string_pretty(&cache) {
                let _ = fs::write(&path, json);
            }
        }
        GridRunSummary { records, resumed, computed }
    }
}

/// Everything one grid cell needs, owned, so the cell can run on any
/// worker at any time. Rebuilding the model from `weights_seed` and
/// restoring the pretrained snapshot (which includes BatchNorm running
/// stats — they are parameters) makes the cell a pure function of this
/// struct; the previous in-place sequential loop let layer-internal RNG
/// state (e.g. dropout streams) leak from one cell into the next.
struct CellJob {
    id: String,
    model: ModelKind,
    strategy: StrategyKind,
    compression: f64,
    seed: u64,
    weights_seed: u64,
    finetune: FinetuneConfig,
    data: Arc<SyntheticVision>,
    snapshot: Arc<Vec<ParamSnapshot>>,
    init_snapshot: Arc<Vec<ParamSnapshot>>,
    pre_metrics: EvalMetrics,
    fingerprint: String,
    cell_path: Option<PathBuf>,
    verbose: bool,
    measure_latency: bool,
}

impl CellJob {
    fn run(&self) -> Result<RunRecord, String> {
        let t = Instant::now();
        let mut weights_rng = Rng::seed_from(self.weights_seed);
        let mut net = self.model.build(self.data.spec(), &mut weights_rng);
        net.restore(&self.snapshot);
        let strategy = self.strategy.build();
        let mut rng = Rng::seed_from(self.seed ^ 0x5EED_0000);
        let result = prune_and_retrain(
            &mut net,
            strategy.as_ref(),
            self.compression,
            &self.data,
            &self.finetune,
            Some(&self.init_snapshot),
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        if self.verbose {
            eprintln!(
                "[{}] {} c={:<5} seed={} → top1 {:.3} (pre-ft {:.3}, speedup {:.2}×) ({:?})",
                self.id,
                strategy.label(),
                self.compression,
                self.seed,
                result.after_finetune.top1,
                result.before_finetune.top1,
                result.speedup,
                t.elapsed()
            );
        }
        let (realized_speedup, latency_us) = if self.measure_latency {
            self.measure_realized(&net)
        } else {
            (None, None)
        };
        let record = RunRecord {
            experiment: self.id.clone(),
            strategy: strategy.label(),
            target_compression: self.compression,
            seed: self.seed,
            compression: result.compression,
            speedup: result.speedup,
            top1: result.after_finetune.top1,
            top5: result.after_finetune.top5,
            top1_before_finetune: result.before_finetune.top1,
            pretrain_top1: self.pre_metrics.top1,
            pretrain_top5: self.pre_metrics.top5,
            realized_speedup,
            latency_us,
        };
        if let Some(path) = &self.cell_path {
            let cell = CellCacheFile {
                fingerprint: self.fingerprint.clone(),
                record: record.clone(),
            };
            if let Ok(json) = sb_json::to_string_pretty(&cell) {
                let _ = fs::write(path, json);
            }
        }
        Ok(record)
    }

    /// Compiles the pruned model with `sb-infer` (cost-model formats) and
    /// a dense-compiled baseline, then times both over one validation
    /// batch: `(realized speedup, median latency in µs)`.
    fn measure_realized(&self, net: &sb_nn::models::Model) -> (Option<f64>, Option<f64>) {
        let batch = batches_of(
            &self.data,
            Split::Val,
            64,
            None,
            self.model.flatten_input(),
        )
        .into_iter()
        .next();
        let Some((x, _)) = batch else {
            return (None, None);
        };
        let compiled =
            sb_infer::CompiledModel::compile(net, &sb_infer::CompileOptions::default());
        let dense = sb_infer::CompiledModel::compile(
            net,
            &sb_infer::CompileOptions {
                force_format: Some(sb_infer::ExecFormat::Dense),
                ..sb_infer::CompileOptions::default()
            },
        );
        let profile = sb_metrics::RealizedProfile::measure(
            5,
            compiled.storage_bytes(),
            || {
                compiled.forward(&x);
            },
            || {
                dense.forward(&x);
            },
        );
        (Some(profile.realized_speedup), Some(profile.latency_us))
    }
}

/// Aggregates records into per-(strategy, compression) summaries with
/// mean ± std across seeds, ordered by strategy then compression.
pub fn summarize(records: &[RunRecord]) -> Vec<CellSummary> {
    let mut keys: Vec<(String, f64)> = Vec::new();
    for r in records {
        let key = (r.strategy.clone(), r.target_compression);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.iter()
        .map(|(strategy, compression)| {
            let cell: Vec<&RunRecord> = records
                .iter()
                .filter(|r| &r.strategy == strategy && r.target_compression == *compression)
                .collect();
            let f = |g: &dyn Fn(&RunRecord) -> f64| {
                mean_std(&cell.iter().map(|r| g(r)).collect::<Vec<_>>())
            };
            let opt = |g: &dyn Fn(&RunRecord) -> Option<f64>| {
                let xs: Vec<f64> = cell.iter().filter_map(|r| g(r)).collect();
                if xs.is_empty() {
                    None
                } else {
                    Some(mean_std(&xs))
                }
            };
            CellSummary {
                strategy: strategy.clone(),
                target_compression: *compression,
                compression: f(&|r| r.compression),
                speedup: f(&|r| r.speedup),
                top1: f(&|r| r.top1 as f64),
                top5: f(&|r| r.top5 as f64),
                realized_speedup: opt(&|r| r.realized_speedup),
                latency_us: opt(&|r| r.latency_us),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(id: &str) -> ExperimentConfig {
        ExperimentConfig {
            id: id.to_string(),
            dataset: DatasetKind::MnistLike,
            data_scale: 16,
            data_seed: 0,
            model: ModelKind::Lenet300_100,
            strategies: vec![StrategyKind::GlobalMagnitude, StrategyKind::Random],
            compressions: vec![2.0, 8.0],
            seeds: vec![1, 2],
            pretrain: PretrainConfig {
                epochs: 3,
                patience: None,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                epochs: 1,
                patience: None,
                ..FinetuneConfig::default()
            },
        }
    }

    #[test]
    fn grid_produces_one_record_per_cell() {
        let runner = ExperimentRunner::default();
        let records = runner.run(&tiny_config("t1"));
        assert_eq!(records.len(), 2 * 2 * 2);
        // All pretrain metrics identical (same snapshot reused).
        let first = records[0].pretrain_top1;
        assert!(records.iter().all(|r| r.pretrain_top1 == first));
    }

    #[test]
    fn runs_are_reproducible() {
        let runner = ExperimentRunner::default();
        let a = runner.run(&tiny_config("t2"));
        let b = runner.run(&tiny_config("t2"));
        assert_eq!(a, b);
    }

    #[test]
    fn measure_latency_populates_realized_fields() {
        let mut config = tiny_config("t-latency");
        config.strategies = vec![StrategyKind::GlobalMagnitude];
        config.compressions = vec![4.0];
        config.seeds = vec![1];
        let runner = ExperimentRunner {
            measure_latency: true,
            ..ExperimentRunner::default()
        };
        let records = runner.run(&config);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        let realized = r.realized_speedup.expect("measured realized speedup");
        let latency = r.latency_us.expect("measured latency");
        assert!(realized > 0.0 && realized.is_finite());
        assert!(latency > 0.0 && latency.is_finite());
        let cells = summarize(&records);
        assert_eq!(cells[0].realized_speedup.as_ref().map(|m| m.n), Some(1));
        // The default runner leaves the optional fields empty, keeping
        // the record stream byte-identical run to run.
        let plain = ExperimentRunner::default().run(&config);
        assert_eq!(plain[0].realized_speedup, None);
        assert_eq!(plain[0].latency_us, None);
        let plain_cells = summarize(&plain);
        assert!(plain_cells[0].realized_speedup.is_none());
    }

    #[test]
    fn summarize_groups_cells() {
        let runner = ExperimentRunner::default();
        let records = runner.run(&tiny_config("t3"));
        let cells = summarize(&records);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert_eq!(cell.top1.n, 2);
        }
    }

    #[test]
    fn cache_round_trips() {
        let dir = std::env::temp_dir().join("shrinkbench-test-cache");
        let _ = fs::remove_dir_all(&dir);
        let runner = ExperimentRunner::with_cache(&dir);
        let cfg = tiny_config("t4");
        let a = runner.run(&cfg);
        assert!(dir.join("t4.json").exists());
        let b = runner.run(&cfg);
        assert_eq!(a, b);
        // Changing the config invalidates the cache.
        let mut cfg2 = cfg.clone();
        cfg2.compressions = vec![4.0];
        let c = runner.run(&cfg2);
        assert_ne!(a.len(), c.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_grid_resumes_from_cell_cache() {
        let dir = std::env::temp_dir().join("shrinkbench-test-cell-resume");
        let _ = fs::remove_dir_all(&dir);
        let runner = ExperimentRunner::with_cache(&dir);
        let cfg = tiny_config("t5");
        let first = runner.run_with_summary(&cfg);
        assert_eq!(first.computed, 8);
        assert_eq!(first.resumed, 0);

        // Simulate a mid-run kill: the whole-grid result never landed and
        // one cell is missing, but the other cells survive on disk.
        fs::remove_file(dir.join("t5.json")).unwrap();
        fs::remove_file(dir.join("t5.cells").join("cell-s1-c1-r1.json")).unwrap();

        let second = runner.run_with_summary(&cfg);
        assert_eq!(second.resumed, 7, "surviving cells must not retrain");
        assert_eq!(second.computed, 1);
        assert_eq!(second.records, first.records);

        // A different grid definition must not resume these cells.
        let mut cfg2 = cfg.clone();
        cfg2.finetune.epochs = 2;
        let third = runner.run_with_summary(&cfg2);
        assert_eq!(third.resumed, 0, "stale-fingerprint cells must be recomputed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_kind_specs() {
        assert_eq!(DatasetKind::MnistLike.spec(1, 0).channels, 1);
        assert_eq!(DatasetKind::ImagenetLike.spec(1, 0).classes, 60);
        assert!(DatasetKind::CifarLike.spec(4, 0).train_size < 1024);
    }

    #[test]
    fn model_kind_labels() {
        assert_eq!(
            ModelKind::ResNetCifar {
                depth: 56,
                base_width: 8
            }
            .label(),
            "ResNet-56"
        );
        assert!(ModelKind::Lenet300_100.flatten_input());
        assert!(!ModelKind::Lenet5.flatten_input());
    }
}
