//! Property-based tests for mask construction, compression targeting, and
//! strategy invariants, on the in-repo `sb-check` harness.

use sb_check::{check, prop_assert, prop_assert_eq, Config, Rng as CheckRng};
use sb_tensor::{Rng, Tensor};
use shrinkbench::masks::{keep_fraction_for_compression, kept_count, masks_from_scores};
use shrinkbench::{
    GlobalGradient, GlobalMagnitude, LayerMagnitude, RandomPruning, Scope, ScoreEntry, Strategy,
};
use std::collections::BTreeMap;

/// Pinned suite seed for replayable failures.
const SUITE: u64 = 0x7E45_0004;

fn cfg() -> Config {
    Config::new(SUITE)
}

/// 1–4 tensors of 4–63 scores each, the shape `masks_from_scores` sees.
fn gen_scores(rng: &mut CheckRng) -> Vec<Vec<f32>> {
    let tensors = rng.below(4) + 1;
    (0..tensors)
        .map(|_| {
            let len = rng.below(60) + 4;
            (0..len).map(|_| rng.uniform(-10.0, 10.0)).collect()
        })
        .collect()
}

fn to_map(raw: &[Vec<f32>]) -> BTreeMap<String, Tensor> {
    raw.iter()
        .enumerate()
        .map(|(i, v)| (format!("t{i}"), Tensor::from_slice(v)))
        .collect()
}

#[test]
fn global_masks_keep_exact_rounded_count() {
    check(
        "core::global_masks_keep_exact_rounded_count",
        cfg(),
        |rng| (gen_scores(rng), rng.uniform(0.0, 1.0) as f64),
        |(raw, keep)| {
            let scores = to_map(raw);
            let total: usize = scores.values().map(Tensor::numel).sum();
            let masks = masks_from_scores(&scores, *keep, Scope::Global);
            let expected = ((total as f64 * keep).round() as usize).min(total);
            prop_assert_eq!(kept_count(&masks), expected);
            Ok(())
        },
    );
}

#[test]
fn layerwise_masks_share_the_global_budget() {
    check(
        "core::layerwise_masks_share_the_global_budget",
        cfg(),
        |rng| (gen_scores(rng), rng.uniform(0.0, 1.0) as f64),
        |(raw, keep)| {
            // Largest-remainder allocation: the summed keep count equals
            // the global rounded target exactly (achieved compression is
            // within one weight of optimal), and no tensor strays more
            // than one weight from its exact share.
            let scores = to_map(raw);
            let total: usize = scores.values().map(Tensor::numel).sum();
            let masks = masks_from_scores(&scores, *keep, Scope::Layerwise);
            let target = ((total as f64 * keep).round() as usize).min(total);
            prop_assert_eq!(kept_count(&masks), target);
            for (name, mask) in &masks {
                let n = scores[name].numel();
                let exact = n as f64 * keep;
                let got = mask.data().iter().filter(|&&v| v == 1.0).count();
                prop_assert!(
                    (got as f64 - exact).abs() < 1.0 + 1e-9,
                    "tensor {}: kept {} vs exact share {}",
                    name,
                    got,
                    exact
                );
            }
            Ok(())
        },
    );
}

#[test]
fn both_scopes_keep_exactly_k_binary_entries() {
    check(
        "core::both_scopes_keep_exactly_k_binary_entries",
        cfg(),
        |rng| (gen_scores(rng), rng.uniform(0.0, 1.0) as f64),
        |(raw, keep)| {
            // Every mask entry is exactly 0.0 or 1.0 and the kept total is
            // exactly the rounded budget k, in both scopes.
            let scores = to_map(raw);
            let total: usize = scores.values().map(Tensor::numel).sum();
            let k = ((total as f64 * keep).round() as usize).min(total);
            for scope in [Scope::Global, Scope::Layerwise] {
                let masks = masks_from_scores(&scores, *keep, scope);
                for (name, mask) in &masks {
                    for &v in mask.data() {
                        prop_assert!(v == 0.0 || v == 1.0, "{}: non-binary {}", name, v);
                    }
                }
                prop_assert_eq!(kept_count(&masks), k);
            }
            Ok(())
        },
    );
}

#[test]
fn pinned_pruned_scores_never_resurrect() {
    check(
        "core::pinned_pruned_scores_never_resurrect",
        cfg(),
        |rng| {
            let mut raw = gen_scores(rng);
            // Pin a random subset to -∞, the pruner's "stay pruned" marker.
            let mut pinned = 0usize;
            for t in &mut raw {
                for v in t.iter_mut() {
                    if rng.below(3) == 0 {
                        *v = f32::NEG_INFINITY;
                        pinned += 1;
                    }
                }
            }
            (raw, pinned, rng.uniform(0.0, 1.0) as f64)
        },
        |(raw, pinned, keep)| {
            // -∞ entries stay pruned at ANY keep fraction; the budget
            // saturates at the finite-score count instead of spilling into
            // the pinned set.
            let scores = to_map(raw);
            let total: usize = scores.values().map(Tensor::numel).sum();
            let k = ((total as f64 * keep).round() as usize).min(total);
            for scope in [Scope::Global, Scope::Layerwise] {
                let masks = masks_from_scores(&scores, *keep, scope);
                for (name, mask) in &masks {
                    for (s, m) in scores[name].data().iter().zip(mask.data()) {
                        prop_assert!(
                            s.is_finite() || *m == 0.0,
                            "{}: non-finite score kept ({:?})",
                            name,
                            scope
                        );
                    }
                }
                if scope == Scope::Global {
                    prop_assert_eq!(kept_count(&masks), k.min(total - pinned));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn masks_are_binary_and_shaped() {
    check(
        "core::masks_are_binary_and_shaped",
        cfg(),
        |rng| (gen_scores(rng), rng.uniform(0.0, 1.0) as f64),
        |(raw, keep)| {
            let scores = to_map(raw);
            for scope in [Scope::Global, Scope::Layerwise] {
                let masks = masks_from_scores(&scores, *keep, scope);
                prop_assert_eq!(masks.len(), scores.len());
                for (name, mask) in &masks {
                    prop_assert_eq!(mask.dims(), scores[name].dims());
                    prop_assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn kept_weights_dominate_pruned_weights_globally() {
    check(
        "core::kept_weights_dominate_pruned_weights_globally",
        cfg(),
        |rng| (gen_scores(rng), rng.uniform(0.05, 0.95) as f64),
        |(raw, keep)| {
            // Every kept score must be ≥ every pruned score (global
            // ranking).
            let scores = to_map(raw);
            let masks = masks_from_scores(&scores, *keep, Scope::Global);
            let mut kept_min = f32::INFINITY;
            let mut pruned_max = f32::NEG_INFINITY;
            for (name, mask) in &masks {
                for (s, m) in scores[name].data().iter().zip(mask.data()) {
                    if *m == 1.0 {
                        kept_min = kept_min.min(*s);
                    } else {
                        pruned_max = pruned_max.max(*s);
                    }
                }
            }
            if kept_min.is_finite() && pruned_max.is_finite() {
                prop_assert!(kept_min >= pruned_max, "{} < {}", kept_min, pruned_max);
            }
            Ok(())
        },
    );
}

#[test]
fn monotone_keep_fraction() {
    check(
        "core::monotone_keep_fraction",
        cfg(),
        |rng| (rng.below(1_000_000) + 1, rng.below(100_000)),
        |&(prunable, unprunable)| {
            // Higher compression ⇒ lower (or equal) keep fraction.
            let mut prev = f64::INFINITY;
            for c in [1.0f64, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 1e6] {
                let f = keep_fraction_for_compression(prunable, unprunable, c);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f <= prev + 1e-12);
                prev = f;
            }
            // Unit compression keeps everything.
            prop_assert!(
                (keep_fraction_for_compression(prunable, unprunable, 1.0) - 1.0).abs() < 1e-9
            );
            Ok(())
        },
    );
}

#[test]
fn keep_fraction_achieves_requested_size() {
    check(
        "core::keep_fraction_achieves_requested_size",
        cfg(),
        |rng| {
            (
                rng.below(999_900) + 100,
                rng.below(1000),
                rng.uniform(1.0, 64.0) as f64,
            )
        },
        |&(prunable, unprunable, c)| {
            let f = keep_fraction_for_compression(prunable, unprunable, c);
            if f > 0.0 && f < 1.0 {
                let kept = f * prunable as f64 + unprunable as f64;
                let achieved = (prunable + unprunable) as f64 / kept;
                prop_assert!(
                    (achieved - c).abs() / c < 1e-9,
                    "achieved {} wanted {}",
                    achieved,
                    c
                );
            }
            Ok(())
        },
    );
}

#[test]
fn magnitude_scores_are_permutation_equivariant() {
    check(
        "core::magnitude_scores_are_permutation_equivariant",
        cfg(),
        |rng| {
            let len = rng.below(24) + 8;
            (0..len).map(|_| rng.uniform(-5.0, 5.0)).collect::<Vec<f32>>()
        },
        |v| {
            // Reversing the weights reverses the scores.
            let fwd = Tensor::from_slice(v);
            let mut rev_v = v.clone();
            rev_v.reverse();
            let rev = Tensor::from_slice(&rev_v);
            let mut rng = Rng::seed_from(0);
            let s_fwd =
                GlobalMagnitude.score(&ScoreEntry { name: "w", value: &fwd, grad: None }, &mut rng);
            let s_rev =
                GlobalMagnitude.score(&ScoreEntry { name: "w", value: &rev, grad: None }, &mut rng);
            let mut s_rev_data = s_rev.data().to_vec();
            s_rev_data.reverse();
            prop_assert_eq!(s_fwd.data(), &s_rev_data[..]);
            Ok(())
        },
    );
}

#[test]
fn gradient_scores_are_scale_covariant() {
    check(
        "core::gradient_scores_are_scale_covariant",
        cfg(),
        |rng| {
            let len = rng.below(24) + 8;
            (
                (0..len).map(|_| rng.uniform(0.1, 5.0)).collect::<Vec<f32>>(),
                rng.uniform(0.5, 4.0),
            )
        },
        |(v, k)| {
            // score(k·w, g) = k · score(w, g): scaling weights scales
            // saliency.
            let k = *k;
            let w = Tensor::from_slice(v);
            let g = Tensor::from_fn(&[v.len()], |i| (i as f32 * 0.37).sin());
            let kw = w.scale(k);
            let mut rng = Rng::seed_from(0);
            let s1 = GlobalGradient
                .score(&ScoreEntry { name: "w", value: &w, grad: Some(&g) }, &mut rng);
            let s2 = GlobalGradient
                .score(&ScoreEntry { name: "w", value: &kw, grad: Some(&g) }, &mut rng);
            for (a, b) in s1.data().iter().zip(s2.data()) {
                prop_assert!((a * k - b).abs() <= 1e-3 * (1.0 + b.abs()));
            }
            Ok(())
        },
    );
}

#[test]
fn layer_and_global_magnitude_agree_on_single_tensor() {
    check(
        "core::layer_and_global_magnitude_agree_on_single_tensor",
        cfg(),
        |rng| {
            let len = rng.below(56) + 8;
            (
                (0..len).map(|_| rng.uniform(-5.0, 5.0)).collect::<Vec<f32>>(),
                rng.uniform(0.1, 0.9) as f64,
            )
        },
        |(v, keep)| {
            // With one tensor, scope cannot matter.
            let mut scores = BTreeMap::new();
            let t = Tensor::from_slice(v);
            let mut rng = Rng::seed_from(1);
            let entry = ScoreEntry { name: "w", value: &t, grad: None };
            scores.insert("w".to_string(), LayerMagnitude.score(&entry, &mut rng));
            let a = masks_from_scores(&scores, *keep, Scope::Global);
            let b = masks_from_scores(&scores, *keep, Scope::Layerwise);
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn random_scores_cover_unit_interval() {
    check(
        "core::random_scores_cover_unit_interval",
        cfg(),
        |rng| rng.below(10_000) as u64,
        |&seed| {
            let mut rng = Rng::seed_from(seed);
            let t = Tensor::zeros(&[256]);
            let s = RandomPruning::global()
                .score(&ScoreEntry { name: "w", value: &t, grad: None }, &mut rng);
            prop_assert!(s.min() >= 0.0 && s.max() < 1.0);
            // Not degenerate.
            prop_assert!(s.max() - s.min() > 0.1);
            Ok(())
        },
    );
}
