//! Property-based tests for mask construction, compression targeting, and
//! strategy invariants.

use proptest::prelude::*;
use sb_tensor::{Rng, Tensor};
use shrinkbench::masks::{keep_fraction_for_compression, kept_count, masks_from_scores};
use shrinkbench::{
    GlobalGradient, GlobalMagnitude, LayerMagnitude, RandomPruning, Scope, ScoreEntry, Strategy,
};
use std::collections::BTreeMap;

fn scores_strategy() -> impl Strategy4 {
    proptest::collection::vec(
        (proptest::collection::vec(-10.0f32..10.0, 4..64),),
        1..5,
    )
}

// Alias to dodge the name clash between proptest::Strategy and ours.
trait Strategy4: proptest::strategy::Strategy<Value = Vec<(Vec<f32>,)>> {}
impl<T: proptest::strategy::Strategy<Value = Vec<(Vec<f32>,)>>> Strategy4 for T {}

fn to_map(raw: &[(Vec<f32>,)]) -> BTreeMap<String, Tensor> {
    raw.iter()
        .enumerate()
        .map(|(i, (v,))| (format!("t{i}"), Tensor::from_slice(v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_masks_keep_exact_rounded_count(raw in scores_strategy(), keep in 0.0f64..1.0) {
        let scores = to_map(&raw);
        let total: usize = scores.values().map(Tensor::numel).sum();
        let masks = masks_from_scores(&scores, keep, Scope::Global);
        let expected = ((total as f64 * keep).round() as usize).min(total);
        prop_assert_eq!(kept_count(&masks), expected);
    }

    #[test]
    fn layerwise_masks_keep_rounded_count_per_tensor(raw in scores_strategy(), keep in 0.0f64..1.0) {
        let scores = to_map(&raw);
        let masks = masks_from_scores(&scores, keep, Scope::Layerwise);
        for (name, mask) in &masks {
            let n = scores[name].numel();
            let expected = ((n as f64 * keep).round() as usize).min(n);
            let got = mask.data().iter().filter(|&&v| v == 1.0).count();
            prop_assert_eq!(got, expected, "tensor {}", name);
        }
    }

    #[test]
    fn masks_are_binary_and_shaped(raw in scores_strategy(), keep in 0.0f64..1.0) {
        let scores = to_map(&raw);
        for scope in [Scope::Global, Scope::Layerwise] {
            let masks = masks_from_scores(&scores, keep, scope);
            prop_assert_eq!(masks.len(), scores.len());
            for (name, mask) in &masks {
                prop_assert_eq!(mask.dims(), scores[name].dims());
                prop_assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0));
            }
        }
    }

    #[test]
    fn kept_weights_dominate_pruned_weights_globally(raw in scores_strategy(), keep in 0.05f64..0.95) {
        // Every kept score must be ≥ every pruned score (global ranking).
        let scores = to_map(&raw);
        let masks = masks_from_scores(&scores, keep, Scope::Global);
        let mut kept_min = f32::INFINITY;
        let mut pruned_max = f32::NEG_INFINITY;
        for (name, mask) in &masks {
            for (s, m) in scores[name].data().iter().zip(mask.data()) {
                if *m == 1.0 {
                    kept_min = kept_min.min(*s);
                } else {
                    pruned_max = pruned_max.max(*s);
                }
            }
        }
        if kept_min.is_finite() && pruned_max.is_finite() {
            prop_assert!(kept_min >= pruned_max, "{} < {}", kept_min, pruned_max);
        }
    }

    #[test]
    fn monotone_keep_fraction(prunable in 1usize..1_000_000, unprunable in 0usize..100_000) {
        // Higher compression ⇒ lower (or equal) keep fraction.
        let mut prev = f64::INFINITY;
        for c in [1.0f64, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 1e6] {
            let f = keep_fraction_for_compression(prunable, unprunable, c);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
        // Unit compression keeps everything.
        prop_assert!((keep_fraction_for_compression(prunable, unprunable, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn keep_fraction_achieves_requested_size(prunable in 100usize..1_000_000, unprunable in 0usize..1000, c in 1.0f64..64.0) {
        let f = keep_fraction_for_compression(prunable, unprunable, c);
        if f > 0.0 && f < 1.0 {
            let kept = f * prunable as f64 + unprunable as f64;
            let achieved = (prunable + unprunable) as f64 / kept;
            prop_assert!((achieved - c).abs() / c < 1e-9, "achieved {} wanted {}", achieved, c);
        }
    }

    #[test]
    fn magnitude_scores_are_permutation_equivariant(v in proptest::collection::vec(-5.0f32..5.0, 8..32)) {
        // Reversing the weights reverses the scores.
        let fwd = Tensor::from_slice(&v);
        let mut rev_v = v.clone();
        rev_v.reverse();
        let rev = Tensor::from_slice(&rev_v);
        let mut rng = Rng::seed_from(0);
        let s_fwd = GlobalMagnitude.score(&ScoreEntry { name: "w", value: &fwd, grad: None }, &mut rng);
        let s_rev = GlobalMagnitude.score(&ScoreEntry { name: "w", value: &rev, grad: None }, &mut rng);
        let mut s_rev_data = s_rev.data().to_vec();
        s_rev_data.reverse();
        prop_assert_eq!(s_fwd.data(), &s_rev_data[..]);
    }

    #[test]
    fn gradient_scores_are_scale_covariant(v in proptest::collection::vec(0.1f32..5.0, 8..32), k in 0.5f32..4.0) {
        // score(k·w, g) = k · score(w, g): scaling weights scales saliency.
        let w = Tensor::from_slice(&v);
        let g = Tensor::from_fn(&[v.len()], |i| (i as f32 * 0.37).sin());
        let kw = w.scale(k);
        let mut rng = Rng::seed_from(0);
        let s1 = GlobalGradient.score(&ScoreEntry { name: "w", value: &w, grad: Some(&g) }, &mut rng);
        let s2 = GlobalGradient.score(&ScoreEntry { name: "w", value: &kw, grad: Some(&g) }, &mut rng);
        for (a, b) in s1.data().iter().zip(s2.data()) {
            prop_assert!((a * k - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn layer_and_global_magnitude_agree_on_single_tensor(v in proptest::collection::vec(-5.0f32..5.0, 8..64), keep in 0.1f64..0.9) {
        // With one tensor, scope cannot matter.
        let mut scores = BTreeMap::new();
        let t = Tensor::from_slice(&v);
        let mut rng = Rng::seed_from(1);
        let entry = ScoreEntry { name: "w", value: &t, grad: None };
        scores.insert("w".to_string(), LayerMagnitude.score(&entry, &mut rng));
        let a = masks_from_scores(&scores, keep, Scope::Global);
        let b = masks_from_scores(&scores, keep, Scope::Layerwise);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn random_scores_cover_unit_interval(seed in 0u64..10_000) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::zeros(&[256]);
        let s = RandomPruning::global().score(&ScoreEntry { name: "w", value: &t, grad: None }, &mut rng);
        prop_assert!(s.min() >= 0.0 && s.max() < 1.0);
        // Not degenerate.
        prop_assert!(s.max() - s.min() > 0.1);
    }
}
