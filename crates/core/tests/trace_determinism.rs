//! The sb-trace contract at the grid level: tracing must not change
//! experiment output, and the normalized trace of the same grid must be
//! byte-identical whether the cells ran inline on one thread or were
//! stolen across four pool workers.
//!
//! Everything lives in one `#[test]` because the assertions manipulate
//! process-global state (the trace gate and the runtime thread override);
//! a single function keeps them strictly sequenced.

use shrinkbench::experiment::{
    DatasetKind, ExperimentConfig, ExperimentRunner, ModelKind, PretrainConfig,
};
use shrinkbench::{FinetuneConfig, StrategyKind};

fn tiny_config(id: &str) -> ExperimentConfig {
    ExperimentConfig {
        id: id.to_string(),
        dataset: DatasetKind::MnistLike,
        data_scale: 16,
        data_seed: 0,
        model: ModelKind::Lenet300_100,
        strategies: vec![StrategyKind::GlobalMagnitude],
        compressions: vec![2.0, 8.0],
        seeds: vec![1],
        pretrain: PretrainConfig {
            epochs: 2,
            patience: None,
            ..PretrainConfig::default()
        },
        finetune: FinetuneConfig {
            epochs: 1,
            patience: None,
            ..FinetuneConfig::default()
        },
    }
}

#[test]
fn traced_grids_are_thread_invariant_and_leave_results_unchanged() {
    let runner = ExperimentRunner::default();
    let cfg = tiny_config("trace-det");

    // Untraced baseline records.
    sb_trace::set_override(Some(false));
    let baseline = runner.run(&cfg);

    // Same grid, traced, cells inline on one thread.
    sb_trace::set_override(Some(true));
    let _ = sb_trace::take_report();
    sb_runtime::set_thread_override(Some(1));
    let one_thread = runner.run(&cfg);
    let trace_one = sb_trace::take_report().subtree("grid:trace-det");

    // Same grid, traced, cells distributed over four workers.
    sb_runtime::set_thread_override(Some(4));
    let four_threads = runner.run(&cfg);
    let trace_four = sb_trace::take_report().subtree("grid:trace-det");

    sb_runtime::set_thread_override(None);
    sb_trace::set_override(None);

    // Tracing and thread count leave the records bit-identical.
    assert_eq!(baseline, one_thread, "tracing changed experiment output");
    assert_eq!(baseline, four_threads, "thread count changed experiment output");

    // The normalized trace (ticks zeroed, thread labels dropped,
    // scheduling spans/counters pruned) is byte-identical across thread
    // counts.
    let json_one =
        sb_json::to_string(&trace_one.normalized()).expect("trace serializes");
    let json_four =
        sb_json::to_string(&trace_four.normalized()).expect("trace serializes");
    assert_eq!(json_one, json_four, "normalized trace depends on thread count");

    // The trace actually covers every layer the tentpole promises:
    // runner (grid/pretrain/cells), fine-tuning phases, and training
    // epochs, as logical span paths.
    let flame = trace_one.flamegraph();
    for needle in [
        "grid:trace-det;pretrain",
        "grid:trace-det;job:trace-det:cell-s0-c0-r0;prune",
        "grid:trace-det;job:trace-det:cell-s0-c1-r0;finetune",
        ";finetune;epoch-0;forward",
        ";epoch-0;backward",
        ";epoch-0;step",
        ";eval",
    ] {
        assert!(flame.contains(needle), "flamegraph misses {needle}:\n{flame}");
    }

    // Same contract for the inference engine's per-format span paths:
    // forced-BSR and forced-bitmap compiled forwards emit
    // `infer;layer:{name}:{format}` spans whose normalized trace is
    // byte-identical at one and four workers.
    compiled_format_spans_are_thread_invariant();
}

/// Called from the single `#[test]` above (global trace + thread state).
fn compiled_format_spans_are_thread_invariant() {
    use sb_infer::{CompileOptions, CompiledModel, ExecFormat};
    use sb_nn::Network;

    let mut rng = sb_tensor::Rng::seed_from(0x7ACE);
    let mut model = sb_nn::models::lenet5(1, 16, 10, &mut rng);
    // Unstructured 2x by global magnitude so every layer keeps nonzeros.
    let mut mags: Vec<f32> = Vec::new();
    model.visit_params_ref(&mut |p| {
        if p.kind().prunable_by_default() {
            mags.extend(p.value().data().iter().map(|v| v.abs()));
        }
    });
    mags.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let threshold = mags[mags.len() / 2];
    model.visit_params(&mut |p| {
        if p.kind().prunable_by_default() {
            let mask = p.value().map(|v| if v.abs() >= threshold { 1.0 } else { 0.0 });
            p.set_mask(mask);
        }
    });
    let x = sb_tensor::Tensor::rand_normal(&[9, 1, 16, 16], 0.0, 1.0, &mut rng);

    sb_trace::set_override(Some(true));
    for (format, label) in [(ExecFormat::Bsr, "bsr"), (ExecFormat::Bitmap, "bitmap")] {
        let compiled = CompiledModel::compile(
            &model,
            &CompileOptions {
                force_format: Some(format),
                ..CompileOptions::default()
            },
        );
        let mut normalized: Option<String> = None;
        for threads in [1usize, 4] {
            sb_runtime::set_thread_override(Some(threads));
            let _ = sb_trace::take_report();
            let _ = compiled.forward(&x);
            let report = sb_trace::take_report().subtree("infer");
            let flame = report.flamegraph();
            for needle in [
                format!("infer;layer:conv1:{label}"),
                format!("infer;layer:conv2:{label}"),
                format!("infer;layer:fc3:{label}"),
            ] {
                assert!(
                    flame.contains(needle.as_str()),
                    "{label} flamegraph misses {needle}:\n{flame}"
                );
            }
            let json =
                sb_json::to_string(&report.normalized()).expect("trace serializes");
            match &normalized {
                None => normalized = Some(json),
                Some(reference) => assert_eq!(
                    reference, &json,
                    "normalized {label} infer trace depends on thread count"
                ),
            }
        }
    }
    sb_runtime::set_thread_override(None);
    sb_trace::set_override(None);
}
