//! Behavioural tests for the fine-tuning-axis extension
//! ([`WeightPolicy`]): rewind-to-init and reinitialize.

use sb_data::{batches_of, DatasetSpec, Split, SyntheticVision};
use sb_nn::{models, Adam, Network, NetworkExt, ParamSnapshot, TrainConfig, Trainer};
use sb_tensor::Rng;
use shrinkbench::{
    prune_and_retrain, FinetuneConfig, GlobalMagnitude, OptimizerKind, WeightPolicy,
};

fn setup() -> (SyntheticVision, models::Model, Vec<ParamSnapshot>) {
    let data = SyntheticVision::new(DatasetSpec::mnist_like(2).scaled_down(16));
    let mut rng = Rng::seed_from(0);
    let spec = data.spec();
    let mut net = models::mlp(spec.channels * spec.side * spec.side, &[16], spec.classes, &mut rng);
    let init = net.snapshot();
    let mut opt = Adam::new(1e-3);
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    });
    let mut erng = Rng::seed_from(1);
    trainer
        .fit(
            &mut net,
            &mut opt,
            |_| {
                let mut fork = erng.fork(0);
                batches_of(&data, Split::Train, 32, Some(&mut fork), true)
            },
            &[],
        )
        .unwrap();
    (data, net, init)
}

fn config(policy: WeightPolicy, lr: f32) -> FinetuneConfig {
    FinetuneConfig {
        epochs: 1,
        patience: None,
        flatten_input: true,
        optimizer: OptimizerKind::Adam { lr },
        weight_policy: policy,
        ..FinetuneConfig::default()
    }
}

#[test]
fn rewind_restores_surviving_weights_to_init() {
    let (data, mut net, init) = setup();
    let mut rng = Rng::seed_from(5);
    // Learning rate ~0 so training barely moves the rewound weights.
    prune_and_retrain(
        &mut net,
        &GlobalMagnitude,
        2.0,
        &data,
        &config(WeightPolicy::RewindToInit, 1e-12),
        Some(&init),
        &mut rng,
    )
    .unwrap();
    let mut k = 0usize;
    let mut checked = 0usize;
    net.visit_params(&mut |p| {
        if let Some(mask) = p.mask() {
            let mask = mask.clone();
            for ((v, m), v0) in p
                .value()
                .data()
                .iter()
                .zip(mask.data())
                .zip(init[k].value.data())
            {
                if *m == 1.0 {
                    assert!(
                        (*v - *v0).abs() < 1e-4,
                        "surviving weight not rewound: {v} vs init {v0}"
                    );
                    checked += 1;
                } else {
                    assert_eq!(*v, 0.0, "pruned weight must stay zero after rewind");
                }
            }
        }
        k += 1;
    });
    assert!(checked > 0, "no masked parameters were checked");
}

#[test]
#[should_panic(expected = "requires an initialization snapshot")]
fn rewind_without_snapshot_panics() {
    let (data, mut net, _) = setup();
    let mut rng = Rng::seed_from(6);
    let _ = prune_and_retrain(
        &mut net,
        &GlobalMagnitude,
        2.0,
        &data,
        &config(WeightPolicy::RewindToInit, 1e-3),
        None,
        &mut rng,
    );
}

#[test]
fn reinitialize_discards_trained_weights() {
    let (data, mut net, init) = setup();
    let trained = net.snapshot();
    let mut rng = Rng::seed_from(7);
    prune_and_retrain(
        &mut net,
        &GlobalMagnitude,
        2.0,
        &data,
        &config(WeightPolicy::Reinitialize, 1e-12),
        Some(&init),
        &mut rng,
    )
    .unwrap();
    // Surviving weights must differ from the trained values (fresh init).
    let mut k = 0usize;
    let mut differing = 0usize;
    let mut total = 0usize;
    net.visit_params(&mut |p| {
        if p.mask().is_some() {
            for (v, v_trained) in p.value().data().iter().zip(trained[k].value.data()) {
                if *v != 0.0 {
                    total += 1;
                    if (*v - *v_trained).abs() > 1e-6 {
                        differing += 1;
                    }
                }
            }
        }
        k += 1;
    });
    assert!(total > 0);
    assert!(
        differing as f64 > 0.9 * total as f64,
        "only {differing}/{total} surviving weights were reinitialized"
    );
}

#[test]
fn finetune_policy_keeps_trained_weights() {
    let (data, mut net, init) = setup();
    let trained = net.snapshot();
    let mut rng = Rng::seed_from(8);
    prune_and_retrain(
        &mut net,
        &GlobalMagnitude,
        2.0,
        &data,
        &config(WeightPolicy::Finetune, 1e-12),
        Some(&init),
        &mut rng,
    )
    .unwrap();
    // Surviving weights still equal the trained values (lr ≈ 0).
    let mut k = 0usize;
    net.visit_params(&mut |p| {
        if p.mask().is_some() {
            for (v, v_trained) in p.value().data().iter().zip(trained[k].value.data()) {
                if *v != 0.0 {
                    assert!((*v - *v_trained).abs() < 1e-4);
                }
            }
        }
        k += 1;
    });
}
